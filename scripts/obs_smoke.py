#!/usr/bin/env python
"""Observability smoke gate for CI.

Four checks, all fatal on failure:

1. **Overhead budget** — the figure-27 workload (repeated chained A→B→C
   kNN-join queries against a long-lived engine) runs on two engines, one
   with the default always-on instrumentation — which since the flight tier
   includes per-query resource capture — and one with
   ``Observability.disabled()``.  Best-of-``--repeats`` wall times must stay
   within ``--max-overhead`` (default 5 %).
2. **Event coverage** — a sharded + streamed segment must produce a
   ``plan_demotion`` event (via a deliberately mispredicting clustered
   workload), an ``index_repair`` event (small localized insert), plus
   stream activity (guard violation / subscription maintenance).
3. **Span trees** — the recorded traces must contain the documented phases
   (``plan`` / ``execute`` / ``calibrate``, ``shard-fan-out``,
   ``stream-maintain``).
4. **Distributed capture** — a process-pool sharded workload must yield a
   stitched trace with per-shard worker ``shard-task`` spans under
   ``shard-fan-out`` (foreign worker pids) and fleet-wide kernel-dispatch
   counters > 0 at the hub after worker-delta merging.
5. **Exporters** — the combined registries dump to ``OBS_SNAPSHOT.json``
   (schema-checked by ``repro.obs.validate_snapshot``) and
   ``OBS_SNAPSHOT.prom`` (Prometheus exposition text); the slow-query log
   of a zero-threshold segment lands in ``OBS_SLOW_QUERIES.json``.

Run from the repository root (CI does)::

    PYTHONPATH=src python scripts/obs_smoke.py
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.datagen import clustered_points, uniform_points  # noqa: E402
from repro.datagen.berlinmod import berlinmod_snapshot  # noqa: E402
from repro.engine import SpatialEngine  # noqa: E402
from repro.geometry import Point, Rect  # noqa: E402
from repro.obs import Observability, prometheus_text, validate_snapshot  # noqa: E402
from repro.query.predicates import KnnJoin, KnnSelect  # noqa: E402
from repro.query.query import Query  # noqa: E402
from repro.shard.engine import ShardedEngine  # noqa: E402
from repro.stream import StreamEngine  # noqa: E402

BOUNDS = Rect(0.0, 0.0, 10_000.0, 10_000.0)
FOCAL = Point(5_000.0, 5_000.0)


def _fig27_engine(obs: Observability, scale: float) -> tuple[SpatialEngine, Query]:
    """A fresh engine loaded with the figure-27 relations and its query."""
    engine = SpatialEngine(obs=obs)
    sizes = {"a": 16_000, "b": 64_000, "c": 64_000}
    for i, (name, size) in enumerate(sizes.items()):
        points = berlinmod_snapshot(
            n=max(100, int(size * scale)), seed=2700 + i, start_pid=i * 10_000_000
        )
        engine.register(name=name, points=points, bounds=None)
    query = Query(KnnJoin(outer="a", inner="b", k=3), KnnJoin(outer="b", inner="c", k=3))
    return engine, query


def check_overhead(scale: float, queries: int, repeats: int, budget: float) -> list[str]:
    """Best-of-``repeats`` instrumented vs disabled wall time on figure 27."""
    instrumented, query = _fig27_engine(Observability(name="obs-smoke"), scale)
    disabled, _ = _fig27_engine(Observability.disabled(), scale)

    def run_batch(engine: SpatialEngine) -> float:
        start = time.perf_counter()
        for _ in range(queries):
            engine.run(query)
        return time.perf_counter() - start

    for engine in (instrumented, disabled):
        run_batch(engine)  # warm the plan cache + neighborhood caches
    timed = {"instrumented": [], "disabled": []}
    for _ in range(repeats):  # interleave to spread machine noise evenly
        timed["instrumented"].append(run_batch(instrumented))
        timed["disabled"].append(run_batch(disabled))
    best_on, best_off = min(timed["instrumented"]), min(timed["disabled"])
    overhead = best_on / best_off - 1.0
    print(
        f"obs_smoke: figure-27 x{queries} best-of-{repeats}: "
        f"instrumented {best_on * 1e3:.1f}ms, disabled {best_off * 1e3:.1f}ms, "
        f"overhead {overhead * 100:+.2f}% (budget {budget * 100:.0f}%)"
    )
    if overhead > budget:
        return [f"instrumentation overhead {overhead * 100:.2f}% exceeds budget"]
    return []


def _mispredicting_engine(obs: Observability) -> tuple[SpatialEngine, Query]:
    """Engine + query the static cost model mispredicts (demotion generator)."""
    engine = SpatialEngine(obs=obs)
    outer = clustered_points(1, 150, BOUNDS, cluster_radius=250.0, seed=7, start_pid=0)
    cx = sum(p.x for p in outer) / len(outer)
    cy = sum(p.y for p in outer) / len(outer)
    outer = [Point(p.x - cx + FOCAL.x, p.y - cy + FOCAL.y, p.pid) for p in outer]
    inner = uniform_points(120, BOUNDS, seed=8, start_pid=10_000)
    engine.register(name="outer", points=outer, bounds=BOUNDS, cells_per_side=10)
    engine.register(name="inner", points=inner, bounds=BOUNDS, cells_per_side=10)
    query = Query(
        KnnJoin(outer="outer", inner="inner", k=2),
        KnnSelect(relation="inner", focal=FOCAL, k=8),
    )
    return engine, query


def check_distributed_capture() -> tuple[list[str], list[dict]]:
    """Process-pool fan-out: worker spans stitched, kernel deltas merged.

    Falls back to the thread backend (with a notice) when the platform has
    no fork start method — the stitched trace shape is identical by
    construction, only the worker pids stop being foreign.
    """
    errors: list[str] = []
    backend = "process" if "fork" in multiprocessing.get_all_start_methods() else "thread"
    if backend != "process":
        print("obs_smoke: no fork start method; distributed check uses threads")
    obs = Observability(name="obs-smoke-distributed")
    obs.slow.threshold_seconds = 0.0  # record every query for the artifact
    with ShardedEngine(
        num_shards=4, backend=backend, max_workers=2, prefer_fanout=True, obs=obs
    ) as sharded:
        sharded.register(
            name="a", points=uniform_points(400, BOUNDS, seed=21), bounds=BOUNDS
        )
        sharded.register(
            name="b",
            points=uniform_points(400, BOUNDS, seed=22, start_pid=80_000),
            bounds=BOUNDS,
        )
        sharded.run(Query(KnnJoin(outer="a", inner="b", k=2)))
        trace = sharded.obs.tracer.last()
        fan = trace.find("shard-fan-out") if trace is not None else None
        shard_tasks = (
            [s for s in fan.children if s.name == "shard-task"] if fan is not None else []
        )
        if not shard_tasks:
            errors.append("no worker shard-task spans grafted under shard-fan-out")
        if backend == "process" and shard_tasks:
            pids = {s.attributes.get("worker_pid") for s in shard_tasks}
            if not pids or any(pid == os.getpid() for pid in pids):
                errors.append(f"process workers reported coordinator pids: {pids}")
        usage = trace.root.attributes.get("resources") if trace is not None else None
        if not usage or usage.get("kernel_dispatches", 0) < 1:
            errors.append(f"fleet kernel dispatches not accounted: {usage}")
        snapshot = sharded.metrics_snapshot()
        fleet = sum(
            c["value"]
            for c in snapshot["counters"]
            if c["name"] == "query_resource_kernel_dispatches_total"
        )
        if fleet < 1:
            errors.append("hub registry shows zero merged worker kernel dispatches")
        slow = sharded.slow_queries()
        if not slow:
            errors.append("zero-threshold sharded segment logged no slow queries")
        return errors, slow


def run_stack_workload() -> tuple[list[str], list[dict], str]:
    """Sharded + streamed segment; returns (errors, snapshots, prometheus)."""
    errors: list[str] = []
    snapshots: list[dict] = []
    prom_parts: list[str] = []

    # --- planner demotion + index repair on the base engine -------------
    engine, query = _mispredicting_engine(Observability(name="obs-smoke-engine"))
    for _ in range(6):
        engine.run(query)
    engine.insert("inner", [(1.0, 1.0)])  # small insert → localized repair
    if not engine.events(kind="plan_demotion"):
        errors.append("no plan_demotion event from the mispredicting workload")
    if not engine.events(kind="index_repair"):
        errors.append("no index_repair event from the localized insert")
    phases = engine.traces()[0].phases() if engine.traces() else ()
    if not {"plan", "execute", "calibrate"} <= set(phases):
        errors.append(f"engine trace missing phases: {phases}")

    # --- sharded fan-out -------------------------------------------------
    with ShardedEngine(
        num_shards=4, backend="serial", obs=Observability(name="obs-smoke-sharded")
    ) as sharded:
        sharded.register(
            name="a", points=uniform_points(300, BOUNDS, seed=11), bounds=BOUNDS
        )
        sharded.register(
            name="b",
            points=uniform_points(300, BOUNDS, seed=12, start_pid=50_000),
            bounds=BOUNDS,
        )
        sharded.run(Query(KnnJoin(outer="a", inner="b", k=2)))
        trace = sharded.obs.tracer.last()
        if trace is None or "shard-fan-out" not in trace.phases():
            errors.append("sharded trace missing the shard-fan-out phase")
        if sharded.tasks_dispatched < 1:
            errors.append("sharded join dispatched no pool tasks")
        snapshots.append(sharded.metrics_snapshot())
        prom_parts.append(sharded.prometheus_metrics())

    # --- streamed maintenance (shares the base engine's registry) -------
    with StreamEngine(engine) as stream:
        sub = stream.subscribe(Query(KnnSelect(relation="inner", focal=FOCAL, k=5)))
        stream.stream("inner").insert((FOCAL.x + 1.0, FOCAL.y + 1.0)).flush()
        victim = sub.result()[0][1]  # kNN rows are (distance, pid)
        stream.stream("inner").remove(victim).flush()
        if stream.guard_violations < 1:
            errors.append("stream segment produced no guard violation")
        trace = stream.obs.tracer.last()
        if trace is None or trace.name != "stream-maintain":
            errors.append("stream trace missing the stream-maintain root")
        snapshots.append(stream.metrics_snapshot())
        prom_parts.append(stream.prometheus_metrics())

    return errors, snapshots, "\n".join(prom_parts)


def main() -> int:
    """Run every check; write artifacts; return a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.02)
    parser.add_argument("--queries", type=int, default=8)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--max-overhead", type=float, default=0.05)
    parser.add_argument("--json", type=Path, default=Path("OBS_SNAPSHOT.json"))
    parser.add_argument("--prom", type=Path, default=Path("OBS_SNAPSHOT.prom"))
    parser.add_argument("--slow-json", type=Path, default=Path("OBS_SLOW_QUERIES.json"))
    args = parser.parse_args()

    errors = check_overhead(args.scale, args.queries, args.repeats, args.max_overhead)
    stack_errors, snapshots, prom = run_stack_workload()
    errors += stack_errors
    distributed_errors, slow_records = check_distributed_capture()
    errors += distributed_errors

    for snapshot in snapshots:
        errors += validate_snapshot(snapshot)
    args.json.write_text(
        json.dumps({"registries": snapshots}, indent=2) + "\n", encoding="utf-8"
    )
    args.prom.write_text(prom + "\n", encoding="utf-8")
    args.slow_json.write_text(json.dumps(slow_records, indent=2) + "\n", encoding="utf-8")
    print(
        f"obs_smoke: wrote {args.json} ({len(snapshots)} registries), {args.prom} "
        f"and {args.slow_json} ({len(slow_records)} slow-query records)"
    )

    if errors:
        print(f"obs_smoke: {len(errors)} problem(s):")
        for error in errors:
            print(f"  {error}")
        return 1
    print(
        "obs_smoke: overhead, events, traces, distributed capture and "
        "exporters all pass"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
