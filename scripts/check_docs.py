#!/usr/bin/env python
"""Documentation gate for CI: link integrity + public-API docstrings.

Two checks, both fatal on failure:

1. **Intra-repo markdown links** — every relative link target in the
   repository's markdown files (README.md, docs/, CHANGES.md, ...) must
   exist on disk.  External (``http``/``https``/``mailto``) links and pure
   anchors are ignored; ``path#anchor`` links are checked for the path part.
2. **Public API docstrings** — every public module, class, function, method
   and property reachable from the ``repro.engine``, ``repro.planner``,
   ``repro.shard``, ``repro.stream``, ``repro.obs``, ``repro.durable``,
   ``repro.kernels`` and ``repro.algebra`` packages (the serving surface
   this repo documents in ``docs/``) must carry a docstring.

Run from the repository root (CI does)::

    python scripts/check_docs.py
"""

from __future__ import annotations

import inspect
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: Packages whose public surface must be fully docstring-covered.
DOCUMENTED_PACKAGES = (
    "repro.engine",
    "repro.planner",
    "repro.shard",
    "repro.stream",
    "repro.obs",
    "repro.durable",
    "repro.kernels",
    "repro.algebra",
)

#: Markdown files/directories scanned for intra-repo links.
MARKDOWN_ROOTS = ("README.md", "CHANGES.md", "ROADMAP.md", "docs")

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def iter_markdown_files() -> list[Path]:
    """Markdown files covered by the link check."""
    files: list[Path] = []
    for root in MARKDOWN_ROOTS:
        path = REPO_ROOT / root
        if path.is_file():
            files.append(path)
        elif path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
    return files


def check_links() -> list[str]:
    """Return one error per broken intra-repo markdown link."""
    errors: list[str] = []
    for md_file in iter_markdown_files():
        text = md_file.read_text(encoding="utf-8")
        for match in _LINK.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            resolved = (md_file.parent / path_part).resolve()
            if not resolved.exists():
                rel = md_file.relative_to(REPO_ROOT)
                errors.append(f"{rel}: broken link -> {target}")
    return errors


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _iter_modules(package_name: str):
    """Import a package and every submodule inside it."""
    import importlib
    import pkgutil

    package = importlib.import_module(package_name)
    yield package
    for info in pkgutil.iter_modules(package.__path__, prefix=f"{package_name}."):
        yield importlib.import_module(info.name)


def _missing_in_class(cls: type, module_name: str) -> list[str]:
    missing: list[str] = []
    for attr_name, attr in vars(cls).items():
        if not _is_public(attr_name):
            continue
        target = attr
        if isinstance(attr, property):
            target = attr.fget
        elif isinstance(attr, (staticmethod, classmethod)):
            target = attr.__func__
        elif not (inspect.isfunction(attr) or inspect.ismethod(attr)):
            continue  # plain class attributes need no docstring
        if target is not None and not inspect.getdoc(target):
            missing.append(f"{module_name}.{cls.__name__}.{attr_name}")
    return missing


def check_docstrings() -> list[str]:
    """Return one error per public engine/shard API member without a docstring."""
    errors: list[str] = []
    for package_name in DOCUMENTED_PACKAGES:
        for module in _iter_modules(package_name):
            if not module.__doc__:
                errors.append(f"{module.__name__}: missing module docstring")
            exported = getattr(module, "__all__", None)
            names = (
                exported
                if exported is not None
                else [n for n in vars(module) if _is_public(n)]
            )
            for name in names:
                obj = getattr(module, name, None)
                if obj is None or inspect.ismodule(obj):
                    continue
                if getattr(obj, "__module__", None) != module.__name__:
                    continue  # re-export; documented where it is defined
                if inspect.isclass(obj):
                    if not inspect.getdoc(obj):
                        errors.append(f"{module.__name__}.{name}: missing docstring")
                    errors.extend(_missing_in_class(obj, module.__name__))
                elif inspect.isfunction(obj):
                    if not inspect.getdoc(obj):
                        errors.append(f"{module.__name__}.{name}: missing docstring")
    return sorted(set(errors))


def main() -> int:
    """Run both checks; print findings and return a process exit code."""
    errors = check_links() + check_docstrings()
    if errors:
        print(f"check_docs: {len(errors)} problem(s):")
        for error in errors:
            print(f"  {error}")
        return 1
    covered = "/".join(pkg.removeprefix("repro.") for pkg in DOCUMENTED_PACKAGES)
    print(
        "check_docs: all markdown links resolve and the public "
        f"{covered} API is documented"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
