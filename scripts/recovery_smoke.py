#!/usr/bin/env python
"""Recovery smoke: SIGKILL a real writer mid-workload, reopen, verify.

The in-process fault suite (``tests/test_durable_faults.py``) simulates
crashes by raising at named points; this script is the out-of-process
complement CI runs — an actual child process is killed with ``SIGKILL`` at a
randomized moment while it streams durable mutations, and the parent then
recovers the directory and checks the durability contract from the outside:

1. **No partial batches** — the recovered marker pids form a contiguous
   prefix of the writer's insertion sequence.
2. **No lost acknowledgements** — every batch the writer acknowledged (it
   fsyncs an ack record *after* ``apply_update`` returns) is present, and
   at most one unacknowledged batch may additionally have committed (the
   kill landed between the WAL fsync and the ack write).
3. **Query parity** — the recovered engine answers the smoke query set
   identically to a fresh engine built from the recovered rows (the rebuilt
   index serves the same answers as a from-scratch one).

Each iteration resumes the *same* root, so the run exercises repeated
crash/recover/extend cycles over one directory, checkpoints included (the
writer checkpoints every few batches).  A JSON report of every iteration is
written for CI to upload.

Usage::

    PYTHONPATH=src python scripts/recovery_smoke.py \
        --root /tmp/recovery --iterations 3 --max-delay 1.5 \
        --report RECOVERY_REPORT.json

The ``--writer`` mode is internal (the parent spawns it).
"""

from __future__ import annotations

import argparse
import json
import os
import random
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.durable import DurableEngine  # noqa: E402
from repro.engine.session import SpatialEngine  # noqa: E402
from repro.geometry.point import Point  # noqa: E402
from repro.geometry.rectangle import Rect  # noqa: E402
from repro.query.predicates import KnnJoin, KnnSelect, RangeSelect  # noqa: E402
from repro.query.query import Query  # noqa: E402
from repro.stream.delta import result_rows  # noqa: E402

MARKER_BASE = 1_000_000
CHECKPOINT_INTERVAL = 8
ACK_FILE = "acks.txt"


def seed_points_a() -> list[Point]:
    return [Point(float(3 * i % 97), float(5 * i % 89), i) for i in range(40)]


def seed_points_b() -> list[Point]:
    return [Point(10.0 + 7.0 * i, 12.0 + 6.0 * i, 1000 + i) for i in range(8)]


def smoke_queries() -> dict[str, Query]:
    focal = Point(30.0, 30.0)
    window = Rect(10.0, 10.0, 60.0, 60.0)
    return {
        "single-select": Query(KnnSelect(relation="a", focal=focal, k=3)),
        "single-range": Query(RangeSelect(relation="a", window=window)),
        "single-join": Query(KnnJoin(outer="b", inner="a", k=3)),
        "select-inner-of-join": Query(
            KnnSelect(relation="a", focal=focal, k=5),
            KnnJoin(outer="b", inner="a", k=3),
        ),
    }


def marker_coords(i: int) -> tuple[float, float]:
    return (float((11 * i) % 97), float((13 * i) % 89))


# ----------------------------------------------------------------------
# Writer (the process that gets killed)
# ----------------------------------------------------------------------
def run_writer(root: Path) -> int:
    """Stream marker batches into the durable root until killed."""
    if any((p / "MANIFEST").exists() for p in root.glob("*") if p.is_dir()):
        engine = DurableEngine.open(root, checkpoint_interval=CHECKPOINT_INTERVAL)
    else:
        engine = DurableEngine.create(root, checkpoint_interval=CHECKPOINT_INTERVAL)
        engine.register(name="a", points=seed_points_a())
        engine.register(name="b", points=seed_points_b())
    markers = sorted(
        int(pid) - MARKER_BASE
        for pid in engine.dataset("a").store.pids
        if pid >= MARKER_BASE
    )
    next_marker = (markers[-1] + 1) if markers else 0
    ack = open(root / ACK_FILE, "a")
    while True:  # until SIGKILL
        i = next_marker
        x, y = marker_coords(i)
        batch_points = [Point(x, y, MARKER_BASE + i)]
        moves = []
        if i % 5 == 4:  # shuffle an earlier marker for batch variety
            moves = [(MARKER_BASE + i - 1, float((7 * i) % 97), float((3 * i) % 89))]
        from repro.storage.update import UpdateBatch

        engine.apply_update("a", UpdateBatch(inserts=batch_points, moves=moves))
        # The batch is committed (WAL fsynced): acknowledge it durably.
        ack.write(f"{i}\n")
        ack.flush()
        os.fsync(ack.fileno())
        next_marker = i + 1


# ----------------------------------------------------------------------
# Parent (kill, recover, verify)
# ----------------------------------------------------------------------
def read_acks(root: Path) -> list[int]:
    path = root / ACK_FILE
    if not path.exists():
        return []
    # The final line may itself be torn by the kill; ignore it if unparsable.
    acks = []
    for line in path.read_text().splitlines():
        try:
            acks.append(int(line))
        except ValueError:
            continue
    return acks


def verify(root: Path) -> dict[str, object]:
    """Recover the root and check the three contract clauses."""
    acked = read_acks(root)
    recovered = DurableEngine.open(root, checkpoint_interval=CHECKPOINT_INTERVAL)
    try:
        report: dict[str, object] = {
            "acked_batches": len(acked),
            "recovery": {
                name: {
                    "generation": r.generation,
                    "snapshot_rows": r.snapshot_rows,
                    "replayed_batches": r.replayed_batches,
                    "torn_tail": r.torn_tail,
                    "orphans_removed": r.orphans_removed,
                }
                for name, r in sorted(recovered.last_recovery.items())
            },
        }
        markers = sorted(
            int(pid) - MARKER_BASE
            for pid in recovered.dataset("a").store.pids
            if pid >= MARKER_BASE
        )
        report["recovered_batches"] = len(markers)
        errors: list[str] = []
        if markers != list(range(len(markers))):
            errors.append(f"marker sequence has gaps: {markers[:20]}...")
        if acked and (not markers or markers[-1] < max(acked)):
            errors.append(
                f"acknowledged batch lost: acked up to {max(acked)}, "
                f"recovered up to {markers[-1] if markers else None}"
            )
        if acked and markers and markers[-1] > max(acked) + 1:
            errors.append(
                f"too many unacked batches survived: acked {max(acked)}, "
                f"recovered {markers[-1]}"
            )

        # Query parity against a fresh engine over the recovered rows.
        oracle = SpatialEngine()
        for name in ("a", "b"):
            store = recovered.dataset(name).store
            oracle.register(name=name, points=store.materialize(range(len(store))))
        for name, query in smoke_queries().items():
            if result_rows(recovered.run(query)) != result_rows(oracle.run(query)):
                errors.append(f"query parity violated: {name}")

        report["errors"] = errors
        return report
    finally:
        recovered.close()


def run_parent(root: Path, iterations: int, max_delay: float, seed: int | None,
               report_path: Path) -> int:
    rng = random.Random(seed)
    root.mkdir(parents=True, exist_ok=True)
    report: dict[str, object] = {
        "root": str(root),
        "iterations": [],
        "seed": seed,
    }
    failed = False
    for iteration in range(iterations):
        delay = rng.uniform(0.2, max_delay)
        writer = subprocess.Popen(
            [sys.executable, str(Path(__file__).resolve()), "--writer",
             "--root", str(root)],
            env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
        )
        time.sleep(delay)
        writer.send_signal(signal.SIGKILL)
        writer.wait()
        entry = verify(root)
        entry["kill_delay_seconds"] = round(delay, 3)
        report["iterations"].append(entry)
        status = "OK" if not entry["errors"] else "FAIL"
        print(
            f"iteration {iteration}: killed after {delay:.2f}s, "
            f"acked={entry['acked_batches']} recovered={entry['recovered_batches']} "
            f"[{status}]"
        )
        for error in entry["errors"]:
            print(f"  ERROR: {error}", file=sys.stderr)
            failed = True
    report["ok"] = not failed
    report_path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"report written to {report_path}")
    return 1 if failed else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path, required=True,
                        help="durable root directory (reused across iterations)")
    parser.add_argument("--iterations", type=int, default=3,
                        help="kill/recover cycles to run (default 3)")
    parser.add_argument("--max-delay", type=float, default=1.5,
                        help="max seconds before the SIGKILL (default 1.5)")
    parser.add_argument("--seed", type=int, default=None,
                        help="seed for the kill-delay RNG (default: nondeterministic)")
    parser.add_argument("--report", type=Path, default=Path("RECOVERY_REPORT.json"),
                        help="where to write the JSON report")
    parser.add_argument("--writer", action="store_true",
                        help=argparse.SUPPRESS)  # internal child mode
    args = parser.parse_args()
    if args.writer:
        return run_writer(args.root)
    return run_parent(args.root, args.iterations, args.max_delay, args.seed,
                      args.report)


if __name__ == "__main__":
    raise SystemExit(main())
