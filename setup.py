"""Setuptools shim.

The project is configured through ``pyproject.toml``; this file exists so the
package can be installed in editable mode on machines without the ``wheel``
package (offline environments), via::

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
