"""Pytest bootstrap: make the ``src`` layout importable without installation.

The test and benchmark suites import :mod:`repro` directly.  When the package
has been installed (``pip install -e .``) this file is a no-op; otherwise it
prepends ``src/`` to ``sys.path`` so the suites also run in offline
environments where an editable install is not possible.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
