"""Uniform and Gaussian point generators."""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect

__all__ = ["uniform_points", "gaussian_points"]


def uniform_points(
    n: int,
    bounds: Rect,
    seed: int = 0,
    start_pid: int = 0,
) -> list[Point]:
    """Generate ``n`` points uniformly at random inside ``bounds``.

    Parameters
    ----------
    n:
        Number of points.
    bounds:
        Rectangle to fill.
    seed:
        Seed of the pseudo-random generator (datasets are reproducible).
    start_pid:
        First point identifier; points get consecutive ids from here, which
        keeps ids unique across several generated relations.
    """
    if n < 0:
        raise InvalidParameterError("n must be non-negative")
    rng = np.random.default_rng(seed)
    xs = rng.uniform(bounds.xmin, bounds.xmax, size=n)
    ys = rng.uniform(bounds.ymin, bounds.ymax, size=n)
    return [Point(float(x), float(y), start_pid + i) for i, (x, y) in enumerate(zip(xs, ys))]


def gaussian_points(
    n: int,
    center: Point,
    std: float,
    bounds: Rect | None = None,
    seed: int = 0,
    start_pid: int = 0,
) -> list[Point]:
    """Generate ``n`` points from an isotropic Gaussian around ``center``.

    When ``bounds`` is given the samples are clipped to the rectangle so that
    all generated points share a common extent with other relations.
    """
    if n < 0:
        raise InvalidParameterError("n must be non-negative")
    if std < 0:
        raise InvalidParameterError("std must be non-negative")
    rng = np.random.default_rng(seed)
    xs = rng.normal(center.x, std, size=n)
    ys = rng.normal(center.y, std, size=n)
    if bounds is not None:
        xs = np.clip(xs, bounds.xmin, bounds.xmax)
        ys = np.clip(ys, bounds.ymin, bounds.ymax)
    return [Point(float(x), float(y), start_pid + i) for i, (x, y) in enumerate(zip(xs, ys))]
