"""Workload and dataset generators.

The paper's evaluation uses the BerlinMOD benchmark (≈2000 simulated cars
moving over Berlin for 28 days, with the time dimension dropped to obtain
snapshots of 32k–2.56M points) plus synthetic clustered datasets.  BerlinMOD
itself requires the Secondo DBMS and a network download, so this package
provides a faithful, fully self-contained substitute:

* :mod:`repro.datagen.network` — a synthetic street network of a city-like
  region (ring + radial arterials + local grid streets).
* :mod:`repro.datagen.berlinmod` — a trip-based moving-object simulator over
  that network whose position snapshots reproduce the skewed, street-aligned,
  multi-cluster distribution that drives the paper's pruning effects.
* :mod:`repro.datagen.uniform` / :mod:`repro.datagen.clustered` — the uniform
  and clustered synthetic datasets of Sections 4.1.2 and 6.2.
* :mod:`repro.datagen.workload` — named dataset recipes used by the benchmark
  harness.

All generators are deterministic given a seed.
"""

from repro.datagen.uniform import uniform_points, gaussian_points
from repro.datagen.clustered import clustered_points, cluster_centers
from repro.datagen.network import StreetNetwork, build_street_network
from repro.datagen.berlinmod import (
    BerlinModConfig,
    BerlinModTickStream,
    berlinmod_snapshot,
)
from repro.datagen.workload import DatasetSpec, make_dataset

__all__ = [
    "uniform_points",
    "gaussian_points",
    "clustered_points",
    "cluster_centers",
    "StreetNetwork",
    "build_street_network",
    "BerlinModConfig",
    "BerlinModTickStream",
    "berlinmod_snapshot",
    "DatasetSpec",
    "make_dataset",
]
