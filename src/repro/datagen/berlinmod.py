"""Synthetic BerlinMOD-like snapshot generator.

BerlinMOD (Düntgen, Behr, Güting; VLDB Journal 2009) simulates about two
thousand vehicles commuting over Berlin for 28 days; the paper drops the time
dimension and uses position snapshots of 32k–2.56M points.  This module
produces snapshots with the same *statistical* character without the Secondo
DBMS or any download:

* vehicles live in home/work neighborhoods that concentrate around the city
  core (log-normal distance from the center),
* every reported position lies on a street of the synthetic network
  (:mod:`repro.datagen.network`), with a small GPS-style jitter,
* each vehicle reports many positions along its trips, so points come in
  per-vehicle bursts rather than i.i.d. — matching the multi-scale clustering
  of the real benchmark.

The generator is deterministic given its configuration (including the seed).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from typing import Iterator, Sequence

from repro.datagen.network import StreetNetwork, build_street_network
from repro.exceptions import InvalidParameterError
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.storage.update import UpdateBatch

__all__ = ["BerlinModConfig", "berlinmod_snapshot", "BerlinModTickStream"]

#: Default spatial extent, in meters, roughly matching a 40 km x 40 km city.
DEFAULT_BOUNDS = Rect(0.0, 0.0, 40_000.0, 40_000.0)


@dataclass(frozen=True, slots=True)
class BerlinModConfig:
    """Configuration of the synthetic BerlinMOD-like generator.

    Parameters mirror the knobs of the original benchmark that matter for a
    spatial snapshot: the number of vehicles, how many position reports each
    vehicle contributes, how strongly homes/works concentrate around the
    center, and the GPS jitter applied to on-street positions.
    """

    num_vehicles: int = 2000
    reports_per_vehicle: int = 16
    bounds: Rect = DEFAULT_BOUNDS
    center_concentration: float = 0.35
    gps_jitter: float = 25.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_vehicles <= 0:
            raise InvalidParameterError("num_vehicles must be positive")
        if self.reports_per_vehicle <= 0:
            raise InvalidParameterError("reports_per_vehicle must be positive")
        if not (0.0 < self.center_concentration <= 1.0):
            raise InvalidParameterError("center_concentration must be in (0, 1]")
        if self.gps_jitter < 0:
            raise InvalidParameterError("gps_jitter must be non-negative")

    @property
    def total_points(self) -> int:
        """Number of snapshot points the configuration produces."""
        return self.num_vehicles * self.reports_per_vehicle


def berlinmod_snapshot(
    config: BerlinModConfig | None = None,
    n: int | None = None,
    seed: int | None = None,
    start_pid: int = 0,
    network: StreetNetwork | None = None,
) -> list[Point]:
    """Generate a BerlinMOD-like snapshot of vehicle positions.

    Parameters
    ----------
    config:
        Full generator configuration.  If omitted, a default configuration is
        used.
    n:
        Convenience override: generate (approximately exactly) ``n`` points by
        adjusting the number of vehicles while keeping the default reports per
        vehicle.  The paper varies dataset sizes from 32,000 to 2,560,000
        points this way.
    seed:
        Convenience override for the configuration seed.
    start_pid:
        First point identifier.
    network:
        Optional pre-built street network (shared across relations so that all
        datasets live on the same streets, as in BerlinMOD).
    """
    if config is None:
        config = BerlinModConfig()
    if seed is not None:
        config = BerlinModConfig(
            num_vehicles=config.num_vehicles,
            reports_per_vehicle=config.reports_per_vehicle,
            bounds=config.bounds,
            center_concentration=config.center_concentration,
            gps_jitter=config.gps_jitter,
            seed=seed,
        )
    if n is not None:
        if n <= 0:
            raise InvalidParameterError("n must be positive")
        reports = config.reports_per_vehicle
        vehicles = max(1, n // reports)
        config = BerlinModConfig(
            num_vehicles=vehicles,
            reports_per_vehicle=reports,
            bounds=config.bounds,
            center_concentration=config.center_concentration,
            gps_jitter=config.gps_jitter,
            seed=config.seed,
        )

    rng = np.random.default_rng(config.seed)
    if network is None:
        network = build_street_network(config.bounds, seed=config.seed)
    weights = network.sampling_weights()
    center = config.bounds.center
    max_radius = 0.5 * min(config.bounds.width, config.bounds.height)

    points: list[Point] = []
    pid = start_pid
    remaining = config.total_points if n is None else n
    vehicle = 0
    while remaining > 0:
        reports = min(config.reports_per_vehicle, remaining)
        # Home neighborhood: distance from the center is log-normal, so most
        # vehicles live near the core but a tail reaches the periphery.
        home_distance = min(
            max_radius * 0.98,
            float(rng.lognormal(mean=np.log(max_radius * config.center_concentration), sigma=0.6)),
        )
        home_angle = float(rng.uniform(0, 2 * np.pi))
        home_x = center.x + home_distance * np.cos(home_angle)
        home_y = center.y + home_distance * np.sin(home_angle)

        # Pick street segments for this vehicle's reports, biased to segments
        # near home: sample a shortlist by global weight, then re-weight by
        # proximity to the home location.
        shortlist = rng.choice(len(network.segments), size=min(32, len(network.segments)),
                               replace=False, p=weights)
        seg_mid = np.array(
            [network.segments[i].interpolate(0.5) for i in shortlist], dtype=np.float64
        )
        d = np.hypot(seg_mid[:, 0] - home_x, seg_mid[:, 1] - home_y)
        proximity = 1.0 / (1.0 + (d / (max_radius * 0.15)) ** 2)
        proximity /= proximity.sum()

        chosen = rng.choice(shortlist, size=reports, p=proximity)
        ts = rng.uniform(0, 1, size=reports)
        jitter = rng.normal(0.0, config.gps_jitter, size=(reports, 2))
        for j, seg_idx in enumerate(chosen):
            seg = network.segments[int(seg_idx)]
            x, y = seg.interpolate(float(ts[j]))
            x = float(np.clip(x + jitter[j, 0], config.bounds.xmin, config.bounds.xmax))
            y = float(np.clip(y + jitter[j, 1], config.bounds.ymin, config.bounds.ymax))
            points.append(Point(x, y, pid, payload=("vehicle", vehicle)))
            pid += 1
        remaining -= reports
        vehicle += 1
    return points


class BerlinModTickStream:
    """Per-tick update batches simulating continuously moving vehicles.

    The streaming companion of :func:`berlinmod_snapshot`: starting from a
    snapshot, each :meth:`tick` produces one columnar
    :class:`~repro.storage.update.UpdateBatch` in which a fraction of the
    population *moves* (a bounded random step from its current position —
    vehicles drive on), and optionally a small fraction leaves (``remove``)
    while new vehicles appear (``insert`` near the city core, with fresh
    pids).  The stream tracks its own view of the population, so consecutive
    batches are always consistent: moves and removes only ever name pids
    that are alive at that tick.

    The stream is deterministic given its seed, so two engines fed the same
    stream see byte-identical update sequences — which is how the figure-30
    workload keeps its incremental and re-execution series comparable.

    Parameters
    ----------
    points:
        The initial snapshot (the same points registered with the engine).
    bounds:
        Spatial extent positions are clipped to.
    move_fraction:
        Fraction of the population relocated per tick (the paper-style
        "1% update batch" is ``0.01``).
    churn_fraction:
        Fraction removed *and* (independently) inserted per tick; ``0.0``
        (the default) keeps the population fixed, which makes the stream
        indefinitely replayable against a snapshot taken at any tick.
    step:
        Expected move distance per tick (Rayleigh-distributed step length).
    seed:
        Determinism seed.
    """

    def __init__(
        self,
        points: Sequence[Point],
        bounds: Rect = DEFAULT_BOUNDS,
        move_fraction: float = 0.01,
        churn_fraction: float = 0.0,
        step: float = 250.0,
        seed: int = 0,
    ) -> None:
        if not points:
            raise InvalidParameterError("tick stream needs a non-empty snapshot")
        if not (0.0 < move_fraction <= 1.0):
            raise InvalidParameterError("move_fraction must be in (0, 1]")
        if not (0.0 <= churn_fraction < 1.0):
            raise InvalidParameterError("churn_fraction must be in [0, 1)")
        if step <= 0:
            raise InvalidParameterError("step must be positive")
        self.bounds = bounds
        self.move_fraction = move_fraction
        self.churn_fraction = churn_fraction
        self.step = step
        self._rng = np.random.default_rng(seed)
        self._pids = np.array([p.pid for p in points], dtype=np.int64)
        self._xs = np.array([p.x for p in points], dtype=np.float64)
        self._ys = np.array([p.y for p in points], dtype=np.float64)
        self._next_pid = int(self._pids.max()) + 1
        #: Number of ticks generated so far.
        self.ticks_generated = 0

    @property
    def population(self) -> int:
        """Current number of live points in the stream's view."""
        return len(self._pids)

    def tick(self) -> UpdateBatch:
        """Generate the next update batch and advance the stream's state."""
        rng = self._rng
        n = len(self._pids)
        num_moves = max(1, int(round(n * self.move_fraction)))
        num_churn = int(round(n * self.churn_fraction))
        chosen = rng.choice(n, size=min(num_moves + num_churn, n), replace=False)
        move_rows = chosen[:num_moves]
        remove_rows = chosen[num_moves:]

        # Rayleigh step length (mean ~ step) in a uniform heading, clipped to
        # the extent — the vehicle drives on from wherever it was.
        headings = rng.uniform(0.0, 2.0 * np.pi, size=len(move_rows))
        lengths = rng.rayleigh(scale=self.step / 1.2533, size=len(move_rows))
        new_xs = np.clip(
            self._xs[move_rows] + lengths * np.cos(headings),
            self.bounds.xmin,
            self.bounds.xmax,
        )
        new_ys = np.clip(
            self._ys[move_rows] + lengths * np.sin(headings),
            self.bounds.ymin,
            self.bounds.ymax,
        )
        move_pids = self._pids[move_rows].copy()
        self._xs[move_rows] = new_xs
        self._ys[move_rows] = new_ys

        removes = self._pids[remove_rows].copy()
        inserts: list[Point] = []
        if num_churn:
            # New vehicles appear with log-normal distance from the center,
            # matching the snapshot generator's concentration profile.
            center = self.bounds.center
            max_radius = 0.5 * min(self.bounds.width, self.bounds.height)
            radii = np.minimum(
                max_radius * 0.98,
                rng.lognormal(mean=np.log(max_radius * 0.35), sigma=0.6, size=num_churn),
            )
            angles = rng.uniform(0.0, 2.0 * np.pi, size=num_churn)
            ixs = np.clip(
                center.x + radii * np.cos(angles), self.bounds.xmin, self.bounds.xmax
            )
            iys = np.clip(
                center.y + radii * np.sin(angles), self.bounds.ymin, self.bounds.ymax
            )
            for x, y in zip(ixs.tolist(), iys.tolist()):
                inserts.append(Point(x, y, self._next_pid))
                self._next_pid += 1

        if len(remove_rows):
            keep = np.ones(n, dtype=bool)
            keep[remove_rows] = False
            self._pids = self._pids[keep]
            self._xs = self._xs[keep]
            self._ys = self._ys[keep]
        if inserts:
            self._pids = np.concatenate(
                (self._pids, np.array([p.pid for p in inserts], dtype=np.int64))
            )
            self._xs = np.concatenate(
                (self._xs, np.array([p.x for p in inserts], dtype=np.float64))
            )
            self._ys = np.concatenate(
                (self._ys, np.array([p.y for p in inserts], dtype=np.float64))
            )
        self.ticks_generated += 1
        return UpdateBatch.from_columns(
            insert_xs=np.array([p.x for p in inserts], dtype=np.float64),
            insert_ys=np.array([p.y for p in inserts], dtype=np.float64),
            insert_pids=np.array([p.pid for p in inserts], dtype=np.int64),
            remove_pids=removes,
            move_pids=move_pids,
            move_xs=new_xs,
            move_ys=new_ys,
        )

    def ticks(self, count: int) -> Iterator[UpdateBatch]:
        """Generate ``count`` consecutive update batches."""
        for _ in range(count):
            yield self.tick()
