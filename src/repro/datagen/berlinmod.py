"""Synthetic BerlinMOD-like snapshot generator.

BerlinMOD (Düntgen, Behr, Güting; VLDB Journal 2009) simulates about two
thousand vehicles commuting over Berlin for 28 days; the paper drops the time
dimension and uses position snapshots of 32k–2.56M points.  This module
produces snapshots with the same *statistical* character without the Secondo
DBMS or any download:

* vehicles live in home/work neighborhoods that concentrate around the city
  core (log-normal distance from the center),
* every reported position lies on a street of the synthetic network
  (:mod:`repro.datagen.network`), with a small GPS-style jitter,
* each vehicle reports many positions along its trips, so points come in
  per-vehicle bursts rather than i.i.d. — matching the multi-scale clustering
  of the real benchmark.

The generator is deterministic given its configuration (including the seed).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datagen.network import StreetNetwork, build_street_network
from repro.exceptions import InvalidParameterError
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect

__all__ = ["BerlinModConfig", "berlinmod_snapshot"]

#: Default spatial extent, in meters, roughly matching a 40 km x 40 km city.
DEFAULT_BOUNDS = Rect(0.0, 0.0, 40_000.0, 40_000.0)


@dataclass(frozen=True, slots=True)
class BerlinModConfig:
    """Configuration of the synthetic BerlinMOD-like generator.

    Parameters mirror the knobs of the original benchmark that matter for a
    spatial snapshot: the number of vehicles, how many position reports each
    vehicle contributes, how strongly homes/works concentrate around the
    center, and the GPS jitter applied to on-street positions.
    """

    num_vehicles: int = 2000
    reports_per_vehicle: int = 16
    bounds: Rect = DEFAULT_BOUNDS
    center_concentration: float = 0.35
    gps_jitter: float = 25.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_vehicles <= 0:
            raise InvalidParameterError("num_vehicles must be positive")
        if self.reports_per_vehicle <= 0:
            raise InvalidParameterError("reports_per_vehicle must be positive")
        if not (0.0 < self.center_concentration <= 1.0):
            raise InvalidParameterError("center_concentration must be in (0, 1]")
        if self.gps_jitter < 0:
            raise InvalidParameterError("gps_jitter must be non-negative")

    @property
    def total_points(self) -> int:
        """Number of snapshot points the configuration produces."""
        return self.num_vehicles * self.reports_per_vehicle


def berlinmod_snapshot(
    config: BerlinModConfig | None = None,
    n: int | None = None,
    seed: int | None = None,
    start_pid: int = 0,
    network: StreetNetwork | None = None,
) -> list[Point]:
    """Generate a BerlinMOD-like snapshot of vehicle positions.

    Parameters
    ----------
    config:
        Full generator configuration.  If omitted, a default configuration is
        used.
    n:
        Convenience override: generate (approximately exactly) ``n`` points by
        adjusting the number of vehicles while keeping the default reports per
        vehicle.  The paper varies dataset sizes from 32,000 to 2,560,000
        points this way.
    seed:
        Convenience override for the configuration seed.
    start_pid:
        First point identifier.
    network:
        Optional pre-built street network (shared across relations so that all
        datasets live on the same streets, as in BerlinMOD).
    """
    if config is None:
        config = BerlinModConfig()
    if seed is not None:
        config = BerlinModConfig(
            num_vehicles=config.num_vehicles,
            reports_per_vehicle=config.reports_per_vehicle,
            bounds=config.bounds,
            center_concentration=config.center_concentration,
            gps_jitter=config.gps_jitter,
            seed=seed,
        )
    if n is not None:
        if n <= 0:
            raise InvalidParameterError("n must be positive")
        reports = config.reports_per_vehicle
        vehicles = max(1, n // reports)
        config = BerlinModConfig(
            num_vehicles=vehicles,
            reports_per_vehicle=reports,
            bounds=config.bounds,
            center_concentration=config.center_concentration,
            gps_jitter=config.gps_jitter,
            seed=config.seed,
        )

    rng = np.random.default_rng(config.seed)
    if network is None:
        network = build_street_network(config.bounds, seed=config.seed)
    weights = network.sampling_weights()
    center = config.bounds.center
    max_radius = 0.5 * min(config.bounds.width, config.bounds.height)

    points: list[Point] = []
    pid = start_pid
    remaining = config.total_points if n is None else n
    vehicle = 0
    while remaining > 0:
        reports = min(config.reports_per_vehicle, remaining)
        # Home neighborhood: distance from the center is log-normal, so most
        # vehicles live near the core but a tail reaches the periphery.
        home_distance = min(
            max_radius * 0.98,
            float(rng.lognormal(mean=np.log(max_radius * config.center_concentration), sigma=0.6)),
        )
        home_angle = float(rng.uniform(0, 2 * np.pi))
        home_x = center.x + home_distance * np.cos(home_angle)
        home_y = center.y + home_distance * np.sin(home_angle)

        # Pick street segments for this vehicle's reports, biased to segments
        # near home: sample a shortlist by global weight, then re-weight by
        # proximity to the home location.
        shortlist = rng.choice(len(network.segments), size=min(32, len(network.segments)),
                               replace=False, p=weights)
        seg_mid = np.array(
            [network.segments[i].interpolate(0.5) for i in shortlist], dtype=np.float64
        )
        d = np.hypot(seg_mid[:, 0] - home_x, seg_mid[:, 1] - home_y)
        proximity = 1.0 / (1.0 + (d / (max_radius * 0.15)) ** 2)
        proximity /= proximity.sum()

        chosen = rng.choice(shortlist, size=reports, p=proximity)
        ts = rng.uniform(0, 1, size=reports)
        jitter = rng.normal(0.0, config.gps_jitter, size=(reports, 2))
        for j, seg_idx in enumerate(chosen):
            seg = network.segments[int(seg_idx)]
            x, y = seg.interpolate(float(ts[j]))
            x = float(np.clip(x + jitter[j, 0], config.bounds.xmin, config.bounds.xmax))
            y = float(np.clip(y + jitter[j, 1], config.bounds.ymin, config.bounds.ymax))
            points.append(Point(x, y, pid, payload=("vehicle", vehicle)))
            pid += 1
        remaining -= reports
        vehicle += 1
    return points
