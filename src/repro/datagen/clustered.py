"""Clustered point generators (Sections 4.1.2 and 6.2 of the paper).

The paper's cluster experiments use equal-size, equal-area, non-overlapping
clusters ("All the clusters have the same number of points (4000), have the
same area, and are non-overlapping").  ``cluster_centers`` places cluster
centers on a jittered grid so that clusters of a given radius never overlap;
``clustered_points`` fills each cluster with uniformly distributed points.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect

__all__ = ["cluster_centers", "clustered_points"]


def cluster_centers(
    num_clusters: int,
    bounds: Rect,
    cluster_radius: float,
    seed: int = 0,
) -> list[Point]:
    """Choose ``num_clusters`` non-overlapping cluster centers inside ``bounds``.

    Centers sit on a coarse grid (one cluster per grid cell, jittered within
    the cell), which guarantees non-overlap as long as the grid cell is at
    least two radii wide.

    Raises
    ------
    InvalidParameterError
        If the requested number of clusters of the given radius cannot fit in
        ``bounds`` without overlapping.
    """
    if num_clusters <= 0:
        raise InvalidParameterError("num_clusters must be positive")
    if cluster_radius <= 0:
        raise InvalidParameterError("cluster_radius must be positive")
    side_cells = math.ceil(math.sqrt(num_clusters))
    cell_w = bounds.width / side_cells
    cell_h = bounds.height / side_cells
    if cell_w < 2 * cluster_radius or cell_h < 2 * cluster_radius:
        raise InvalidParameterError(
            f"{num_clusters} clusters of radius {cluster_radius} do not fit in {bounds}"
        )
    rng = np.random.default_rng(seed)
    cells = [(ix, iy) for iy in range(side_cells) for ix in range(side_cells)]
    rng.shuffle(cells)
    centers: list[Point] = []
    for ix, iy in cells[:num_clusters]:
        slack_x = cell_w - 2 * cluster_radius
        slack_y = cell_h - 2 * cluster_radius
        cx = bounds.xmin + ix * cell_w + cluster_radius + rng.uniform(0, slack_x)
        cy = bounds.ymin + iy * cell_h + cluster_radius + rng.uniform(0, slack_y)
        centers.append(Point(float(cx), float(cy)))
    return centers


def clustered_points(
    num_clusters: int,
    points_per_cluster: int,
    bounds: Rect,
    cluster_radius: float,
    seed: int = 0,
    start_pid: int = 0,
) -> list[Point]:
    """Generate ``num_clusters`` equal-size, equal-area, non-overlapping clusters.

    Each cluster holds ``points_per_cluster`` points distributed uniformly in
    a disk of ``cluster_radius`` around its center.
    """
    if points_per_cluster <= 0:
        raise InvalidParameterError("points_per_cluster must be positive")
    centers = cluster_centers(num_clusters, bounds, cluster_radius, seed=seed)
    rng = np.random.default_rng(seed + 1)
    points: list[Point] = []
    pid = start_pid
    for center in centers:
        # Uniform sampling in a disk: radius ~ sqrt(U) * R.
        radii = cluster_radius * np.sqrt(rng.uniform(0, 1, size=points_per_cluster))
        angles = rng.uniform(0, 2 * math.pi, size=points_per_cluster)
        xs = center.x + radii * np.cos(angles)
        ys = center.y + radii * np.sin(angles)
        xs = np.clip(xs, bounds.xmin, bounds.xmax)
        ys = np.clip(ys, bounds.ymin, bounds.ymax)
        for x, y in zip(xs, ys):
            points.append(Point(float(x), float(y), pid))
            pid += 1
    return points
