"""Synthetic street network of a city-like region.

BerlinMOD simulates vehicles moving over the real Berlin street network.  We
cannot ship that network, so this module builds a compact synthetic stand-in
with the same structural ingredients that shape the spatial distribution of
vehicle positions:

* a dense **inner-city grid** of local streets around the center,
* several **radial arterials** running from the center to the periphery, and
* one or two **ring roads**.

Streets are polylines (sequences of segments).  The BerlinMOD-like generator
samples vehicle positions along these segments, weighting the dense center
more heavily, which yields the skewed street-aligned point distribution the
paper's experiments rely on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect

__all__ = ["StreetSegment", "StreetNetwork", "build_street_network"]


@dataclass(frozen=True, slots=True)
class StreetSegment:
    """A straight street segment with a sampling weight.

    ``weight`` is proportional to how much traffic (and therefore how many
    snapshot points) the segment attracts; arterials and inner-city streets
    get larger weights.
    """

    x1: float
    y1: float
    x2: float
    y2: float
    weight: float

    @property
    def length(self) -> float:
        return math.hypot(self.x2 - self.x1, self.y2 - self.y1)

    def interpolate(self, t: float) -> tuple[float, float]:
        """Point at parameter ``t`` in [0, 1] along the segment."""
        return (self.x1 + t * (self.x2 - self.x1), self.y1 + t * (self.y2 - self.y1))


@dataclass
class StreetNetwork:
    """A collection of street segments covering ``bounds``."""

    bounds: Rect
    segments: list[StreetSegment] = field(default_factory=list)

    @property
    def num_segments(self) -> int:
        return len(self.segments)

    @property
    def total_length(self) -> float:
        return sum(s.length for s in self.segments)

    def sampling_weights(self) -> np.ndarray:
        """Per-segment sampling weights (weight x length), normalized to sum 1."""
        if not self.segments:
            raise InvalidParameterError("network has no segments")
        w = np.array([s.weight * s.length for s in self.segments], dtype=np.float64)
        total = w.sum()
        if total <= 0:
            raise InvalidParameterError("network weights must be positive")
        return w / total


def build_street_network(
    bounds: Rect,
    grid_streets: int = 14,
    arterials: int = 8,
    rings: int = 2,
    seed: int = 0,
) -> StreetNetwork:
    """Build the synthetic street network.

    Parameters
    ----------
    bounds:
        Extent of the city region.
    grid_streets:
        Number of local streets per direction inside the inner-city core.
    arterials:
        Number of radial arterial roads from the center to the boundary.
    rings:
        Number of ring roads (approximated by regular 24-gons).
    seed:
        Seed for the small random jitter applied to street positions.
    """
    if grid_streets < 2 or arterials < 2 or rings < 0:
        raise InvalidParameterError("network needs at least 2 grid streets and 2 arterials")
    rng = np.random.default_rng(seed)
    center = bounds.center
    core_half_w = bounds.width * 0.22
    core_half_h = bounds.height * 0.22
    segments: list[StreetSegment] = []

    # Inner-city local street grid (dense, high weight).
    for i in range(grid_streets):
        frac = i / (grid_streets - 1)
        jitter = rng.uniform(-0.01, 0.01) * bounds.width
        x = center.x - core_half_w + 2 * core_half_w * frac + jitter
        segments.append(
            StreetSegment(x, center.y - core_half_h, x, center.y + core_half_h, weight=3.0)
        )
        y = center.y - core_half_h + 2 * core_half_h * frac + jitter
        segments.append(
            StreetSegment(center.x - core_half_w, y, center.x + core_half_w, y, weight=3.0)
        )

    # Radial arterials from the center to the boundary (medium weight).
    max_radius = 0.5 * min(bounds.width, bounds.height) * 0.95
    for i in range(arterials):
        angle = 2 * math.pi * i / arterials + rng.uniform(-0.05, 0.05)
        x2 = center.x + max_radius * math.cos(angle)
        y2 = center.y + max_radius * math.sin(angle)
        segments.append(StreetSegment(center.x, center.y, x2, y2, weight=2.0))

    # Ring roads (lower weight, far from the center).
    for r in range(1, rings + 1):
        radius = max_radius * r / (rings + 0.5)
        sides = 24
        for i in range(sides):
            a1 = 2 * math.pi * i / sides
            a2 = 2 * math.pi * (i + 1) / sides
            segments.append(
                StreetSegment(
                    center.x + radius * math.cos(a1),
                    center.y + radius * math.sin(a1),
                    center.x + radius * math.cos(a2),
                    center.y + radius * math.sin(a2),
                    weight=1.0,
                )
            )
    return StreetNetwork(bounds=bounds, segments=segments)
