"""Named dataset recipes used by examples, tests and the benchmark harness.

A :class:`DatasetSpec` describes *what* data to generate (distribution, size,
extent, seed); :func:`make_dataset` turns it into points.  The benchmark
harness composes specs per figure so every experiment's workload is recorded
declaratively and reproducibly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

from repro.datagen.berlinmod import BerlinModConfig, berlinmod_snapshot
from repro.datagen.clustered import clustered_points
from repro.datagen.uniform import gaussian_points, uniform_points
from repro.exceptions import InvalidParameterError
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect

__all__ = ["DatasetSpec", "make_dataset", "DEFAULT_EXTENT"]

#: Shared extent used by all recipes so relations overlay the same space.
DEFAULT_EXTENT = Rect(0.0, 0.0, 40_000.0, 40_000.0)

Distribution = Literal["uniform", "gaussian", "clustered", "berlinmod"]


@dataclass(frozen=True, slots=True)
class DatasetSpec:
    """A declarative description of one generated dataset."""

    distribution: Distribution
    n: int
    seed: int = 0
    bounds: Rect = DEFAULT_EXTENT
    #: clustered only: number of clusters.
    num_clusters: int = 4
    #: clustered only: radius of each cluster.
    cluster_radius: float = 1500.0
    #: gaussian only: relative center (fractions of the extent) and std.
    gaussian_center: tuple[float, float] = (0.5, 0.5)
    gaussian_std: float = 4000.0

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise InvalidParameterError("dataset size must be positive")


def make_dataset(spec: DatasetSpec, start_pid: int = 0) -> list[Point]:
    """Materialize ``spec`` into a list of points with ids from ``start_pid``."""
    if spec.distribution == "uniform":
        return uniform_points(spec.n, spec.bounds, seed=spec.seed, start_pid=start_pid)
    if spec.distribution == "gaussian":
        cx = spec.bounds.xmin + spec.gaussian_center[0] * spec.bounds.width
        cy = spec.bounds.ymin + spec.gaussian_center[1] * spec.bounds.height
        return gaussian_points(
            spec.n,
            Point(cx, cy),
            spec.gaussian_std,
            bounds=spec.bounds,
            seed=spec.seed,
            start_pid=start_pid,
        )
    if spec.distribution == "clustered":
        points_per_cluster = max(1, spec.n // spec.num_clusters)
        return clustered_points(
            spec.num_clusters,
            points_per_cluster,
            spec.bounds,
            spec.cluster_radius,
            seed=spec.seed,
            start_pid=start_pid,
        )[: spec.n]
    if spec.distribution == "berlinmod":
        config = BerlinModConfig(bounds=spec.bounds, seed=spec.seed)
        return berlinmod_snapshot(config=config, n=spec.n, start_pid=start_pid)
    raise InvalidParameterError(f"unknown distribution: {spec.distribution!r}")
