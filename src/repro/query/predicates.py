"""Declarative predicates referenced by relation name."""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import InvalidParameterError
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect

__all__ = ["KnnSelect", "KnnJoin", "RangeSelect", "validate_window"]


def validate_window(window: Rect, what: str) -> None:
    """Reject degenerate query windows at predicate construction time.

    A :class:`Rect` may legitimately be a zero-extent sliver (index blocks
    collapse to lines and points at dataset edges), but a *query window* with
    zero width or height selects a measure-zero region — always a caller bug,
    rejected with :class:`InvalidParameterError` exactly like ``k <= 0``.
    Inverted and NaN-cornered rectangles never get this far: ``Rect`` itself
    refuses to construct them (``GeometryError``, also a ``ValueError``).
    """
    if not isinstance(window, Rect):
        raise InvalidParameterError(f"{what} must be a Rect, got {window!r}")
    if window.width <= 0.0 or window.height <= 0.0:
        raise InvalidParameterError(
            f"{what} is degenerate (zero/negative extent): {window!r}"
        )


@dataclass(frozen=True, slots=True)
class KnnSelect:
    """``sigma_{k, focal}(relation)`` — keep the k points nearest to ``focal``."""

    relation: str
    focal: Point
    k: int

    def __post_init__(self) -> None:
        if not self.relation:
            raise InvalidParameterError("KnnSelect.relation must be non-empty")
        if self.k <= 0:
            raise InvalidParameterError("KnnSelect.k must be positive")


@dataclass(frozen=True, slots=True)
class RangeSelect:
    """``range_{window}(relation)`` — keep the points inside a rectangular window.

    Footnote 1 of the paper: a spatial-range selection interacts with a
    kNN-join exactly like a kNN-select does — pushing it below the join's
    inner relation is invalid.  The query dispatcher therefore treats a
    ``RangeSelect`` on the inner relation with the same machinery (baseline
    plan or the Block-Marking-style pruned plan).
    """

    relation: str
    window: Rect

    def __post_init__(self) -> None:
        if not self.relation:
            raise InvalidParameterError("RangeSelect.relation must be non-empty")
        validate_window(self.window, "RangeSelect.window")


@dataclass(frozen=True, slots=True)
class KnnJoin:
    """``outer join_kNN inner`` — pair each outer point with its k nearest inner points."""

    outer: str
    inner: str
    k: int

    def __post_init__(self) -> None:
        if not self.outer or not self.inner:
            raise InvalidParameterError("KnnJoin.outer and KnnJoin.inner must be non-empty")
        if self.outer == self.inner:
            raise InvalidParameterError("KnnJoin requires two distinct relations")
        if self.k <= 0:
            raise InvalidParameterError("KnnJoin.k must be positive")
