"""The user-facing declarative query API.

Typical use::

    from repro import Dataset, Query, KnnSelect, KnnJoin, Point

    hotels = Dataset.from_points("hotels", hotel_points)
    shops = Dataset.from_points("shops", shop_points)

    query = Query(
        KnnJoin(outer="shops", inner="hotels", k=2),
        KnnSelect(relation="hotels", focal=Point(3.0, 4.0), k=2),
    )
    result = query.run({"shops": shops, "hotels": hotels})
    for pair in result.pairs:
        ...

``Query.run`` classifies the predicate combination (two selects, select +
join on the inner/outer relation, chained or unchained joins), validates it
against the paper's correctness rules, asks the optimizer for the physical
strategy and executes it.
"""

from repro.query.dataset import Dataset
from repro.query.predicates import KnnJoin, KnnSelect, RangeSelect
from repro.query.results import QueryResult
from repro.query.query import Query
from repro.query.io import (
    load_points_csv,
    save_points_csv,
    save_pairs_csv,
    save_triplets_csv,
)

__all__ = [
    "Dataset",
    "KnnJoin",
    "KnnSelect",
    "RangeSelect",
    "QueryResult",
    "Query",
    "load_points_csv",
    "save_points_csv",
    "save_pairs_csv",
    "save_triplets_csv",
]
