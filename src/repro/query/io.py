"""CSV import/export for datasets and query results.

Real deployments rarely start from a generator: points arrive as CSV exports
of a GPS log or a POI database.  These helpers move data in and out of the
library without any dependency beyond the standard library:

* :func:`load_points_csv` / :func:`save_points_csv` — point relations with
  ``id,x,y`` columns (extra columns are preserved in the point payload).
* :func:`save_pairs_csv` / :func:`save_triplets_csv` — join results.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Sequence

from repro.exceptions import InvalidParameterError
from repro.geometry.point import Point
from repro.operators.results import JoinPair, JoinTriplet

__all__ = [
    "load_points_csv",
    "save_points_csv",
    "save_pairs_csv",
    "save_triplets_csv",
]


def load_points_csv(
    path: str | Path,
    id_column: str = "id",
    x_column: str = "x",
    y_column: str = "y",
) -> list[Point]:
    """Load a point relation from a CSV file with a header row.

    The ``id`` column is optional: when missing, sequential identifiers are
    assigned in file order.  Any remaining columns are stored in the point's
    payload as a dictionary.
    """
    path = Path(path)
    points: list[Point] = []
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise InvalidParameterError(f"{path} has no header row")
        if x_column not in reader.fieldnames or y_column not in reader.fieldnames:
            raise InvalidParameterError(
                f"{path} must have {x_column!r} and {y_column!r} columns, "
                f"found {reader.fieldnames}"
            )
        has_id = id_column in reader.fieldnames
        for i, row in enumerate(reader):
            pid = int(row[id_column]) if has_id and row[id_column] != "" else i
            extras = {
                key: value
                for key, value in row.items()
                if key not in (id_column, x_column, y_column)
            }
            points.append(
                Point(float(row[x_column]), float(row[y_column]), pid, payload=extras or None)
            )
    return points


def save_points_csv(points: Iterable[Point], path: str | Path) -> int:
    """Write a point relation as ``id,x,y`` CSV; returns the number of rows."""
    path = Path(path)
    count = 0
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["id", "x", "y"])
        for p in points:
            writer.writerow([p.pid, repr(p.x), repr(p.y)])
            count += 1
    return count


def save_pairs_csv(pairs: Sequence[JoinPair], path: str | Path) -> int:
    """Write kNN-join pairs as ``outer_id,inner_id,distance`` CSV."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["outer_id", "inner_id", "distance"])
        for pair in pairs:
            writer.writerow([pair.outer.pid, pair.inner.pid, repr(pair.distance)])
    return len(pairs)


def save_triplets_csv(triplets: Sequence[JoinTriplet], path: str | Path) -> int:
    """Write two-join triplets as ``a_id,b_id,c_id`` CSV."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["a_id", "b_id", "c_id"])
        for triplet in triplets:
            writer.writerow([triplet.a.pid, triplet.b.pid, triplet.c.pid])
    return len(triplets)
