"""The ``Dataset`` wrapper: a named point set plus its spatial index.

A dataset's points live in a columnar :class:`~repro.storage.pointstore.PointStore`
(contiguous ``xs``/``ys``/``pids`` columns plus a payload side-table); the
index builders consume the store directly and :class:`Point` objects are
materialized lazily only when :attr:`Dataset.points` is read.

Datasets are mutable through :meth:`Dataset.insert` / :meth:`Dataset.extend`
and :meth:`Dataset.remove` only.  Every mutation swaps in a new store
snapshot, bumps a monotonically increasing :attr:`Dataset.version` and marks
the index stale; the index is rebuilt lazily on next access.  Caches layered
on top (the engine's statistics and plan caches) key their entries on
``(name, version)`` so a mutation automatically invalidates them.
"""

from __future__ import annotations

from typing import Callable, Iterable, Literal, Sequence

import numpy as np

from repro.exceptions import EmptyDatasetError, InvalidParameterError
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.index.base import SpatialIndex
from repro.index.grid import GridIndex
from repro.index.quadtree import QuadtreeIndex
from repro.index.rtree import RTreeIndex
from repro.index.stats import IndexStats
from repro.storage.pointstore import PointStore
from repro.storage.update import AppliedUpdate, StoreChange, UpdateBatch

__all__ = ["Dataset"]

IndexKind = Literal["grid", "quadtree", "rtree"]

_INDEX_BUILDERS: dict[str, Callable[..., SpatialIndex]] = {
    "grid": GridIndex,
    "quadtree": QuadtreeIndex,
    "rtree": RTreeIndex,
}

#: A mutation touching at most this fraction of the (post-mutation) rows is
#: offered to the index for localized repair instead of a full rebuild.
_REPAIR_MAX_FRACTION = 0.25
#: ... but batches up to this many rows always qualify (tiny datasets).
_REPAIR_MIN_BATCH = 64


class Dataset:
    """A named relation of 2-D points with a lazily built spatial index.

    Parameters
    ----------
    name:
        Relation name used to refer to this dataset in query predicates.
    points:
        The relation's points — a sequence of :class:`Point` or an
        already-built :class:`PointStore`.  Points should carry unique
        ``pid`` values; use :meth:`from_points` to assign them automatically
        when absent.
    index_kind:
        Which index to build (``"grid"``, ``"quadtree"`` or ``"rtree"``); the
        paper's evaluation uses the grid.
    bounds:
        Optional shared extent.  Give several datasets the same bounds when
        they should share a grid decomposition (e.g. relations of one query).
    index_options:
        Extra keyword arguments forwarded to the index constructor.
    """

    def __init__(
        self,
        name: str,
        points: Sequence[Point] | PointStore,
        index_kind: IndexKind = "grid",
        bounds: Rect | None = None,
        **index_options: object,
    ) -> None:
        if not name:
            raise InvalidParameterError("dataset name must be non-empty")
        if len(points) == 0:
            raise EmptyDatasetError(f"dataset {name!r} has no points")
        if index_kind not in _INDEX_BUILDERS:
            raise InvalidParameterError(f"unknown index kind: {index_kind!r}")
        self.name = name
        self._store = (
            points if isinstance(points, PointStore) else PointStore.from_points(points)
        )
        self._points: tuple[Point, ...] | None = None
        self._index_kind: IndexKind = index_kind
        self._bounds = bounds
        self._index_options = dict(index_options)
        self._index: SpatialIndex | None = None
        self._version = 0
        #: Number of full index (re)builds this dataset has paid for.
        self.index_rebuilds = 0
        #: Number of mutations absorbed by localized index repair instead.
        self.index_repairs = 0
        # Observability hook: called with "rebuild" / "repair" after the
        # matching counter increments.  Engines attach it at registration to
        # mirror index activity into their metrics registry and event log.
        self._index_observer: Callable[[str], None] | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_points(
        cls,
        name: str,
        points: Iterable[Point | tuple[float, float]],
        index_kind: IndexKind = "grid",
        bounds: Rect | None = None,
        start_pid: int = 0,
        **index_options: object,
    ) -> "Dataset":
        """Build a dataset, assigning fresh ``pid`` values when missing.

        Plain coordinate tuples are accepted and converted to points.
        """
        normalized: list[Point] = []
        pid = start_pid
        for item in points:
            if isinstance(item, Point):
                if item.pid >= 0:
                    normalized.append(item)
                else:
                    normalized.append(Point(item.x, item.y, pid, item.payload))
                    pid += 1
            else:
                x, y = item
                normalized.append(Point(float(x), float(y), pid))
                pid += 1
        return cls(name, normalized, index_kind=index_kind, bounds=bounds, **index_options)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def store(self) -> PointStore:
        """The columnar store holding the relation's points."""
        return self._store

    @property
    def points(self) -> tuple[Point, ...]:
        """The relation's points (materialized lazily from the store)."""
        if self._points is None:
            self._points = tuple(self._store.iter_points())
        return self._points

    def __len__(self) -> int:
        return len(self._store)

    @property
    def index(self) -> SpatialIndex:
        """The dataset's spatial index (built on first access).

        Small mutations never reach this build path: they patch the existing
        index through :meth:`SpatialIndex.repaired` (see :meth:`apply_update`);
        :attr:`index_rebuilds` counts the full builds that did happen.
        """
        if self._index is None:
            builder = _INDEX_BUILDERS[self._index_kind]
            options = dict(self._index_options)
            if self._bounds is not None and self._index_kind in ("grid", "quadtree"):
                options["bounds"] = self._bounds
            self._index = builder(self._store, **options)
            self.index_rebuilds += 1
            if self._index_observer is not None:
                self._index_observer("rebuild")
        return self._index

    def set_index_observer(self, observer: Callable[[str], None] | None) -> None:
        """Attach (or clear, with ``None``) the index-activity observer.

        The observer receives ``"rebuild"`` after every full index build and
        ``"repair"`` after every localized repair, right after the matching
        counter (:attr:`index_rebuilds` / :attr:`index_repairs`) increments.
        One slot: engines attach it when the dataset is registered, so the
        dataset's index activity lands in the registering engine's metrics
        registry and event log.  The observer is transient — it is dropped
        when the dataset is pickled (process-pool workers re-register).
        """
        self._index_observer = observer

    def __getstate__(self) -> dict[str, object]:
        """Pickle support: the index observer (an engine closure) is dropped."""
        state = dict(self.__dict__)
        state["_index_observer"] = None
        return state

    @property
    def index_kind(self) -> IndexKind:
        """Which index structure backs this dataset."""
        return self._index_kind

    @property
    def bounds(self) -> Rect | None:
        """The explicit shared extent given at construction (``None`` if unset)."""
        return self._bounds

    @property
    def index_options(self) -> dict[str, object]:
        """A copy of the extra keyword arguments forwarded to the index builder."""
        return dict(self._index_options)

    @property
    def version(self) -> int:
        """Monotonic counter bumped by every mutation (insert/extend/remove)."""
        return self._version

    @property
    def stats(self) -> IndexStats:
        """Block statistics of the dataset's index."""
        return IndexStats.from_index(self.index)

    # ------------------------------------------------------------------
    # Incremental updates
    # ------------------------------------------------------------------
    def prepare_insert(
        self, points: Iterable[Point | tuple[float, float]]
    ) -> tuple[Point, ...]:
        """Normalize candidate points for :meth:`insert` without mutating.

        Plain coordinate tuples (and points without a ``pid``) get fresh
        ``pid`` values above the current maximum; points carrying an explicit
        ``pid`` that already exists in the relation are rejected — join and
        intersection operators key on pids, so duplicates would silently
        corrupt results.  Every explicit pid in the batch is reserved *up
        front*, so the assignment is independent of item order and identical
        to the columnar batch path (:meth:`extend` with a
        :class:`PointStore`).  Callers that must route an insert (e.g. a
        sharded dataset assigning each new point to its owning shard) use
        this to learn the final pids before committing the mutation.
        """
        items = list(points)
        existing = set(self._store.pids.tolist())
        # Reserve explicit batch pids first: a fresh pid must never collide
        # with an explicit pid appearing anywhere in the same batch.
        for item in items:
            if isinstance(item, Point) and item.pid >= 0:
                if item.pid in existing:
                    raise InvalidParameterError(
                        f"pid {item.pid} already exists in dataset {self.name!r}"
                    )
                existing.add(item.pid)
        next_pid = self._store.max_pid() + 1
        added: list[Point] = []

        def fresh_pid() -> int:
            nonlocal next_pid
            while next_pid in existing:
                next_pid += 1
            existing.add(next_pid)
            return next_pid

        for item in items:
            if isinstance(item, Point):
                if item.pid >= 0:
                    added.append(item)
                else:
                    added.append(Point(item.x, item.y, fresh_pid(), item.payload))
            else:
                x, y = item
                added.append(Point(float(x), float(y), fresh_pid()))
        return tuple(added)

    def extend(self, points: Iterable[Point | tuple[float, float]] | PointStore) -> int:
        """Bulk-append points in one mutation; returns the number added.

        One normalization pass, one store snapshot, **one** version bump and
        one (lazy) index rebuild — large ingests through ``extend`` avoid the
        per-point rebuild/invalidation cost of calling :meth:`insert` in a
        loop.  Accepts the same inputs as :meth:`insert` plus an
        already-columnar :class:`PointStore`, which is validated vectorized
        (explicit pids checked against the relation, missing pids — any
        negative value — replaced with fresh ones) and appended without ever
        materializing point objects.
        """
        if isinstance(points, PointStore):
            prepared = self._prepare_store(points)
            if len(prepared) == 0:
                return 0
            self._swap_store(
                self._store.extended(prepared), StoreChange(appended=len(prepared))
            )
            return len(prepared)
        added = self.prepare_insert(points)
        if not added:
            return 0
        self.commit_insert(added)
        return len(added)

    def _prepare_store(self, batch: PointStore) -> PointStore:
        """Vectorized normalization of a columnar insert batch.

        Mirrors :meth:`prepare_insert`: explicit pids must not collide with
        the relation or repeat within the batch; negative pids are replaced
        with fresh values above the current maximum, skipping explicit pids
        supplied in the same batch.
        """
        return self._normalize_batch(self._store, batch)

    def _normalize_batch(
        self, target: PointStore, batch: PointStore, pid_floor: int = -1
    ) -> PointStore:
        """Normalize an insert batch against ``target``'s pid population.

        ``pid_floor`` raises the starting point for fresh pid assignment —
        :meth:`apply_update` passes the *pre-batch* maximum so that a batch
        removing the highest-pid point never hands its pid straight to a new
        point (subscribers diffing deltas would see one pid "teleport").
        """
        if len(batch) == 0:
            return batch
        pids = batch.pids
        explicit = pids[pids >= 0]
        if len(explicit):
            if len(np.unique(explicit)) != len(explicit):
                raise InvalidParameterError(
                    f"duplicate pids within insert batch for dataset {self.name!r}"
                )
            clash = np.isin(explicit, target.pids)
            if clash.any():
                raise InvalidParameterError(
                    f"pid {int(explicit[clash][0])} already exists in dataset {self.name!r}"
                )
        anon = int((pids < 0).sum())
        if anon == 0:
            return batch
        start = max(target.max_pid(), pid_floor)
        # Generate enough candidates to survive removing explicit collisions;
        # same assignment as prepare_insert: fill upward from the current
        # maximum, skipping pids supplied explicitly in this batch.
        pool = np.arange(start + 1, start + 1 + anon + len(explicit), dtype=np.int64)
        if len(explicit):
            pool = pool[~np.isin(pool, explicit)]
        fresh = pids.copy()
        fresh[pids < 0] = pool[:anon]
        return PointStore(batch.xs, batch.ys, fresh, dict(batch.payloads))

    def insert(self, points: Iterable[Point | tuple[float, float]]) -> int:
        """Add points to the relation; returns the number of points added.

        Input normalization (fresh pids, duplicate rejection) is documented
        at :meth:`prepare_insert`.  The index is marked stale and rebuilt on
        next access; :attr:`version` is bumped so that caches keyed on it
        drop their entries.  For large batches prefer :meth:`extend`, which
        is the same mutation with a vectorized columnar fast path.
        """
        return self.extend(points)

    def commit_insert(self, prepared: Sequence[Point]) -> None:
        """Append a batch previously returned by :meth:`prepare_insert`.

        Skips re-normalization — the batch's pids were already validated and
        assigned against this relation's current state, so callers that had
        to prepare separately (e.g. a sharded dataset routing each point to
        its owning shard) commit without a second O(n) scan.  Must be called
        with no intervening mutation since the prepare.
        """
        if not prepared:
            return
        self._swap_store(
            self._store.extended(PointStore.from_points(prepared)),
            StoreChange(appended=len(prepared)),
        )

    def remove(self, pids: Iterable[int]) -> int:
        """Remove the points with the given ``pid`` values; returns the count.

        Removing every point is rejected (datasets are non-empty by
        construction).  Unknown pids are ignored.  As with :meth:`insert`,
        :attr:`version` is bumped; small batches repair the index in place
        instead of marking it stale (see :meth:`apply_update`).
        """
        doomed = set(pids)
        if not doomed:
            return 0
        rows = self._store.rows_of_pids(doomed)
        removed = len(rows)
        if removed == 0:
            return 0
        if removed >= len(self._store):
            raise EmptyDatasetError(
                f"removing {removed} points would leave dataset {self.name!r} empty"
            )
        self._swap_store(
            self._store.without_rows(rows),
            StoreChange(removed_rows=np.asarray(rows, dtype=np.int64)),
        )
        return removed

    def move(self, moves: Iterable[tuple[int, float, float]]) -> int:
        """Relocate points to new coordinates; returns the number moved.

        ``moves`` are ``(pid, new_x, new_y)`` triples; unknown pids are
        ignored.  Row numbering is preserved (a move is a coordinate
        overwrite, not a remove+insert), which is what lets the index repair
        only the source and destination cells.
        """
        applied = self.apply_update(UpdateBatch(moves=moves))
        return len(applied.moved_pids)

    def apply_update(self, batch: UpdateBatch) -> AppliedUpdate:
        """Apply one insert/remove/move batch in a single snapshot swap.

        One store snapshot, **one** version bump and one index
        repair-or-rebuild for the whole batch, however it mixes the three
        operation kinds.  Unknown remove/move pids are ignored; all
        operations refer to the pre-batch state (see
        :class:`~repro.storage.update.UpdateBatch`).  Returns the effective
        mutation — including the old coordinates of removed and moved points
        — for consumers that maintain derived state (the stream layer's
        guard-region kernels).

        Small batches take the incremental index-repair fast path
        (:meth:`SpatialIndex.repaired`): only the affected blocks are
        patched, leaving :attr:`index_rebuilds` untouched and bumping
        :attr:`index_repairs` instead.
        """
        old = self._store
        # Moves: resolve target rows, ignoring unknown pids.
        aligned = old.rows_aligned(batch.move_pids)
        known = aligned >= 0
        move_rows = aligned[known]
        move_pids = batch.move_pids[known]
        move_xs = batch.move_xs[known]
        move_ys = batch.move_ys[known]
        # Removes: resolve rows (sorted), ignoring unknown pids.
        remove_rows = np.asarray(old.rows_of_pids(batch.remove_pids), dtype=np.int64)
        if len(move_rows) == 0 and len(remove_rows) == 0 and batch.num_inserts == 0:
            return AppliedUpdate()
        if len(old) - len(remove_rows) + batch.num_inserts == 0:
            raise EmptyDatasetError(
                f"update batch would leave dataset {self.name!r} empty"
            )
        removed_pids = old.pids[remove_rows]

        moved = old.moved(move_rows, move_xs, move_ys) if len(move_rows) else old
        shrunk = moved.without_rows(remove_rows) if len(remove_rows) else moved
        if batch.num_inserts:
            prepared = self._normalize_batch(
                shrunk,
                PointStore(
                    batch.insert_xs,
                    batch.insert_ys,
                    batch.insert_pids,
                    dict(batch.insert_payloads),
                    validate=False,
                ),
                pid_floor=old.max_pid(),
            )
            new_store = shrunk.extended(prepared)
        else:
            prepared = None
            new_store = shrunk
        self._swap_store(
            new_store,
            StoreChange(
                moved_rows=move_rows,
                removed_rows=remove_rows,
                appended=batch.num_inserts,
            ),
        )
        return AppliedUpdate(
            inserted_pids=prepared.pids if prepared is not None else np.empty(0, dtype=np.int64),
            inserted_xs=batch.insert_xs,
            inserted_ys=batch.insert_ys,
            removed_pids=removed_pids,
            removed_xs=old.xs[remove_rows],
            removed_ys=old.ys[remove_rows],
            moved_pids=move_pids,
            moved_old_xs=old.xs[move_rows],
            moved_old_ys=old.ys[move_rows],
            moved_new_xs=move_xs,
            moved_new_ys=move_ys,
        )

    def _swap_store(self, new_store: PointStore, change: StoreChange | None = None) -> None:
        """Commit a new store snapshot, repairing the index when possible.

        Always bumps :attr:`version` and drops the materialized-points cache.
        When the index is already built and the change is small (at most
        ``_REPAIR_MAX_FRACTION`` of the surviving rows, or
        ``_REPAIR_MIN_BATCH`` rows outright), the index is offered the change
        for localized repair; indexes that decline — and large batches — fall
        back to the lazy full rebuild.
        """
        index = self._index
        self._store = new_store
        self._points = None
        self._version += 1
        if (
            index is not None
            and change is not None
            and change.size
            <= max(_REPAIR_MIN_BATCH, int(_REPAIR_MAX_FRACTION * len(new_store)))
        ):
            repaired = index.repaired(new_store, change)
            if repaired is not None:
                self._index = repaired
                self.index_repairs += 1
                if self._index_observer is not None:
                    self._index_observer("repair")
                return
        self._index = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Dataset(name={self.name!r}, points={len(self._store)}, index={self._index_kind})"
