"""The ``Dataset`` wrapper: a named point set plus its spatial index."""

from __future__ import annotations

from typing import Callable, Iterable, Literal, Sequence

from repro.exceptions import EmptyDatasetError, InvalidParameterError
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.index.base import SpatialIndex
from repro.index.grid import GridIndex
from repro.index.quadtree import QuadtreeIndex
from repro.index.rtree import RTreeIndex
from repro.index.stats import IndexStats

__all__ = ["Dataset"]

IndexKind = Literal["grid", "quadtree", "rtree"]

_INDEX_BUILDERS: dict[str, Callable[..., SpatialIndex]] = {
    "grid": GridIndex,
    "quadtree": QuadtreeIndex,
    "rtree": RTreeIndex,
}


class Dataset:
    """A named relation of 2-D points with a lazily built spatial index.

    Parameters
    ----------
    name:
        Relation name used to refer to this dataset in query predicates.
    points:
        The relation's points.  Points should carry unique ``pid`` values; use
        :meth:`from_points` to assign them automatically when absent.
    index_kind:
        Which index to build (``"grid"``, ``"quadtree"`` or ``"rtree"``); the
        paper's evaluation uses the grid.
    bounds:
        Optional shared extent.  Give several datasets the same bounds when
        they should share a grid decomposition (e.g. relations of one query).
    index_options:
        Extra keyword arguments forwarded to the index constructor.
    """

    def __init__(
        self,
        name: str,
        points: Sequence[Point],
        index_kind: IndexKind = "grid",
        bounds: Rect | None = None,
        **index_options: object,
    ) -> None:
        if not name:
            raise InvalidParameterError("dataset name must be non-empty")
        if not points:
            raise EmptyDatasetError(f"dataset {name!r} has no points")
        if index_kind not in _INDEX_BUILDERS:
            raise InvalidParameterError(f"unknown index kind: {index_kind!r}")
        self.name = name
        self._points: tuple[Point, ...] = tuple(points)
        self._index_kind: IndexKind = index_kind
        self._bounds = bounds
        self._index_options = dict(index_options)
        self._index: SpatialIndex | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_points(
        cls,
        name: str,
        points: Iterable[Point | tuple[float, float]],
        index_kind: IndexKind = "grid",
        bounds: Rect | None = None,
        start_pid: int = 0,
        **index_options: object,
    ) -> "Dataset":
        """Build a dataset, assigning fresh ``pid`` values when missing.

        Plain coordinate tuples are accepted and converted to points.
        """
        normalized: list[Point] = []
        pid = start_pid
        for item in points:
            if isinstance(item, Point):
                if item.pid >= 0:
                    normalized.append(item)
                else:
                    normalized.append(Point(item.x, item.y, pid, item.payload))
                    pid += 1
            else:
                x, y = item
                normalized.append(Point(float(x), float(y), pid))
                pid += 1
        return cls(name, normalized, index_kind=index_kind, bounds=bounds, **index_options)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def points(self) -> tuple[Point, ...]:
        """The relation's points."""
        return self._points

    def __len__(self) -> int:
        return len(self._points)

    @property
    def index(self) -> SpatialIndex:
        """The dataset's spatial index (built on first access)."""
        if self._index is None:
            builder = _INDEX_BUILDERS[self._index_kind]
            options = dict(self._index_options)
            if self._bounds is not None and self._index_kind in ("grid", "quadtree"):
                options["bounds"] = self._bounds
            self._index = builder(self._points, **options)
        return self._index

    @property
    def index_kind(self) -> IndexKind:
        """Which index structure backs this dataset."""
        return self._index_kind

    @property
    def stats(self) -> IndexStats:
        """Block statistics of the dataset's index."""
        return IndexStats.from_index(self.index)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Dataset(name={self.name!r}, points={len(self._points)}, index={self._index_kind})"
