"""The ``Query`` dispatcher: classify, validate, optimize and execute.

A query holds one or two kNN predicates over named relations.  ``run`` maps
the predicate combination onto one of the paper's query classes, checks the
combination against the correctness rules, lets the optimizer pick a physical
algorithm (unless the caller forces one) and executes it.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.select_join.baseline import select_join_baseline
from repro.core.select_join.block_marking import select_join_block_marking
from repro.core.select_join.counting import select_join_counting
from repro.core.select_join.outer_select import outer_select_join_pushdown
from repro.core.stats import PruningStats
from repro.core.two_joins.chained import chained_joins_nested
from repro.core.two_joins.unchained import (
    unchained_joins_auto,
    unchained_joins_baseline,
)
from repro.core.two_selects.baseline import two_knn_selects_baseline
from repro.core.two_selects.optimized import two_knn_selects_optimized
from repro.core.select_join.range_inner import (
    range_inner_join_baseline,
    range_inner_join_block_marking,
)
from repro.exceptions import InvalidParameterError, UnsupportedQueryError
from repro.operators.intersection import intersect_points
from repro.operators.knn_join import knn_join_pairs
from repro.operators.knn_select import knn_select
from repro.operators.range_select import range_select
from repro.planner.optimizer import Optimizer, SelectJoinStrategy
from repro.query.dataset import Dataset
from repro.query.predicates import KnnJoin, KnnSelect, RangeSelect
from repro.query.results import QueryResult

__all__ = ["Query"]

Predicate = KnnSelect | KnnJoin | RangeSelect


class Query:
    """A spatial query made of one or two kNN predicates.

    Parameters
    ----------
    *predicates:
        One or two :class:`KnnSelect` / :class:`KnnJoin` predicates.
    strategy:
        ``"auto"`` (default) lets the optimizer choose the paper's optimized
        algorithm; ``"baseline"`` forces the conceptually correct QEP;
        ``"counting"`` / ``"block_marking"`` force a specific select+join
        algorithm.
    optimizer:
        Optional custom :class:`~repro.planner.optimizer.Optimizer`.
    """

    def __init__(
        self,
        *predicates: Predicate,
        strategy: str = "auto",
        optimizer: Optimizer | None = None,
    ) -> None:
        if not 1 <= len(predicates) <= 2:
            raise UnsupportedQueryError("a query must have one or two kNN predicates")
        for predicate in predicates:
            if not isinstance(predicate, (KnnSelect, KnnJoin, RangeSelect)):
                raise InvalidParameterError(f"unsupported predicate: {predicate!r}")
        if strategy not in ("auto", "baseline", "counting", "block_marking"):
            raise InvalidParameterError(f"unknown strategy: {strategy!r}")
        self.predicates: tuple[Predicate, ...] = tuple(predicates)
        self.strategy = strategy
        self.optimizer = optimizer or Optimizer()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, datasets: Mapping[str, Dataset]) -> QueryResult:
        """Execute the query against the given relations (name → dataset)."""
        self._check_relations_exist(datasets)
        selects = [p for p in self.predicates if isinstance(p, KnnSelect)]
        joins = [p for p in self.predicates if isinstance(p, KnnJoin)]
        ranges = [p for p in self.predicates if isinstance(p, RangeSelect)]

        if len(self.predicates) == 1:
            if selects:
                return self._run_single_select(selects[0], datasets)
            if ranges:
                return self._run_single_range(ranges[0], datasets)
            return self._run_single_join(joins[0], datasets)
        if len(selects) == 2:
            return self._run_two_selects(selects[0], selects[1], datasets)
        if len(selects) == 1 and len(joins) == 1:
            return self._run_select_join(selects[0], joins[0], datasets)
        if len(ranges) == 1 and len(joins) == 1:
            return self._run_range_join(ranges[0], joins[0], datasets)
        if len(ranges) == 1 and len(selects) == 1:
            return self._run_range_and_knn_select(ranges[0], selects[0], datasets)
        if len(ranges) == 2:
            return self._run_two_ranges(ranges[0], ranges[1], datasets)
        return self._run_two_joins(joins[0], joins[1], datasets)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _check_relations_exist(self, datasets: Mapping[str, Dataset]) -> None:
        names: set[str] = set()
        for predicate in self.predicates:
            if isinstance(predicate, (KnnSelect, RangeSelect)):
                names.add(predicate.relation)
            else:
                names.add(predicate.outer)
                names.add(predicate.inner)
        missing = sorted(n for n in names if n not in datasets)
        if missing:
            raise UnsupportedQueryError(f"datasets missing for relations: {', '.join(missing)}")

    # -- single-predicate queries --------------------------------------
    def _run_single_select(
        self, select: KnnSelect, datasets: Mapping[str, Dataset]
    ) -> QueryResult:
        neighborhood = knn_select(datasets[select.relation].index, select.focal, select.k)
        return QueryResult(
            strategy="knn-select",
            query_class="single-select",
            points=tuple(neighborhood),
        )

    def _run_single_range(
        self, predicate: RangeSelect, datasets: Mapping[str, Dataset]
    ) -> QueryResult:
        points = range_select(datasets[predicate.relation].index, predicate.window)
        return QueryResult(
            strategy="range-select",
            query_class="single-range",
            points=tuple(points),
        )

    def _run_single_join(self, join: KnnJoin, datasets: Mapping[str, Dataset]) -> QueryResult:
        pairs = knn_join_pairs(
            datasets[join.outer].points, datasets[join.inner].index, join.k
        )
        return QueryResult(
            strategy="knn-join",
            query_class="single-join",
            pairs=tuple(pairs),
        )

    # -- two selects ----------------------------------------------------
    def _run_two_selects(
        self, first: KnnSelect, second: KnnSelect, datasets: Mapping[str, Dataset]
    ) -> QueryResult:
        if first.relation != second.relation:
            raise UnsupportedQueryError(
                "two kNN-selects must target the same relation to be intersected"
            )
        index = datasets[first.relation].index
        stats = PruningStats()
        if self.strategy == "baseline":
            points = two_knn_selects_baseline(index, first.focal, first.k, second.focal, second.k)
            strategy = "two-selects-baseline"
        else:
            points = two_knn_selects_optimized(
                index, first.focal, first.k, second.focal, second.k, stats=stats
            )
            strategy = "2-kNN-select"
        return QueryResult(
            strategy=strategy,
            query_class="two-selects",
            points=tuple(points),
            stats=stats,
        )

    # -- select + join ----------------------------------------------------
    def _run_select_join(
        self, select: KnnSelect, join: KnnJoin, datasets: Mapping[str, Dataset]
    ) -> QueryResult:
        outer = datasets[join.outer]
        inner = datasets[join.inner]
        stats = PruningStats()

        if select.relation == join.outer:
            pairs = outer_select_join_pushdown(
                outer.index, inner.index, select.focal, join.k, select.k
            )
            return QueryResult(
                strategy="outer-select-pushdown",
                query_class="select-outer-of-join",
                pairs=tuple(pairs),
                stats=stats,
            )
        if select.relation != join.inner:
            raise UnsupportedQueryError(
                "the kNN-select must target either the join's outer or inner relation"
            )

        strategy = self._select_join_strategy(outer)
        if strategy is SelectJoinStrategy.BASELINE:
            pairs = select_join_baseline(
                outer.points, inner.index, select.focal, join.k, select.k
            )
        elif strategy is SelectJoinStrategy.COUNTING:
            pairs = select_join_counting(
                outer.points, inner.index, select.focal, join.k, select.k, stats=stats
            )
        else:
            pairs = select_join_block_marking(
                outer.index, inner.index, select.focal, join.k, select.k, stats=stats
            )
        return QueryResult(
            strategy=strategy.value,
            query_class="select-inner-of-join",
            pairs=tuple(pairs),
            stats=stats,
        )

    def _select_join_strategy(self, outer: Dataset) -> SelectJoinStrategy:
        if self.strategy == "baseline":
            return SelectJoinStrategy.BASELINE
        if self.strategy == "counting":
            return SelectJoinStrategy.COUNTING
        if self.strategy == "block_marking":
            return SelectJoinStrategy.BLOCK_MARKING
        return self.optimizer.select_join_strategy(outer.index)

    # -- range-select combinations (footnote 1) ---------------------------
    def _run_range_join(
        self, predicate: RangeSelect, join: KnnJoin, datasets: Mapping[str, Dataset]
    ) -> QueryResult:
        outer = datasets[join.outer]
        inner = datasets[join.inner]
        stats = PruningStats()

        if predicate.relation == join.outer:
            # Valid push-down: restrict the outer relation before joining.
            selected_outer = range_select(outer.index, predicate.window)
            pairs = knn_join_pairs(selected_outer, inner.index, join.k)
            return QueryResult(
                strategy="outer-range-pushdown",
                query_class="range-outer-of-join",
                pairs=tuple(pairs),
                stats=stats,
            )
        if predicate.relation != join.inner:
            raise UnsupportedQueryError(
                "the range-select must target either the join's outer or inner relation"
            )
        if self.strategy == "baseline":
            pairs = range_inner_join_baseline(
                outer.points, inner.index, predicate.window, join.k
            )
            strategy = "range-inner-baseline"
        else:
            pairs = range_inner_join_block_marking(
                outer.index, inner.index, predicate.window, join.k, stats=stats
            )
            strategy = "range-inner-block-marking"
        return QueryResult(
            strategy=strategy,
            query_class="range-inner-of-join",
            pairs=tuple(pairs),
            stats=stats,
        )

    def _run_range_and_knn_select(
        self, predicate: RangeSelect, select: KnnSelect, datasets: Mapping[str, Dataset]
    ) -> QueryResult:
        if predicate.relation != select.relation:
            raise UnsupportedQueryError(
                "a range-select and a kNN-select must target the same relation"
            )
        index = datasets[select.relation].index
        neighborhood = knn_select(index, select.focal, select.k)
        points = [p for p in neighborhood if predicate.window.contains_point(p)]
        return QueryResult(
            strategy="knn-select-then-range-filter",
            query_class="range-and-knn-select",
            points=tuple(points),
        )

    def _run_two_ranges(
        self, first: RangeSelect, second: RangeSelect, datasets: Mapping[str, Dataset]
    ) -> QueryResult:
        if first.relation != second.relation:
            raise UnsupportedQueryError(
                "two range-selects must target the same relation to be intersected"
            )
        index = datasets[first.relation].index
        points = intersect_points(
            range_select(index, first.window), range_select(index, second.window)
        )
        return QueryResult(
            strategy="range-intersection",
            query_class="two-ranges",
            points=tuple(points),
        )

    # -- two joins --------------------------------------------------------
    def _run_two_joins(
        self, first: KnnJoin, second: KnnJoin, datasets: Mapping[str, Dataset]
    ) -> QueryResult:
        stats = PruningStats()
        # Chained: A -> B -> C (the first join's inner is the second's outer).
        if first.inner == second.outer:
            return self._run_chained(first, second, datasets, stats)
        if second.inner == first.outer:
            return self._run_chained(second, first, datasets, stats)
        # Unchained: both joins share the same inner relation.
        if first.inner == second.inner:
            return self._run_unchained(first, second, datasets, stats)
        raise UnsupportedQueryError(
            "two kNN-joins must be chained (A->B->C) or share their inner relation"
        )

    def _run_chained(
        self,
        ab: KnnJoin,
        bc: KnnJoin,
        datasets: Mapping[str, Dataset],
        stats: PruningStats,
    ) -> QueryResult:
        a = datasets[ab.outer]
        b = datasets[ab.inner]
        c = datasets[bc.inner]
        triplets = chained_joins_nested(
            a.points, b.index, c.index, ab.k, bc.k, cache=True, stats=stats
        )
        return QueryResult(
            strategy="nested-join-cached",
            query_class="chained-joins",
            triplets=tuple(triplets),
            stats=stats,
        )

    def _run_unchained(
        self,
        ab: KnnJoin,
        cb: KnnJoin,
        datasets: Mapping[str, Dataset],
        stats: PruningStats,
    ) -> QueryResult:
        a = datasets[ab.outer]
        c = datasets[cb.outer]
        b = datasets[ab.inner]
        if self.strategy == "baseline":
            triplets = unchained_joins_baseline(a.points, c.points, b.index, ab.k, cb.k)
            strategy = "unchained-baseline"
        else:
            triplets = unchained_joins_auto(a.index, c.index, b.index, ab.k, cb.k, stats=stats)
            strategy = "unchained-block-marking"
        return QueryResult(
            strategy=strategy,
            query_class="unchained-joins",
            triplets=tuple(triplets),
            stats=stats,
        )
