"""The ``Query`` dispatcher: classify, validate, optimize and execute.

A query holds one or two kNN predicates over named relations.  ``run`` maps
the predicate combination onto one of the paper's query classes, checks the
combination against the correctness rules, lets the optimizer pick a physical
algorithm (unless the caller forces one) and executes it.

Planning and execution are split: :meth:`Query.plan` derives a
:class:`~repro.planner.plan.PhysicalPlan` (the chosen strategy plus the
per-class decisions that justify it) and :meth:`Query.run` executes one.
One-shot callers never notice — ``run`` plans implicitly — but the split is
what allows :class:`repro.engine.SpatialEngine` to cache plans across calls
and to substitute cached index statistics for the O(n) recomputation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Mapping, MutableMapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.planner.calibrate import CalibrationStore, StrategyProfile

from repro.core.select_join.baseline import select_join_baseline
from repro.core.select_join.block_marking import select_join_block_marking
from repro.core.select_join.counting import select_join_counting
from repro.core.select_join.outer_select import outer_select_join_pushdown
from repro.core.stats import PruningStats
from repro.core.two_joins.chained import chained_joins_nested
from repro.core.two_joins.unchained import (
    unchained_joins_auto,
    unchained_joins_baseline,
)
from repro.core.two_selects.baseline import two_knn_selects_baseline
from repro.core.two_selects.optimized import two_knn_selects_optimized
from repro.core.select_join.range_inner import (
    range_inner_join_baseline,
    range_inner_join_block_marking,
)
from repro.algebra.tree import AlgebraNode, tree_from_signature
from repro.exceptions import InvalidParameterError, UnsupportedQueryError
from repro.index.stats import IndexStats
from repro.locality.neighborhood import Neighborhood
from repro.operators.intersection import intersect_points
from repro.operators.knn_join import knn_join_pairs
from repro.operators.knn_select import knn_select
from repro.operators.range_select import range_select
from repro.planner.optimizer import Optimizer, SelectJoinStrategy
from repro.planner.plan import PhysicalPlan
from repro.query.dataset import Dataset
from repro.query.predicates import KnnJoin, KnnSelect, RangeSelect
from repro.query.results import QueryResult

__all__ = ["Query", "bucket_k"]

Predicate = KnnSelect | KnnJoin | RangeSelect

#: ``(dataset) -> IndexStats`` — lets the engine substitute cached statistics.
StatsProvider = Callable[[Dataset], IndexStats]


def bucket_k(k: int) -> int:
    """Round ``k`` up to the next power of two.

    Plan-cache signatures bucket k-values so that queries differing only in a
    nearby ``k`` share one cached plan: the optimizer's decisions vary with
    the order of magnitude of ``k``, not its exact value.
    """
    if k <= 0:
        raise InvalidParameterError("k must be positive")
    return 1 << (k - 1).bit_length()


class Query:
    """A spatial query made of one or two kNN predicates.

    Parameters
    ----------
    *predicates:
        One or two :class:`KnnSelect` / :class:`KnnJoin` predicates.
    strategy:
        ``"auto"`` (default) lets the optimizer choose the paper's optimized
        algorithm; ``"baseline"`` forces the conceptually correct QEP;
        ``"counting"`` / ``"block_marking"`` force a specific select+join
        algorithm.
    optimizer:
        Optional custom :class:`~repro.planner.optimizer.Optimizer`.
    tree:
        An :class:`~repro.algebra.tree.AlgebraNode` operator tree instead of
        predicates (see :meth:`from_tree`).  Tree queries are planned by the
        algebra's rewrite-rule engine; ``strategy`` must stay ``"auto"``.
    """

    def __init__(
        self,
        *predicates: Predicate,
        strategy: str = "auto",
        optimizer: Optimizer | None = None,
        tree: AlgebraNode | None = None,
    ) -> None:
        if tree is not None:
            if predicates:
                raise InvalidParameterError(
                    "a query takes predicates or a tree, not both"
                )
            if not isinstance(tree, AlgebraNode):
                raise InvalidParameterError(f"unsupported tree: {tree!r}")
            if strategy != "auto":
                raise InvalidParameterError(
                    "algebra queries are planned by the rewrite engine; "
                    f"strategy must be 'auto', got {strategy!r}"
                )
        else:
            if not 1 <= len(predicates) <= 2:
                raise UnsupportedQueryError("a query must have one or two kNN predicates")
            for predicate in predicates:
                if not isinstance(predicate, (KnnSelect, KnnJoin, RangeSelect)):
                    raise InvalidParameterError(f"unsupported predicate: {predicate!r}")
            if strategy not in ("auto", "baseline", "counting", "block_marking"):
                raise InvalidParameterError(f"unknown strategy: {strategy!r}")
        self.predicates: tuple[Predicate, ...] = tuple(predicates)
        self.tree = tree
        self.strategy = strategy
        self.optimizer = optimizer or Optimizer()

    @classmethod
    def from_tree(cls, tree: AlgebraNode, optimizer: Optimizer | None = None) -> "Query":
        """Build a query over a composable algebra tree.

        The tree is compiled by the rewrite-rule engine
        (:mod:`repro.algebra.rules`) into an ``"algebra"``-class physical
        plan; results arrive as points, pairs or triplets when the tree's
        output width matches a paper shape, and as generic
        :attr:`~repro.query.results.QueryResult.records` for aggregates and
        deeper join chains.
        """
        return cls(tree=tree, optimizer=optimizer)

    # ------------------------------------------------------------------
    # Signature (plan-cache key)
    # ------------------------------------------------------------------
    def signature(self, datasets: Mapping[str, Dataset]) -> tuple:
        """A canonical, hashable description of this query's *plan-relevant* shape.

        Two queries with equal signatures are guaranteed to plan identically
        against unmutated datasets: the signature covers the predicate
        classes, the relation names, their index kinds, the bucketed k-values
        and any forced strategy.  Focal points and range windows are excluded
        on purpose — the physical strategy does not depend on them, which is
        exactly what makes plan caching effective for point-lookup-style
        traffic.
        """
        self._check_relations_exist(datasets)
        if self.tree is not None:
            return (self.strategy, (("algebra", self.tree.signature(datasets)),))
        entries: list[tuple] = []
        for predicate in self.predicates:
            if isinstance(predicate, KnnSelect):
                entries.append(
                    (
                        "knn_select",
                        predicate.relation,
                        datasets[predicate.relation].index_kind,
                        bucket_k(predicate.k),
                    )
                )
            elif isinstance(predicate, RangeSelect):
                entries.append(
                    (
                        "range_select",
                        predicate.relation,
                        datasets[predicate.relation].index_kind,
                    )
                )
            else:
                entries.append(
                    (
                        "knn_join",
                        predicate.outer,
                        datasets[predicate.outer].index_kind,
                        predicate.inner,
                        datasets[predicate.inner].index_kind,
                        bucket_k(predicate.k),
                    )
                )
        return (self.strategy, tuple(sorted(entries)))

    @classmethod
    def from_signature(cls, signature: tuple) -> "Query":
        """Rebuild a query *shape* from a :meth:`signature` value.

        The signature deliberately drops focal points and range windows (the
        plan does not depend on them), so the reconstructed query carries
        placeholder parameters — origin focal points, a unit window, the
        bucketed k.  That is exactly enough to re-derive and re-cache the
        same plan under the same signature, which is how the durable tier
        warms a restarted engine's plan cache; the reconstructed query is
        *not* suitable for running (its results would be for the
        placeholders).
        """
        from repro.geometry.point import Point
        from repro.geometry.rectangle import Rect

        try:
            strategy, entries = signature
            if len(entries) == 1 and entries[0][0] == "algebra":
                return cls(tree=tree_from_signature(entries[0][1]), strategy=strategy)
            predicates: list[Predicate] = []
            for entry in entries:
                if entry[0] == "knn_select":
                    _, relation, _kind, k = entry
                    predicates.append(KnnSelect(relation, Point(0.0, 0.0), int(k)))
                elif entry[0] == "range_select":
                    _, relation, _kind = entry
                    predicates.append(RangeSelect(relation, Rect(0.0, 0.0, 1.0, 1.0)))
                elif entry[0] == "knn_join":
                    _, outer, _okind, inner, _ikind, k = entry
                    predicates.append(KnnJoin(outer, inner, int(k)))
                else:
                    raise InvalidParameterError(
                        f"unknown signature entry kind: {entry[0]!r}"
                    )
        except (TypeError, ValueError) as exc:
            raise InvalidParameterError(f"malformed query signature: {signature!r}") from exc
        return cls(*predicates, strategy=strategy)

    @staticmethod
    def calibration_key_of(signature: tuple) -> tuple:
        """The calibration key embedded in a :meth:`signature` value.

        Single owner of the signature-tuple layout: the engine (which
        already holds the signature) and :meth:`calibration_key` both derive
        the key through here, so a future signature change cannot silently
        diverge the two.
        """
        return signature[1]

    def calibration_key(self, datasets: Mapping[str, Dataset]) -> tuple:
        """The key under which executions of this shape are calibrated.

        This is the plan-cache signature *minus* the forced-strategy
        component: a run with ``strategy="counting"`` and a run with
        ``strategy="auto"`` describe the same workload, so observations from
        either must warm the same profiles (that is also how tests and
        operators can deliberately exercise one strategy to teach the
        planner about it).
        """
        return self.calibration_key_of(self.signature(datasets))

    def relations(self) -> frozenset[str]:
        """Names of every relation this query touches."""
        if self.tree is not None:
            return self.tree.relations()
        names: set[str] = set()
        for predicate in self.predicates:
            if isinstance(predicate, (KnnSelect, RangeSelect)):
                names.add(predicate.relation)
            else:
                names.add(predicate.outer)
                names.add(predicate.inner)
        return frozenset(names)

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan(
        self,
        datasets: Mapping[str, Dataset],
        stats_provider: StatsProvider | None = None,
        calibration: "CalibrationStore | None" = None,
    ) -> PhysicalPlan:
        """Derive the physical plan without executing anything.

        ``stats_provider`` substitutes a cached-statistics lookup for the
        O(n) :meth:`IndexStats.from_index` recomputation; the engine passes
        its statistics cache here.

        ``calibration`` supplies the engine's observation store
        (:class:`~repro.planner.calibrate.CalibrationStore`): strategies with
        warm profiles are estimated from observed work instead of the static
        constants, and — for the select-inner-of-join class — re-ranked by
        those calibrated estimates.  Every plan carries an estimate for its
        chosen strategy in :attr:`PhysicalPlan.estimates`, so the engine can
        compare it against the observed cost after execution (the
        misprediction check) and EXPLAIN can report estimated-vs-observed.
        """
        self._check_relations_exist(datasets)
        profiles: dict[str, StrategyProfile] = {}
        if calibration is not None:
            profiles = {
                name: profile
                for name, profile in calibration.profiles(
                    self.calibration_key(datasets)
                ).items()
                if profile.warm(calibration.min_observations)
            }
        if self.tree is not None:
            from repro.algebra.compile import compile_tree

            plan = compile_tree(
                self.tree, datasets, self.optimizer.cost_model, calibration
            )
            return self._blend_observed(plan, profiles)
        selects = [p for p in self.predicates if isinstance(p, KnnSelect)]
        joins = [p for p in self.predicates if isinstance(p, KnnJoin)]
        ranges = [p for p in self.predicates if isinstance(p, RangeSelect)]

        plan: PhysicalPlan
        if len(self.predicates) == 1:
            if selects:
                plan = PhysicalPlan(
                    "single-select", "knn-select", estimates={"knn-select": 1.0}
                )
            elif ranges:
                n = len(datasets[ranges[0].relation])
                plan = PhysicalPlan(
                    "single-range",
                    "range-select",
                    estimates={"range-select": self._scan_estimate(n)},
                )
            else:
                outer_size = len(datasets[joins[0].outer])
                plan = PhysicalPlan(
                    "single-join", "knn-join", estimates={"knn-join": float(outer_size)}
                )
        elif len(selects) == 2:
            plan = self._plan_two_selects(selects[0], selects[1])
        elif len(selects) == 1 and len(joins) == 1:
            plan = self._plan_select_join(
                selects[0], joins[0], datasets, stats_provider, profiles
            )
        elif len(ranges) == 1 and len(joins) == 1:
            plan = self._plan_range_join(ranges[0], joins[0], datasets)
        elif len(ranges) == 1 and len(selects) == 1:
            if ranges[0].relation != selects[0].relation:
                raise UnsupportedQueryError(
                    "a range-select and a kNN-select must target the same relation"
                )
            plan = PhysicalPlan(
                "range-and-knn-select",
                "knn-select-then-range-filter",
                estimates={"knn-select-then-range-filter": 1.0},
            )
        elif len(ranges) == 2:
            if ranges[0].relation != ranges[1].relation:
                raise UnsupportedQueryError(
                    "two range-selects must target the same relation to be intersected"
                )
            n = len(datasets[ranges[0].relation])
            plan = PhysicalPlan(
                "two-ranges",
                "range-intersection",
                estimates={"range-intersection": 2.0 * self._scan_estimate(n)},
            )
        else:
            plan = self._plan_two_joins(joins[0], joins[1], datasets, stats_provider)
        return self._blend_observed(plan, profiles)

    def _scan_estimate(self, population: int) -> float:
        """Abstract upper bound for a windowed block scan over ``population``."""
        return 1.0 + population * self.optimizer.cost_model.tuple_check_cost  # type: ignore[union-attr]

    def _blend_observed(
        self, plan: PhysicalPlan, profiles: Mapping[str, "StrategyProfile"]
    ) -> PhysicalPlan:
        """Replace the chosen strategy's estimate with its observed EWMA cost.

        The select-inner-of-join class calibrates *inside* planning (the
        alternatives are re-ranked there); every other class has a single
        physical strategy per plan, so calibration cannot change the choice —
        but it corrects the estimate, which is what the misprediction check
        and EXPLAIN's estimated-vs-observed feedback compare against.
        """
        if plan.query_class == "select-inner-of-join":
            return plan
        profile = profiles.get(plan.strategy)
        if profile is None:
            return plan
        estimates = dict(plan.estimates)
        estimates[plan.strategy] = profile.observed_total
        decisions = dict(plan.decisions)
        decisions["calibrated"] = True
        return PhysicalPlan(plan.query_class, plan.strategy, decisions, estimates)

    def _plan_two_selects(self, first: KnnSelect, second: KnnSelect) -> PhysicalPlan:
        if first.relation != second.relation:
            raise UnsupportedQueryError(
                "two kNN-selects must target the same relation to be intersected"
            )
        if self.strategy == "baseline":
            return PhysicalPlan(
                "two-selects",
                "two-selects-baseline",
                estimates={"two-selects-baseline": 2.0},
            )
        # No decision is cached: Procedure 5 orders the two selects internally
        # (smaller k first), so a stored order would be dead weight — and a
        # positional one would be wrong under the order-independent signature.
        return PhysicalPlan(
            "two-selects", "2-kNN-select", estimates={"2-kNN-select": 2.0}
        )

    def _plan_select_join(
        self,
        select: KnnSelect,
        join: KnnJoin,
        datasets: Mapping[str, Dataset],
        stats_provider: StatsProvider | None,
        profiles: Mapping[str, "StrategyProfile"],
    ) -> PhysicalPlan:
        if select.relation == join.outer:
            return PhysicalPlan(
                "select-outer-of-join",
                "outer-select-pushdown",
                estimates={"outer-select-pushdown": 1.0 + float(select.k)},
            )
        if select.relation != join.inner:
            raise UnsupportedQueryError(
                "the kNN-select must target either the join's outer or inner relation"
            )
        decisions: dict[str, object] = {}
        outer_size = len(datasets[join.outer])
        cost_model = self.optimizer.cost_model
        assert cost_model is not None
        if self.strategy == "baseline":
            strategy = SelectJoinStrategy.BASELINE
            estimates = {"baseline": float(outer_size)}
        elif self.strategy == "counting":
            strategy = SelectJoinStrategy.COUNTING
            profile = profiles.get("counting")
            estimates = {
                "counting": cost_model.counting_select_join(
                    outer_size,
                    selectivity=profile.selectivity if profile else None,
                ).total
            }
        elif self.strategy == "block_marking":
            strategy = SelectJoinStrategy.BLOCK_MARKING
            outer = datasets[join.outer]
            stats = self._stats_for(outer, stats_provider)
            profile = profiles.get("block_marking")
            estimates = {
                "block_marking": cost_model.block_marking_select_join(
                    None,
                    stats,
                    selectivity=profile.selectivity if profile else None,
                    blocks_checked=profile.blocks_examined if profile else None,
                ).total
            }
        else:
            outer = datasets[join.outer]
            stats = self._stats_for(outer, stats_provider)
            # Stats in hand, the optimizer never touches the index — pass
            # None so planning cannot build a monolithic index the caller
            # (e.g. the sharded engine) deliberately avoided building.
            explained = self.optimizer.explain_select_join(None, stats, profiles)
            strategy = explained["strategy"]  # type: ignore[assignment]
            estimates = {
                name: estimate.total
                for name, estimate in explained["estimates"].items()  # type: ignore[union-attr]
            }
            if explained["calibrated"]:
                decisions["calibrated"] = True
        decisions["select_join_strategy"] = strategy
        return PhysicalPlan(
            "select-inner-of-join",
            strategy.value,
            decisions,
            estimates,
        )

    def _plan_range_join(
        self, predicate: RangeSelect, join: KnnJoin, datasets: Mapping[str, Dataset]
    ) -> PhysicalPlan:
        outer_size = float(len(datasets[join.outer]))
        if predicate.relation == join.outer:
            # Upper bound: the window never selects more than the whole outer
            # relation, and each selected point costs one neighborhood.
            return PhysicalPlan(
                "range-outer-of-join",
                "outer-range-pushdown",
                estimates={"outer-range-pushdown": outer_size},
            )
        if predicate.relation != join.inner:
            raise UnsupportedQueryError(
                "the range-select must target either the join's outer or inner relation"
            )
        if self.strategy == "baseline":
            return PhysicalPlan(
                "range-inner-of-join",
                "range-inner-baseline",
                estimates={"range-inner-baseline": outer_size},
            )
        return PhysicalPlan(
            "range-inner-of-join",
            "range-inner-block-marking",
            estimates={"range-inner-block-marking": outer_size},
        )

    def _plan_two_joins(
        self,
        first: KnnJoin,
        second: KnnJoin,
        datasets: Mapping[str, Dataset],
        stats_provider: StatsProvider | None,
    ) -> PhysicalPlan:
        # Chained: A -> B -> C (one join's inner is the other's outer).  The
        # chain direction is re-derived structurally at execution time (it is
        # a property of the predicates, not of statistics), so the cached
        # decision is informational only and safely order-independent.
        chained = self._chain_order(first, second)
        cost_model = self.optimizer.cost_model
        assert cost_model is not None
        if chained is not None:
            ab, bc = chained
            return PhysicalPlan(
                "chained-joins",
                "nested-join-cached",
                {"chain": f"{ab.outer}->{ab.inner}->{bc.inner}"},
                estimates={
                    "nested-join-cached": cost_model.chained_nested(
                        len(datasets[ab.outer]), ab.k
                    ).total
                },
            )
        # Unchained: both joins share the same inner relation.  The cached
        # decision names the relation whose join runs first — relation names,
        # unlike predicate positions, survive the order-independent signature.
        if first.inner == second.inner:
            a = datasets[first.outer]
            c = datasets[second.outer]
            # Upper bound: one neighborhood per A point and per C point (the
            # optimized plan prunes below this; the baseline meets it).
            both = float(len(a) + len(c))
            if self.strategy == "baseline":
                return PhysicalPlan(
                    "unchained-joins",
                    "unchained-baseline",
                    estimates={"unchained-baseline": both},
                )
            # As in _plan_select_join: with stats supplied the indexes are
            # never consulted, so None keeps planning index-build-free.
            order = self.optimizer.unchained_first_join(
                None,
                None,
                self._stats_for(a, stats_provider),
                self._stats_for(c, stats_provider),
            )
            first_outer = first.outer if order == "A" else second.outer
            return PhysicalPlan(
                "unchained-joins",
                "unchained-block-marking",
                {"unchained_first_outer": first_outer},
                estimates={"unchained-block-marking": both},
            )
        raise UnsupportedQueryError(
            "two kNN-joins must be chained (A->B->C) or share their inner relation"
        )

    @staticmethod
    def _chain_order(first: KnnJoin, second: KnnJoin) -> tuple[KnnJoin, KnnJoin] | None:
        """``(ab, bc)`` if the two joins chain, else ``None``."""
        if first.inner == second.outer:
            return (first, second)
        if second.inner == first.outer:
            return (second, first)
        return None

    @staticmethod
    def _stats_for(dataset: Dataset, stats_provider: StatsProvider | None) -> IndexStats:
        if stats_provider is not None:
            return stats_provider(dataset)
        return IndexStats.from_index(dataset.index)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        datasets: Mapping[str, Dataset],
        *,
        plan: PhysicalPlan | None = None,
        stats_provider: StatsProvider | None = None,
        chained_cache: MutableMapping[int, Neighborhood] | None = None,
    ) -> QueryResult:
        """Execute the query against the given relations (name → dataset).

        ``plan`` short-circuits planning with a previously derived (typically
        cached) :class:`PhysicalPlan`; with a plan supplied, execution performs
        no statistics computation and no strategy re-derivation.
        ``chained_cache`` optionally shares a B→C neighborhood cache across
        chained-join queries (see the engine's batch executor).
        """
        if plan is None:
            plan = self.plan(datasets, stats_provider)
        else:
            self._check_relations_exist(datasets)
        selects = [p for p in self.predicates if isinstance(p, KnnSelect)]
        joins = [p for p in self.predicates if isinstance(p, KnnJoin)]
        ranges = [p for p in self.predicates if isinstance(p, RangeSelect)]

        query_class = plan.query_class
        if query_class == "algebra":
            if self.tree is None:
                raise UnsupportedQueryError("cached algebra plan does not fit this query")
            return self._run_algebra(datasets)
        if query_class == "single-select":
            return self._run_single_select(selects[0], datasets)
        if query_class == "single-range":
            return self._run_single_range(ranges[0], datasets)
        if query_class == "single-join":
            return self._run_single_join(joins[0], datasets)
        if query_class == "two-selects":
            return self._run_two_selects(selects[0], selects[1], datasets, plan)
        if query_class == "select-outer-of-join":
            return self._run_outer_select_join(selects[0], joins[0], datasets)
        if query_class == "select-inner-of-join":
            return self._run_inner_select_join(selects[0], joins[0], datasets, plan)
        if query_class == "range-outer-of-join":
            return self._run_outer_range_join(ranges[0], joins[0], datasets)
        if query_class == "range-inner-of-join":
            return self._run_inner_range_join(ranges[0], joins[0], datasets, plan)
        if query_class == "range-and-knn-select":
            return self._run_range_and_knn_select(ranges[0], selects[0], datasets)
        if query_class == "two-ranges":
            return self._run_two_ranges(ranges[0], ranges[1], datasets)
        if query_class == "chained-joins":
            chained = self._chain_order(joins[0], joins[1])
            if chained is None:
                raise UnsupportedQueryError("cached chained plan does not fit these joins")
            ab, bc = chained
            return self._run_chained(ab, bc, datasets, chained_cache)
        if query_class == "unchained-joins":
            return self._run_unchained(joins[0], joins[1], datasets, plan)
        raise UnsupportedQueryError(f"unknown query class in plan: {query_class!r}")

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _check_relations_exist(self, datasets: Mapping[str, Dataset]) -> None:
        missing = sorted(n for n in self.relations() if n not in datasets)
        if missing:
            raise UnsupportedQueryError(f"datasets missing for relations: {', '.join(missing)}")

    # -- algebra trees --------------------------------------------------
    def _run_algebra(self, datasets: Mapping[str, Dataset]) -> QueryResult:
        """Evaluate the rewritten tree and package its rows canonically.

        The rewrite runs fresh on *this* query's tree (not the cached plan's
        rendering) because plan-cache signatures exclude parameter values —
        two same-shape queries share a plan but not their windows/focals.
        Point results sort by pid, pair/triplet rows by their pid keys;
        aggregates and deeper joins arrive as generic ``records``.
        """
        from repro.algebra.compile import rewritten_tree
        from repro.algebra.evaluate import DatasetContext, evaluate, package_output

        assert self.tree is not None
        optimized, _trail = rewritten_tree(self.tree)
        ctx = DatasetContext(datasets)
        out = evaluate(optimized, ctx, ctx.stats)
        node_costs = tuple(
            (node.signature(datasets), cost) for node, cost in out.node_costs.items()
        )
        return QueryResult(
            strategy="algebra-tree",
            query_class="algebra",
            stats=ctx.stats,
            node_costs=node_costs,
            **package_output(out),
        )

    # -- single-predicate queries --------------------------------------
    def _run_single_select(
        self, select: KnnSelect, datasets: Mapping[str, Dataset]
    ) -> QueryResult:
        stats = PruningStats()
        neighborhood = knn_select(
            datasets[select.relation].index, select.focal, select.k, stats=stats
        )
        return QueryResult(
            strategy="knn-select",
            query_class="single-select",
            points=tuple(neighborhood),
            stats=stats,
        )

    def _run_single_range(
        self, predicate: RangeSelect, datasets: Mapping[str, Dataset]
    ) -> QueryResult:
        stats = PruningStats()
        points = range_select(
            datasets[predicate.relation].index, predicate.window, stats=stats
        )
        return QueryResult(
            strategy="range-select",
            query_class="single-range",
            points=tuple(points),
            stats=stats,
        )

    def _run_single_join(self, join: KnnJoin, datasets: Mapping[str, Dataset]) -> QueryResult:
        stats = PruningStats()
        pairs = knn_join_pairs(
            datasets[join.outer].points, datasets[join.inner].index, join.k, stats=stats
        )
        return QueryResult(
            strategy="knn-join",
            query_class="single-join",
            pairs=tuple(pairs),
            stats=stats,
        )

    # -- two selects ----------------------------------------------------
    def _run_two_selects(
        self,
        first: KnnSelect,
        second: KnnSelect,
        datasets: Mapping[str, Dataset],
        plan: PhysicalPlan,
    ) -> QueryResult:
        index = datasets[first.relation].index
        stats = PruningStats()
        if plan.strategy == "two-selects-baseline":
            points = two_knn_selects_baseline(index, first.focal, first.k, second.focal, second.k)
        else:
            points = two_knn_selects_optimized(
                index, first.focal, first.k, second.focal, second.k, stats=stats
            )
        stats.neighborhoods_computed += 2  # both plans rank two neighborhoods
        return QueryResult(
            strategy=plan.strategy,
            query_class="two-selects",
            points=tuple(points),
            stats=stats,
        )

    # -- select + join ----------------------------------------------------
    def _run_outer_select_join(
        self, select: KnnSelect, join: KnnJoin, datasets: Mapping[str, Dataset]
    ) -> QueryResult:
        outer = datasets[join.outer]
        inner = datasets[join.inner]
        stats = PruningStats()
        pairs = outer_select_join_pushdown(
            outer.index, inner.index, select.focal, join.k, select.k, stats=stats
        )
        return QueryResult(
            strategy="outer-select-pushdown",
            query_class="select-outer-of-join",
            pairs=tuple(pairs),
            stats=stats,
        )

    def _run_inner_select_join(
        self,
        select: KnnSelect,
        join: KnnJoin,
        datasets: Mapping[str, Dataset],
        plan: PhysicalPlan,
    ) -> QueryResult:
        outer = datasets[join.outer]
        inner = datasets[join.inner]
        stats = PruningStats()
        strategy = plan.decisions["select_join_strategy"]
        if strategy is SelectJoinStrategy.BASELINE:
            pairs = select_join_baseline(
                outer.points, inner.index, select.focal, join.k, select.k, stats=stats
            )
        elif strategy is SelectJoinStrategy.COUNTING:
            # Columnar fast path: hand Counting the outer store so pruned
            # outer rows are never materialized as point objects.
            pairs = select_join_counting(
                outer.store, inner.index, select.focal, join.k, select.k, stats=stats
            )
        else:
            pairs = select_join_block_marking(
                outer.index, inner.index, select.focal, join.k, select.k, stats=stats
            )
        return QueryResult(
            strategy=strategy.value,
            query_class="select-inner-of-join",
            pairs=tuple(pairs),
            stats=stats,
        )

    # -- range-select combinations (footnote 1) ---------------------------
    def _run_outer_range_join(
        self, predicate: RangeSelect, join: KnnJoin, datasets: Mapping[str, Dataset]
    ) -> QueryResult:
        outer = datasets[join.outer]
        inner = datasets[join.inner]
        stats = PruningStats()
        # Valid push-down: restrict the outer relation before joining.
        selected_outer = range_select(outer.index, predicate.window, stats=stats)
        pairs = knn_join_pairs(selected_outer, inner.index, join.k, stats=stats)
        return QueryResult(
            strategy="outer-range-pushdown",
            query_class="range-outer-of-join",
            pairs=tuple(pairs),
            stats=stats,
        )

    def _run_inner_range_join(
        self,
        predicate: RangeSelect,
        join: KnnJoin,
        datasets: Mapping[str, Dataset],
        plan: PhysicalPlan,
    ) -> QueryResult:
        outer = datasets[join.outer]
        inner = datasets[join.inner]
        stats = PruningStats()
        if plan.strategy == "range-inner-baseline":
            pairs = range_inner_join_baseline(
                outer.points, inner.index, predicate.window, join.k
            )
            stats.neighborhoods_computed += len(outer)  # one getkNN per outer point
        else:
            pairs = range_inner_join_block_marking(
                outer.index, inner.index, predicate.window, join.k, stats=stats
            )
        return QueryResult(
            strategy=plan.strategy,
            query_class="range-inner-of-join",
            pairs=tuple(pairs),
            stats=stats,
        )

    def _run_range_and_knn_select(
        self, predicate: RangeSelect, select: KnnSelect, datasets: Mapping[str, Dataset]
    ) -> QueryResult:
        index = datasets[select.relation].index
        stats = PruningStats()
        neighborhood = knn_select(index, select.focal, select.k, stats=stats)
        points = [p for p in neighborhood if predicate.window.contains_point(p)]
        return QueryResult(
            strategy="knn-select-then-range-filter",
            query_class="range-and-knn-select",
            points=tuple(points),
            stats=stats,
        )

    def _run_two_ranges(
        self, first: RangeSelect, second: RangeSelect, datasets: Mapping[str, Dataset]
    ) -> QueryResult:
        index = datasets[first.relation].index
        stats = PruningStats()
        points = intersect_points(
            range_select(index, first.window, stats=stats),
            range_select(index, second.window, stats=stats),
        )
        return QueryResult(
            strategy="range-intersection",
            query_class="two-ranges",
            points=tuple(points),
            stats=stats,
        )

    # -- two joins --------------------------------------------------------
    def _run_chained(
        self,
        ab: KnnJoin,
        bc: KnnJoin,
        datasets: Mapping[str, Dataset],
        chained_cache: MutableMapping[int, Neighborhood] | None,
    ) -> QueryResult:
        a = datasets[ab.outer]
        b = datasets[ab.inner]
        c = datasets[bc.inner]
        stats = PruningStats()
        triplets = chained_joins_nested(
            a.points,
            b.index,
            c.index,
            ab.k,
            bc.k,
            cache=True,
            stats=stats,
            neighborhood_cache=chained_cache,
        )
        # The operator counts only the B→C neighborhoods (its cache-hit
        # metric); the A→B batch costs one more per A point.  Charging it
        # keeps the observed cost in the estimate's units — chained_nested
        # prices |A| + matched-B, so omitting the A side would let a warm
        # shared cache drive the observed EWMA toward zero.
        stats.neighborhoods_computed += len(a)
        return QueryResult(
            strategy="nested-join-cached",
            query_class="chained-joins",
            triplets=tuple(triplets),
            stats=stats,
        )

    def _run_unchained(
        self,
        ab: KnnJoin,
        cb: KnnJoin,
        datasets: Mapping[str, Dataset],
        plan: PhysicalPlan,
    ) -> QueryResult:
        a = datasets[ab.outer]
        c = datasets[cb.outer]
        b = datasets[ab.inner]
        stats = PruningStats()
        if plan.strategy == "unchained-baseline":
            triplets = unchained_joins_baseline(a.points, c.points, b.index, ab.k, cb.k)
            stats.neighborhoods_computed += len(a) + len(c)  # no pruning in the baseline
        else:
            # Map the cached relation name back onto this query's predicate
            # positions; an unknown name falls back to re-derivation.
            first_outer = plan.decisions.get("unchained_first_outer")
            order = None
            if first_outer == ab.outer:
                order = "A"
            elif first_outer == cb.outer:
                order = "C"
            triplets = unchained_joins_auto(
                a.index, c.index, b.index, ab.k, cb.k, stats=stats, order=order
            )
        return QueryResult(
            strategy=plan.strategy,
            query_class="unchained-joins",
            triplets=tuple(triplets),
            stats=stats,
        )
