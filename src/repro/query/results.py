"""Query result container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.stats import PruningStats
from repro.exceptions import UnsupportedQueryError
from repro.geometry.point import Point
from repro.operators.results import JoinPair, JoinTriplet

__all__ = ["QueryResult"]


@dataclass
class QueryResult:
    """The answer of a :class:`repro.query.query.Query`.

    Exactly one of :attr:`points`, :attr:`pairs`, :attr:`triplets` or
    :attr:`records` is populated, depending on the query's shape (two selects
    produce points, a select/join combination produces pairs, two joins
    produce triplets; algebra queries produce any of these, or generic
    :attr:`records` for aggregates and deeper join chains).
    """

    #: Human-readable description of the physical strategy that was executed.
    strategy: str
    #: Which of the paper's query classes the query belongs to.
    query_class: str
    points: tuple[Point, ...] = ()
    pairs: tuple[JoinPair, ...] = ()
    triplets: tuple[JoinTriplet, ...] = ()
    #: Generic rows for algebra results without a dedicated shape: aggregate
    #: ``(key, value)`` rows, or point-tuples for joins deeper than three.
    records: tuple[tuple, ...] = ()
    #: Pruning counters collected by the optimized algorithms (when available).
    stats: PruningStats = field(default_factory=PruningStats)
    #: Per-operator observed work of an algebra execution, as
    #: ``(node signature, cost)`` pairs — the engine records these into the
    #: calibration store so future plans estimate each operator from its own
    #: history.  Empty for the six paper classes.
    node_costs: tuple[tuple[tuple, float], ...] = ()

    @property
    def rows(
        self,
    ) -> Sequence[Point] | Sequence[JoinPair] | Sequence[JoinTriplet] | Sequence[tuple]:
        """The populated result collection, whichever kind it is."""
        if self.points:
            return self.points
        if self.pairs:
            return self.pairs
        if self.triplets:
            return self.triplets
        if self.records:
            return self.records
        return ()

    def __len__(self) -> int:
        return len(self.rows)

    def require_points(self) -> tuple[Point, ...]:
        """Return the point rows, or raise if this result does not hold points."""
        if self.pairs or self.triplets or self.records:
            raise UnsupportedQueryError("this query produced pairs/triplets, not points")
        return self.points

    def require_pairs(self) -> tuple[JoinPair, ...]:
        """Return the pair rows, or raise if this result does not hold pairs."""
        if self.points or self.triplets or self.records:
            raise UnsupportedQueryError("this query produced points/triplets, not pairs")
        return self.pairs

    def require_triplets(self) -> tuple[JoinTriplet, ...]:
        """Return the triplet rows, or raise if this result does not hold triplets."""
        if self.points or self.pairs or self.records:
            raise UnsupportedQueryError("this query produced points/pairs, not triplets")
        return self.triplets

    def require_records(self) -> tuple[tuple, ...]:
        """Return the generic rows, or raise if this result holds a typed shape."""
        if self.points or self.pairs or self.triplets:
            raise UnsupportedQueryError(
                "this query produced a typed result shape, not generic records"
            )
        return self.records
