"""Query result container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.stats import PruningStats
from repro.exceptions import UnsupportedQueryError
from repro.geometry.point import Point
from repro.operators.results import JoinPair, JoinTriplet

__all__ = ["QueryResult"]


@dataclass
class QueryResult:
    """The answer of a :class:`repro.query.query.Query`.

    Exactly one of :attr:`points`, :attr:`pairs` or :attr:`triplets` is
    populated, depending on the query's shape (two selects produce points, a
    select/join combination produces pairs, two joins produce triplets).
    """

    #: Human-readable description of the physical strategy that was executed.
    strategy: str
    #: Which of the paper's query classes the query belongs to.
    query_class: str
    points: tuple[Point, ...] = ()
    pairs: tuple[JoinPair, ...] = ()
    triplets: tuple[JoinTriplet, ...] = ()
    #: Pruning counters collected by the optimized algorithms (when available).
    stats: PruningStats = field(default_factory=PruningStats)

    @property
    def rows(self) -> Sequence[Point] | Sequence[JoinPair] | Sequence[JoinTriplet]:
        """The populated result collection, whichever kind it is."""
        if self.points:
            return self.points
        if self.pairs:
            return self.pairs
        if self.triplets:
            return self.triplets
        return ()

    def __len__(self) -> int:
        return len(self.rows)

    def require_points(self) -> tuple[Point, ...]:
        """Return the point rows, or raise if this result does not hold points."""
        if self.pairs or self.triplets:
            raise UnsupportedQueryError("this query produced pairs/triplets, not points")
        return self.points

    def require_pairs(self) -> tuple[JoinPair, ...]:
        """Return the pair rows, or raise if this result does not hold pairs."""
        if self.points or self.triplets:
            raise UnsupportedQueryError("this query produced points/triplets, not pairs")
        return self.pairs

    def require_triplets(self) -> tuple[JoinTriplet, ...]:
        """Return the triplet rows, or raise if this result does not hold triplets."""
        if self.points or self.pairs:
            raise UnsupportedQueryError("this query produced points/pairs, not triplets")
        return self.triplets
