"""Planner-state persistence: calibration profiles and plan signatures.

A restarted engine that recovers its *data* but not its *planner state*
serves its first queries cold: statistics recomputed, calibration profiles
empty (so the optimizer falls back to the static constants and may
mispredict its way through the same demotions it already paid for before
the restart).  This module persists the two pieces of planner state that
are expensive to relearn and cheap to store:

* the :class:`~repro.planner.calibrate.CalibrationStore` contents
  (per-query-shape EWMA cost profiles), and
* the plan cache's signatures — not the plans themselves (plans embed
  strategy enums and live decisions), but the query *shapes*, which
  :meth:`repro.query.query.Query.from_signature` turns back into plannable
  queries so the restarted engine re-derives and re-caches each plan once,
  up front, with its warm calibration profiles in hand.

The state file reuses the manifest format (atomic rename, CRC-guarded
JSON); a corrupt or missing file degrades to a cold start, never to a
failed open — planner state is an optimization, not ground truth.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING

from repro.durable.manifest import ManifestCorruptError, load_manifest, write_manifest
from repro.planner.calibrate import CalibrationStore
from repro.query.query import Query

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.session import SpatialEngine

__all__ = ["save_engine_state", "load_engine_state", "warm_plans"]

STATE_NAME = "engine_state.json"


def _to_json(value: object) -> object:
    """Render nested tuples (signatures, calibration keys) as JSON lists."""
    if isinstance(value, tuple):
        return [_to_json(part) for part in value]
    return value


def _from_json(value: object) -> object:
    """Re-tuplify a :func:`_to_json` rendering."""
    if isinstance(value, list):
        return tuple(_from_json(part) for part in value)
    return value


def save_engine_state(directory: Path, engine: "SpatialEngine") -> Path:
    """Atomically persist ``engine``'s planner state under ``directory``.

    Captures the calibration store and the plan cache's signatures (LRU
    order preserved).  Returns the state file's path.
    """
    path = Path(directory) / STATE_NAME
    write_manifest(
        path,
        {
            "calibration": engine.calibration.to_state(),
            "plan_signatures": [_to_json(sig) for sig in engine.plan_cache.signatures()],
        },
    )
    return path


def load_engine_state(
    directory: Path,
) -> tuple[CalibrationStore | None, list[tuple]]:
    """Load persisted planner state from ``directory``.

    Returns ``(calibration, signatures)``.  A missing or corrupt state file
    yields ``(None, [])`` — the caller starts cold, it does not fail.
    """
    path = Path(directory) / STATE_NAME
    if not path.exists():
        return None, []
    try:
        state = load_manifest(path)
        calibration = CalibrationStore.from_state(state["calibration"])  # type: ignore[arg-type]
        signatures = [_from_json(sig) for sig in state["plan_signatures"]]  # type: ignore[union-attr]
    except (ManifestCorruptError, ValueError, KeyError, TypeError):
        return None, []
    return calibration, signatures  # type: ignore[return-value]


def warm_plans(engine: "SpatialEngine", signatures: list[tuple]) -> int:
    """Re-plan persisted signatures so the engine's plan cache starts warm.

    Each signature is rebuilt into a placeholder query
    (:meth:`Query.from_signature`) and planned through the engine's normal
    cached-planning path — with the restored calibration store consulted, so
    the plans are the *calibrated* ones, not cold re-derivations.  A
    signature that no longer plans (relation dropped, shape unsupported) is
    skipped.  Returns the number of plans cached.
    """
    warmed = 0
    for signature in signatures:
        try:
            query = Query.from_signature(signature)
            engine.plan_entry(query)
        except Exception:
            continue
        warmed += 1
    return warmed
