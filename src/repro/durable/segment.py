"""Memory-mappable columnar snapshot segments for :class:`PointStore`.

A segment is one relation's store frozen on disk, laid out so the coordinate
and pid columns can be mapped straight back into numpy arrays without a
deserialization pass:

==================  =========================================================
section             contents
==================  =========================================================
magic (8 bytes)     ``b"RDSEG001"`` (format name + version)
header (24 bytes)   ``<3Q``: ``n_rows``, ``payload_blob_len``, reserved (0)
``xs`` column       f8 × n_rows, little-endian, contiguous
``ys`` column       f8 × n_rows
``pids`` column     i8 × n_rows
payload side-table  pickle of the sparse row → payload dict (may be empty)
trailer (4 bytes)   ``<I`` CRC-32 of every preceding byte (magic included)
==================  =========================================================

Writes are atomic at the filesystem level: the segment is written to a
temporary sibling, fsynced, renamed over the target, and the directory entry
fsynced — a crash at any point leaves either the complete old file or the
complete new file, never a hybrid (the fault suite pins this at the
``segment:*`` crash points).  Loads verify the CRC over the whole mapped
buffer before any column is trusted, so a corrupted or torn segment is
detected up front rather than surfacing as silently wrong query answers.
"""

from __future__ import annotations

import mmap
import os
import pickle
import struct
import zlib
from pathlib import Path
from typing import Any

import numpy as np

from repro.durable import faults
from repro.exceptions import InvalidParameterError
from repro.storage.pointstore import PointStore

__all__ = ["SegmentCorruptError", "write_segment", "load_segment"]

MAGIC = b"RDSEG001"
_HEADER = struct.Struct("<3Q")
_CRC = struct.Struct("<I")

_F8 = np.dtype("<f8")
_I8 = np.dtype("<i8")


class SegmentCorruptError(InvalidParameterError):
    """Raised when a snapshot segment fails its CRC or structural checks."""


def fsync_dir(directory: Path) -> None:
    """fsync a directory so a rename inside it is durable."""
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def write_segment(path: Path, store: PointStore) -> int:
    """Atomically write ``store`` as a snapshot segment at ``path``.

    Returns the number of bytes written.  The store's payload side-table is
    pickled (payloads are arbitrary Python objects); the coordinate and pid
    columns are raw little-endian buffers.
    """
    path = Path(path)
    blob = (
        pickle.dumps(store.payloads, protocol=pickle.HIGHEST_PROTOCOL)
        if store.payloads
        else b""
    )
    header = _HEADER.pack(len(store), len(blob), 0)
    xs = np.ascontiguousarray(store.xs, dtype=_F8).tobytes()
    ys = np.ascontiguousarray(store.ys, dtype=_F8).tobytes()
    pids = np.ascontiguousarray(store.pids, dtype=_I8).tobytes()

    crc = 0
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        for i, part in enumerate((MAGIC, header, xs, ys, pids, blob)):
            fh.write(part)
            crc = zlib.crc32(part, crc)
            if i == 2:  # xs written, ys/pids missing: a genuinely torn segment
                fh.flush()
                faults.fire("segment:mid-write", path=str(path))
        fh.write(_CRC.pack(crc))
        fh.flush()
        faults.fire("segment:before-fsync", path=str(path))
        os.fsync(fh.fileno())
    faults.fire("segment:before-rename", path=str(path))
    os.replace(tmp, path)
    fsync_dir(path.parent)
    return len(MAGIC) + len(header) + len(xs) + len(ys) + len(pids) + len(blob) + _CRC.size


def load_segment(path: Path, use_mmap: bool = True) -> PointStore:
    """Load a snapshot segment back into a :class:`PointStore`.

    With ``use_mmap`` (the default) the column arrays are zero-copy views
    over a read-only memory map of the file — the store's snapshot
    discipline (mutations always build new arrays) makes read-only backing
    safe, and datasets larger than RAM page in on demand.  The CRC is
    verified over the whole buffer before any column is returned.

    Raises :class:`SegmentCorruptError` (a ``ValueError``) on any structural
    or checksum failure.
    """
    path = Path(path)
    size = path.stat().st_size
    floor = len(MAGIC) + _HEADER.size + _CRC.size
    if size < floor:
        raise SegmentCorruptError(f"segment {path.name}: truncated ({size} bytes)")
    with open(path, "rb") as fh:
        if use_mmap and size:
            buf: Any = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        else:
            buf = fh.read()
    if bytes(buf[: len(MAGIC)]) != MAGIC:
        raise SegmentCorruptError(f"segment {path.name}: bad magic")
    body = memoryview(buf)[: size - _CRC.size]  # no copy, even for mmap
    if zlib.crc32(body) != _CRC.unpack_from(buf, size - _CRC.size)[0]:
        raise SegmentCorruptError(f"segment {path.name}: CRC mismatch")
    n_rows, blob_len, _reserved = _HEADER.unpack_from(buf, len(MAGIC))
    expected = floor + 24 * n_rows + blob_len
    if size != expected:
        raise SegmentCorruptError(
            f"segment {path.name}: length mismatch (got {size}, expected {expected})"
        )
    offset = len(MAGIC) + _HEADER.size
    xs = np.frombuffer(buf, dtype=_F8, count=n_rows, offset=offset)
    offset += 8 * n_rows
    ys = np.frombuffer(buf, dtype=_F8, count=n_rows, offset=offset)
    offset += 8 * n_rows
    pids = np.frombuffer(buf, dtype=_I8, count=n_rows, offset=offset)
    offset += 8 * n_rows
    payloads: dict[int, Any] = {}
    if blob_len:
        payloads = pickle.loads(bytes(buf[offset : offset + blob_len]))
    # The columns were validated finite when the store was built; the CRC
    # guarantees they round-tripped bit-exact, so skip the finite re-scan.
    return PointStore(xs, ys, pids, payloads, validate=False)
