"""Atomic JSON manifests: the commit record of the durable tier.

A manifest names the *live generation* of a durable directory — which
snapshot segment and which WAL file constitute the current state — plus the
metadata needed to rebuild the in-memory object (relation name, index kind,
bounds, index options).  Every other durability step is made atomic by the
manifest: new snapshots and fresh WALs are written under *new* generation
numbers first, and only the manifest rename flips the directory from the old
generation to the new one.  A crash on either side of the rename leaves a
parseable manifest naming one complete generation.

Writes go to a temporary sibling, are fsynced, renamed over the target
(atomic on POSIX), and the directory entry is fsynced.  The body carries its
own CRC-32 so a damaged manifest is distinguished from a merely stale one.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path

from repro.durable import faults
from repro.durable.segment import fsync_dir
from repro.exceptions import InvalidParameterError

__all__ = ["ManifestCorruptError", "write_manifest", "load_manifest"]


class ManifestCorruptError(InvalidParameterError):
    """Raised when a manifest fails its CRC or cannot be parsed."""


def write_manifest(path: Path, data: dict[str, object]) -> None:
    """Atomically write ``data`` (JSON-able) as the manifest at ``path``."""
    path = Path(path)
    body = json.dumps(data, sort_keys=True, separators=(",", ":"))
    wrapped = json.dumps({"crc": zlib.crc32(body.encode("utf-8")), "data": body})
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(wrapped.encode("utf-8"))
        fh.flush()
        os.fsync(fh.fileno())
    faults.fire("manifest:before-rename", path=str(path))
    os.replace(tmp, path)
    fsync_dir(path.parent)


def load_manifest(path: Path) -> dict[str, object]:
    """Load and verify the manifest at ``path``.

    Raises :class:`ManifestCorruptError` (a ``ValueError``) when the file is
    unparseable or its CRC does not match — never silently returns partial
    data.
    """
    path = Path(path)
    try:
        wrapped = json.loads(path.read_text(encoding="utf-8"))
        body = wrapped["data"]
        crc = wrapped["crc"]
    except (json.JSONDecodeError, KeyError, TypeError, UnicodeDecodeError) as exc:
        raise ManifestCorruptError(f"manifest {path.name}: unparseable: {exc}") from exc
    if not isinstance(body, str) or zlib.crc32(body.encode("utf-8")) != crc:
        raise ManifestCorruptError(f"manifest {path.name}: CRC mismatch")
    data = json.loads(body)
    if not isinstance(data, dict):
        raise ManifestCorruptError(f"manifest {path.name}: body is not an object")
    return data
