"""Named crash points for fault-injection testing of the durable tier.

Every potentially torn step of the durability protocol — mid-segment column
write, mid-WAL-record append, between a write and its fsync, after a
checkpoint's manifest commit but before the old generation is truncated —
calls :func:`fire` with a stable point name.  In production no injector is
installed and the call is a no-op (one global read and a ``None`` check).

The test harness (``tests/faultfs.py``) installs an injector that raises at a
chosen point, simulating the process dying exactly there; the recovery suite
then reopens the directory and asserts the crash was invisible (pre-batch
state) or harmless (post-batch state).  The hook deliberately lives in the
library rather than the tests so the *named points are part of the durability
contract*: ``docs/durability.md`` documents each one and the recovery
invariant it pins.
"""

from __future__ import annotations

from typing import Callable, Protocol

__all__ = ["CRASH_POINTS", "fire", "install", "installed"]


class Injector(Protocol):
    """A fault injector: called at every crash point with the point's name."""

    def __call__(self, point: str, **info: object) -> None:
        """Raise to simulate a crash at ``point``; return to continue."""
        ...


#: Every crash point the durable tier fires, with the protocol step it pins.
#: (Documented in ``docs/durability.md``; the fault suite iterates this.)
CRASH_POINTS: tuple[str, ...] = (
    "segment:mid-write",            # snapshot columns partially written
    "segment:before-fsync",         # snapshot written, not yet durable
    "segment:before-rename",        # snapshot durable but not yet visible
    "wal:mid-append",               # record frame written, payload missing
    "wal:before-fsync",             # record written, not yet durable
    "wal:after-fsync",              # record durable, control not yet returned
    "manifest:before-rename",       # new manifest durable but not yet live
    "checkpoint:before-manifest",   # snapshot+fresh WAL exist, manifest is old
    "checkpoint:after-manifest",    # manifest is new, old generation not yet truncated
)

_injector: Injector | None = None


def install(injector: Injector | None) -> Injector | None:
    """Install a fault injector (or clear it with ``None``); returns the old one."""
    global _injector
    previous = _injector
    _injector = injector
    return previous


def installed() -> Injector | None:
    """The currently installed injector (``None`` in production)."""
    return _injector


def fire(point: str, **info: object) -> None:
    """Hit crash point ``point``: a no-op unless an injector is installed."""
    if _injector is not None:
        _injector(point, **info)
