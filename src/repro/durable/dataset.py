"""``DurableDataset``: one relation's crash-safe directory on disk.

A durable dataset owns a directory holding exactly one live *generation* —
a snapshot segment plus the WAL of every batch applied since that snapshot —
and the manifest that names it::

    <dir>/MANIFEST               atomic commit record (generation, metadata)
    <dir>/snapshot-000003.seg    columnar snapshot (repro.durable.segment)
    <dir>/wal-000003.log         update batches since (repro.durable.wal)

**Write path.**  :meth:`apply_update` applies the batch to the in-memory
:class:`~repro.query.dataset.Dataset` first, then appends it to the WAL;
the WAL fsync is the commit point.  A crash anywhere before that fsync
recovers to the pre-batch state, a crash after it to the post-batch state —
never anything in between, because recovery replays whole CRC-valid records
only.  (Applying before logging can never poison the log: a batch is logged
only after the dataset accepted it, so replay — which is deterministic,
fresh-pid assignment included — must accept it too.)

**Checkpoint protocol.**  A checkpoint writes the *next* generation's
snapshot and an empty WAL under new names, flips the manifest (the single
atomic step), and only then deletes the old generation.  Crash before the
manifest flip: the old generation is intact and the new files are orphans,
removed at next open.  Crash after: the new generation is live and the old
files are the orphans.  Both sides recover to exactly the pre-crash state.

**Recovery.**  :meth:`open` loads the manifest's snapshot (CRC-verified),
replays the WAL's valid prefix onto it, truncates a torn tail so appends
resume from a clean boundary, and sweeps orphan files from interrupted
checkpoints.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Mapping

from repro.durable import faults
from repro.durable.manifest import load_manifest, write_manifest
from repro.durable.segment import load_segment, write_segment
from repro.durable.wal import WriteAheadLog, scan_wal
from repro.exceptions import InvalidParameterError
from repro.geometry.rectangle import Rect
from repro.query.dataset import Dataset
from repro.storage.update import AppliedUpdate, UpdateBatch

__all__ = ["DurableDataset", "RecoveryReport"]

MANIFEST_NAME = "MANIFEST"


@dataclass(frozen=True)
class RecoveryReport:
    """What :meth:`DurableDataset.open` found and did.

    ``replayed_batches`` counts WAL records re-applied onto the snapshot;
    ``torn_tail`` whether a truncated/corrupt final record was discarded;
    ``orphans_removed`` counts leftover files from an interrupted checkpoint.
    """

    relation: str
    generation: int
    snapshot_rows: int
    replayed_batches: int
    torn_tail: bool
    orphans_removed: int


def _snapshot_name(generation: int) -> str:
    return f"snapshot-{generation:06d}.seg"


def _wal_name(generation: int) -> str:
    return f"wal-{generation:06d}.log"


class DurableDataset:
    """A :class:`Dataset` bound to its crash-safe directory.

    Instances are built through :meth:`create` (fresh directory from a live
    dataset) or :meth:`open` (recovery); the constructor only wires already
    validated parts together.  All mutations must flow through
    :meth:`apply_update` — mutating :attr:`dataset` directly bypasses the
    log and forfeits durability for those batches.
    """

    def __init__(
        self,
        directory: Path,
        dataset: Dataset,
        wal: WriteAheadLog,
        generation: int,
        batches_logged: int = 0,
    ) -> None:
        #: The relation's directory (one generation + manifest inside).
        self.directory = Path(directory)
        #: The live in-memory dataset this directory persists.
        self.dataset = dataset
        #: The current generation's append handle.
        self.wal = wal
        #: Generation number named by the manifest.
        self.generation = generation
        #: Batches applied over the lifetime of the directory (snapshot's
        #: share comes from the manifest; WAL replay and appends add to it).
        self.batches_logged = batches_logged
        #: Batches appended to the current generation's WAL.
        self.records_since_checkpoint = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, directory: Path, dataset: Dataset) -> "DurableDataset":
        """Initialize ``directory`` as generation 0 of ``dataset``.

        Writes the initial snapshot, an empty WAL and the manifest.  The
        dataset's ``index_options`` must be JSON-able (they are stored in
        the manifest and replayed into the index builder at recovery).
        """
        directory = Path(directory)
        if (directory / MANIFEST_NAME).exists():
            raise InvalidParameterError(
                f"directory {directory} already holds a durable dataset"
            )
        directory.mkdir(parents=True, exist_ok=True)
        write_segment(directory / _snapshot_name(0), dataset.store)
        wal = WriteAheadLog.create(directory / _wal_name(0))
        write_manifest(
            directory / MANIFEST_NAME, cls._manifest_data(dataset, generation=0, batches=0)
        )
        return cls(directory, dataset, wal, generation=0)

    @classmethod
    def open(cls, directory: Path) -> tuple["DurableDataset", RecoveryReport]:
        """Recover the dataset persisted in ``directory``.

        Loads the manifest's snapshot, replays the WAL's valid record prefix
        onto it (truncating a torn tail), sweeps orphans from interrupted
        checkpoints, and returns the live dataset plus a
        :class:`RecoveryReport` describing what happened.
        """
        directory = Path(directory)
        manifest = load_manifest(directory / MANIFEST_NAME)
        generation = int(manifest["generation"])  # type: ignore[arg-type]
        store = load_segment(directory / str(manifest["snapshot"]))
        bounds = manifest.get("bounds")
        dataset = Dataset(
            str(manifest["relation"]),
            store,
            index_kind=str(manifest["index_kind"]),  # type: ignore[arg-type]
            bounds=Rect(*bounds) if bounds is not None else None,
            **dict(manifest.get("index_options") or {}),  # type: ignore[arg-type]
        )
        wal_path = directory / str(manifest["wal"])
        replayed = 0
        torn = False
        if wal_path.exists():
            scan = scan_wal(wal_path)
            for batch in scan.batches:
                dataset.apply_update(batch)
                replayed += 1
            torn = scan.torn_tail
            WriteAheadLog.truncate_torn_tail(wal_path, scan)
            wal = WriteAheadLog(wal_path)
        else:
            # Checkpoint crashed between the manifest flip and the directory
            # fsync that would have made the fresh WAL's entry durable: the
            # snapshot alone is the committed state.
            wal = WriteAheadLog.create(wal_path)
        orphans = cls._sweep_orphans(directory, manifest)
        durable = cls(
            directory,
            dataset,
            wal,
            generation=generation,
            batches_logged=int(manifest.get("batches", 0)) + replayed,  # type: ignore[arg-type]
        )
        durable.records_since_checkpoint = replayed
        report = RecoveryReport(
            relation=dataset.name,
            generation=generation,
            snapshot_rows=len(store),
            replayed_batches=replayed,
            torn_tail=torn,
            orphans_removed=orphans,
        )
        return durable, report

    @staticmethod
    def _manifest_data(dataset: Dataset, generation: int, batches: int) -> dict[str, object]:
        bounds = dataset.bounds
        return {
            "generation": generation,
            "snapshot": _snapshot_name(generation),
            "wal": _wal_name(generation),
            "relation": dataset.name,
            "index_kind": dataset.index_kind,
            "bounds": (
                [bounds.xmin, bounds.ymin, bounds.xmax, bounds.ymax]
                if bounds is not None
                else None
            ),
            "index_options": dataset.index_options,
            "batches": batches,
        }

    @staticmethod
    def _sweep_orphans(directory: Path, manifest: Mapping[str, object]) -> int:
        """Delete generation files the manifest does not name.

        An interrupted checkpoint leaves either the next generation's files
        (crash before the manifest flip) or the previous generation's (crash
        after); neither is referenced by the live manifest, so both are safe
        to drop.  Temp files from torn atomic writes are swept too.
        """
        keep = {MANIFEST_NAME, str(manifest["snapshot"]), str(manifest["wal"])}
        removed = 0
        for path in directory.iterdir():
            if path.name in keep:
                continue
            if path.name.endswith(".tmp") or path.name.startswith(("snapshot-", "wal-")):
                path.unlink(missing_ok=True)
                removed += 1
        return removed

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """The relation's name (the in-memory dataset's)."""
        return self.dataset.name

    def apply_update(self, batch: UpdateBatch) -> AppliedUpdate:
        """Apply one batch and make it durable; returns the effective mutation.

        The in-memory apply happens first (it validates the batch against
        the live state); the WAL append + fsync is the commit point.  A
        no-op batch (every pid unknown) is not logged.
        """
        applied = self.dataset.apply_update(batch)
        if applied.size:
            self.log(batch)
        return applied

    def log(self, batch: UpdateBatch) -> int:
        """Append an already-applied batch to the WAL; returns bytes written.

        Split from :meth:`apply_update` for owners that route the in-memory
        apply through their own engine (cache invalidation, listeners) and
        only need the durability half here.
        """
        written = self.wal.append(batch)
        self.records_since_checkpoint += 1
        self.batches_logged += 1
        return written

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def checkpoint(self) -> int:
        """Write the next generation's snapshot and truncate the WAL.

        Returns the new generation number.  See the module docstring for the
        crash-safety argument of each step.
        """
        generation = self.generation + 1
        write_segment(self.directory / _snapshot_name(generation), self.dataset.store)
        new_wal = WriteAheadLog.create(self.directory / _wal_name(generation))
        faults.fire("checkpoint:before-manifest", relation=self.name, generation=generation)
        write_manifest(
            self.directory / MANIFEST_NAME,
            self._manifest_data(self.dataset, generation, batches=self.batches_logged),
        )
        faults.fire("checkpoint:after-manifest", relation=self.name, generation=generation)
        old_wal, old_generation = self.wal, self.generation
        self.wal = new_wal
        self.generation = generation
        self.records_since_checkpoint = 0
        old_wal.close()
        (self.directory / _snapshot_name(old_generation)).unlink(missing_ok=True)
        (self.directory / _wal_name(old_generation)).unlink(missing_ok=True)
        return generation

    def close(self) -> None:
        """Close the WAL handle (the directory stays recoverable)."""
        self.wal.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DurableDataset({self.name!r}, generation={self.generation}, "
            f"wal_records={self.records_since_checkpoint})"
        )
