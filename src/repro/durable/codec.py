"""Binary encoding of :class:`~repro.storage.update.UpdateBatch` WAL payloads.

One WAL record's payload is one update batch, laid out column-first so that
encode and decode are ``tobytes``/``frombuffer`` passes with no per-operation
loop (the same structure-of-arrays discipline as the stores the batches
mutate):

====================  =======================================================
section               contents
====================  =======================================================
header (32 bytes)     ``<4Q``: ``n_inserts``, ``n_removes``, ``n_moves``,
                      ``payload_blob_len``
insert columns        ``insert_xs`` f8 × n, ``insert_ys`` f8 × n,
                      ``insert_pids`` i8 × n
remove column         ``remove_pids`` i8 × n
move columns          ``move_pids`` i8 × n, ``move_xs`` f8 × n,
                      ``move_ys`` f8 × n
payload side-table    pickle of the sparse ``insert_payloads`` dict
                      (``payload_blob_len`` bytes; absent when empty)
====================  =======================================================

All integers are little-endian; the framing (length prefix + CRC) around a
payload is the WAL's job (:mod:`repro.durable.wal`).  Decoding re-runs the
batch constructor's validation (:meth:`UpdateBatch.from_columns`), so a
corrupted-but-CRC-colliding record still cannot smuggle NaN coordinates or
mismatched columns into a replay.
"""

from __future__ import annotations

import pickle
import struct

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.storage.update import UpdateBatch

__all__ = ["encode_batch", "decode_batch"]

_HEADER = struct.Struct("<4Q")

_F8 = np.dtype("<f8")
_I8 = np.dtype("<i8")


def encode_batch(batch: UpdateBatch) -> bytes:
    """Serialize one update batch into a WAL record payload."""
    blob = (
        pickle.dumps(batch.insert_payloads, protocol=pickle.HIGHEST_PROTOCOL)
        if batch.insert_payloads
        else b""
    )
    parts = [
        _HEADER.pack(batch.num_inserts, batch.num_removes, batch.num_moves, len(blob)),
        np.ascontiguousarray(batch.insert_xs, dtype=_F8).tobytes(),
        np.ascontiguousarray(batch.insert_ys, dtype=_F8).tobytes(),
        np.ascontiguousarray(batch.insert_pids, dtype=_I8).tobytes(),
        np.ascontiguousarray(batch.remove_pids, dtype=_I8).tobytes(),
        np.ascontiguousarray(batch.move_pids, dtype=_I8).tobytes(),
        np.ascontiguousarray(batch.move_xs, dtype=_F8).tobytes(),
        np.ascontiguousarray(batch.move_ys, dtype=_F8).tobytes(),
        blob,
    ]
    return b"".join(parts)


def decode_batch(payload: bytes) -> UpdateBatch:
    """Rebuild an update batch from a WAL record payload.

    Raises :class:`InvalidParameterError` (a ``ValueError``) when the payload
    is structurally impossible — wrong length for its declared counts — or
    when the decoded columns fail batch validation.
    """
    if len(payload) < _HEADER.size:
        raise InvalidParameterError(
            f"WAL record payload too short for header: {len(payload)} bytes"
        )
    n_ins, n_rm, n_mv, blob_len = _HEADER.unpack_from(payload, 0)
    expected = _HEADER.size + 24 * n_ins + 8 * n_rm + 24 * n_mv + blob_len
    if len(payload) != expected:
        raise InvalidParameterError(
            f"WAL record payload length mismatch: got {len(payload)}, "
            f"expected {expected} for counts ({n_ins}, {n_rm}, {n_mv})"
        )

    offset = _HEADER.size

    def column(dtype: np.dtype, count: int) -> np.ndarray:
        nonlocal offset
        end = offset + dtype.itemsize * count
        # Copy out of the record buffer: batches outlive the read buffer and
        # downstream consumers expect ordinary writable arrays.
        out = np.frombuffer(payload, dtype=dtype, count=count, offset=offset).copy()
        offset = end
        return out

    insert_xs = column(_F8, n_ins)
    insert_ys = column(_F8, n_ins)
    insert_pids = column(_I8, n_ins)
    remove_pids = column(_I8, n_rm)
    move_pids = column(_I8, n_mv)
    move_xs = column(_F8, n_mv)
    move_ys = column(_F8, n_mv)
    batch = UpdateBatch.from_columns(
        insert_xs=insert_xs,
        insert_ys=insert_ys,
        insert_pids=insert_pids,
        remove_pids=remove_pids if n_rm else None,
        move_pids=move_pids,
        move_xs=move_xs,
        move_ys=move_ys,
    )
    if blob_len:
        payloads = pickle.loads(payload[offset : offset + blob_len])
        if not isinstance(payloads, dict):
            raise InvalidParameterError("WAL record payload side-table is not a dict")
        batch.insert_payloads = payloads
    return batch
