"""``DurableEngine``: a :class:`SpatialEngine` whose relations survive crashes.

The wrapper owns one :class:`~repro.durable.dataset.DurableDataset` per
registered relation (a subdirectory of its root) and routes every mutation
through the engine first — cache invalidation, index maintenance, listeners —
then appends the batch to the relation's WAL.  The WAL fsync is the
durability commit point: a mutation the caller saw return is recoverable, a
mutation interrupted by a crash recovers to its pre-batch state.

:meth:`open` is the recovery path.  Per relation it loads the last
checkpointed snapshot, replays the WAL tail (tolerating a torn final
record), and registers the recovered dataset; then it restores the planner
state persisted at the last checkpoint/close — calibration profiles and
plan-cache signatures — and re-plans the persisted shapes so the engine
answers its first query *warm*: plan-cache hit, statistics already cached,
calibrated cost estimates (see ``tests/test_durable_warm_restart.py``).

Observability: checkpoints and recoveries run under tracer spans
(``durable.checkpoint``, ``durable.recover``); counters cover WAL appends
and bytes, checkpoints, recoveries, replayed batches, torn tails, and
mutations that bypassed the durable write path (``durable_bypass_total``,
also emitted as a ``durable_bypass`` event — those batches are *not* logged
and will not survive a crash).  A :class:`~repro.obs.flight.FlightRecorder`
persists ``flight_record.json`` under the root on creation, recovery and
every checkpoint, and — crucially — when a crash (including injected
``BaseException`` faults) interrupts the durable write path, so post-mortem
forensics always have the recent traces, events, metrics and slow queries
that led up to the failure.
"""

from __future__ import annotations

import shutil
import threading
from pathlib import Path
from typing import Iterable, Mapping

from repro.durable.dataset import MANIFEST_NAME, DurableDataset, RecoveryReport
from repro.durable.state import load_engine_state, save_engine_state, warm_plans
from repro.engine.session import SpatialEngine
from repro.exceptions import InvalidParameterError, UnsupportedQueryError
from repro.obs.flight import FlightRecorder
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.query.dataset import Dataset, IndexKind
from repro.storage.update import AppliedUpdate, UpdateBatch

__all__ = ["DurableEngine"]

#: Auto-checkpoint after this many WAL records per relation (0 disables).
DEFAULT_CHECKPOINT_INTERVAL = 256

#: File name of the crash flight record persisted under the durable root.
FLIGHT_RECORD_NAME = "flight_record.json"


class DurableEngine:
    """Crash-safe façade over a :class:`SpatialEngine`.

    Construct through :meth:`create` (fresh root directory) or :meth:`open`
    (recovery).  Reads — ``run``, ``run_many``, ``plan``, ``explain``,
    metrics — are delegated verbatim to the wrapped engine (available as
    :attr:`engine`); mutations go through the overrides below so every batch
    lands in the relation's WAL before the call returns.
    """

    def __init__(
        self,
        root: Path,
        engine: SpatialEngine,
        checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
    ) -> None:
        if checkpoint_interval < 0:
            raise InvalidParameterError("checkpoint_interval must be >= 0")
        self.root = Path(root)
        self.engine = engine
        self.checkpoint_interval = checkpoint_interval
        self._durables: dict[str, DurableDataset] = {}
        #: Per-relation recovery reports from the last :meth:`open` (empty
        #: for a freshly created root).
        self.last_recovery: dict[str, RecoveryReport] = {}
        #: Plans re-derived from persisted signatures at the last open.
        self.warmed_plans = 0
        registry = engine.obs.registry
        self._wal_appends = registry.counter("wal_appends_total")
        self._wal_bytes = registry.counter("wal_bytes_total")
        self._checkpoints = registry.counter("checkpoints_total")
        self._recoveries = registry.counter("recoveries_total")
        self._replayed = registry.counter("wal_replayed_batches_total")
        self._torn_tails = registry.counter("wal_torn_tails_total")
        self._bypasses = registry.counter("durable_bypass_total")
        registry.gauge("durable_relations", fn=lambda: len(self._durables))
        #: The crash flight recorder over the wrapped engine's bundle.
        self.flight = FlightRecorder(engine.obs)
        #: Where :meth:`record_flight` persists the flight record.
        self.flight_record_path = self.root / FLIGHT_RECORD_NAME
        # Mutations routed through this wrapper set the flag; the listener
        # fires for *every* engine mutation, so a set flag distinguishes the
        # durable path from a caller mutating the inner engine directly.
        self._in_mutation = threading.local()
        engine.add_mutation_listener(self._on_engine_mutation)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        root: Path,
        engine: SpatialEngine | None = None,
        checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
    ) -> "DurableEngine":
        """Initialize ``root`` as a fresh durable root.

        Relations already registered on a supplied ``engine`` get their
        generation-0 snapshots written immediately; relations registered
        later are picked up by :meth:`register`.
        """
        root = Path(root)
        root.mkdir(parents=True, exist_ok=True)
        engine = engine if engine is not None else SpatialEngine()
        durable = cls(root, engine, checkpoint_interval)
        for name, dataset in engine.datasets.items():
            durable._durables[name] = DurableDataset.create(root / name, dataset)
        durable.record_flight("create")
        return durable

    @classmethod
    def open(
        cls,
        root: Path,
        checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
        **engine_options: object,
    ) -> "DurableEngine":
        """Recover every relation under ``root`` into a warm engine.

        ``engine_options`` are forwarded to the :class:`SpatialEngine`
        constructor (``calibration`` is supplied from the persisted planner
        state when present and may not be overridden).
        """
        root = Path(root)
        if not root.is_dir():
            raise InvalidParameterError(f"durable root {root} does not exist")
        calibration, signatures = load_engine_state(root)
        if calibration is not None:
            if "calibration" in engine_options:
                raise InvalidParameterError(
                    "calibration is restored from the durable root; do not pass it"
                )
            engine_options["calibration"] = calibration
        engine = SpatialEngine(**engine_options)  # type: ignore[arg-type]
        durable = cls(root, engine, checkpoint_interval)
        tracer = engine.obs.tracer
        for directory in sorted(p for p in root.iterdir() if p.is_dir()):
            if not (directory / MANIFEST_NAME).exists():
                continue
            with tracer.span("durable.recover", relation=directory.name):
                dataset_dir, report = DurableDataset.open(directory)
            durable._durables[report.relation] = dataset_dir
            durable.last_recovery[report.relation] = report
            durable._recoveries.inc()
            durable._replayed.inc(report.replayed_batches)
            if report.torn_tail:
                durable._torn_tails.inc()
            engine.obs.events.emit(
                "durable_recovery",
                relation=report.relation,
                generation=report.generation,
                replayed=report.replayed_batches,
                torn_tail=report.torn_tail,
            )
            durable._register_inner(dataset_dir.dataset)
        durable.warmed_plans = warm_plans(engine, signatures)
        durable.record_flight("recovery")
        return durable

    def _register_inner(self, dataset: Dataset) -> None:
        """Register with the inner engine without tripping bypass detection."""
        self._in_mutation.active = True
        try:
            self.engine.register(dataset)
        finally:
            self._in_mutation.active = False

    # ------------------------------------------------------------------
    # Relation lifecycle
    # ------------------------------------------------------------------
    def register(
        self,
        dataset: Dataset | None = None,
        *,
        name: str | None = None,
        points: Iterable[Point | tuple[float, float]] | None = None,
        index_kind: IndexKind = "grid",
        bounds: Rect | None = None,
        **index_options: object,
    ) -> Dataset:
        """Register a relation and write its generation-0 snapshot.

        Same signature as :meth:`SpatialEngine.register`.  Re-registering a
        name replaces its durable directory wholesale (the old generation is
        deleted — registration is a reset, not a mutation).
        """
        registered = self.engine.register(
            dataset,
            name=name,
            points=points,
            index_kind=index_kind,
            bounds=bounds,
            **index_options,
        )
        directory = self.root / registered.name
        old = self._durables.pop(registered.name, None)
        if old is not None:
            old.close()
        if directory.exists():
            shutil.rmtree(directory)
        self._durables[registered.name] = DurableDataset.create(directory, registered)
        return registered

    def unregister(self, name: str) -> None:
        """Drop a relation from the engine *and* delete its durable directory."""
        self.engine.unregister(name)
        durable = self._durables.pop(name, None)
        if durable is not None:
            durable.close()
            shutil.rmtree(durable.directory, ignore_errors=True)

    def _durable(self, name: str) -> DurableDataset:
        try:
            return self._durables[name]
        except KeyError:
            raise UnsupportedQueryError(f"no durable dataset for {name!r}") from None

    # ------------------------------------------------------------------
    # Mutations (the durable write path)
    # ------------------------------------------------------------------
    def apply_update(self, name: str, batch: UpdateBatch) -> AppliedUpdate:
        """Apply one batch through the engine, then make it durable.

        The engine applies first (index repair, cache invalidation,
        listeners); the WAL append + fsync is the commit point.  Triggers an
        automatic checkpoint when the relation's WAL reaches
        :attr:`checkpoint_interval` records.
        """
        durable = self._durable(name)
        try:
            self._in_mutation.active = True
            try:
                applied = self.engine.apply_update(name, batch)
            finally:
                self._in_mutation.active = False
            if applied.size:
                written = durable.log(batch)
                self._wal_appends.inc()
                self._wal_bytes.inc(written)
                if (
                    self.checkpoint_interval
                    and durable.records_since_checkpoint >= self.checkpoint_interval
                ):
                    self.checkpoint(name)
        except BaseException as error:
            # BaseException on purpose: injected crash faults derive from it
            # so they cannot be swallowed by ordinary handlers.  Leave the
            # flight record behind, then let the crash proceed.
            self.record_flight("crash", error=repr(error))
            raise
        return applied

    def insert(self, name: str, points: Iterable[Point | tuple[float, float]]) -> int:
        """Durably add points to a relation (see :meth:`SpatialEngine.insert`)."""
        return self.apply_update(name, UpdateBatch(inserts=points)).size

    def remove(self, name: str, pids: Iterable[int]) -> int:
        """Durably remove points by pid (see :meth:`SpatialEngine.remove`)."""
        return self.apply_update(name, UpdateBatch(removes=pids)).size

    def move(self, name: str, moves: Iterable[tuple[int, float, float]]) -> int:
        """Durably relocate points (see :meth:`SpatialEngine.move`)."""
        return self.apply_update(name, UpdateBatch(moves=moves)).size

    def record_flight(self, reason: str, error: str | None = None) -> None:
        """Persist the crash flight record under the durable root.

        Failures here are swallowed: the record is forensic garnish and must
        never mask the original crash (or fail a healthy checkpoint) — e.g.
        when the root itself became unwritable.
        """
        try:
            self.flight.persist(self.flight_record_path, reason, error=error)
        except Exception:
            pass

    def _on_engine_mutation(self, name: str) -> None:
        if getattr(self._in_mutation, "active", False):
            return
        # The mutation reached the inner engine without passing through the
        # durable write path: it is live in memory but absent from the WAL.
        self._bypasses.inc()
        self.engine.obs.events.emit("durable_bypass", relation=name)

    # ------------------------------------------------------------------
    # Checkpointing and shutdown
    # ------------------------------------------------------------------
    def checkpoint(self, name: str | None = None) -> int:
        """Checkpoint one relation (or all), then persist the planner state.

        Returns the number of relations checkpointed.  Each checkpoint snaps
        the relation's current store, starts a fresh WAL and retires the old
        generation (see :meth:`DurableDataset.checkpoint` for the crash
        argument); the planner state (calibration + plan signatures) rides
        along so a crash right after a checkpoint still restarts warm.
        """
        targets = [self._durable(name)] if name is not None else list(self._durables.values())
        tracer = self.engine.obs.tracer
        try:
            for durable in targets:
                with tracer.span(
                    "durable.checkpoint",
                    relation=durable.name,
                    wal_records=durable.records_since_checkpoint,
                ):
                    generation = durable.checkpoint()
                self._checkpoints.inc()
                self.engine.obs.events.emit(
                    "durable_checkpoint", relation=durable.name, generation=generation
                )
        except BaseException as error:
            self.record_flight("crash", error=repr(error))
            raise
        if targets:
            save_engine_state(self.root, self.engine)
            self.record_flight("checkpoint")
        return len(targets)

    def close(self) -> None:
        """Persist the planner state and close every WAL handle.

        Data needs no flush — every applied batch is already fsynced — so
        close is cheap and a *missed* close (a crash) costs only the planner
        state learned since the last checkpoint.
        """
        save_engine_state(self.root, self.engine)
        for durable in self._durables.values():
            durable.close()
        self.engine.remove_mutation_listener(self._on_engine_mutation)

    def __enter__(self) -> "DurableEngine":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Read-side delegation
    # ------------------------------------------------------------------
    def __getattr__(self, attr: str):
        """Delegate everything not overridden (run, plan, explain, metrics,
        dataset access) to the wrapped :class:`SpatialEngine`."""
        if attr.startswith("_") or attr == "engine":
            # Never forward private/dunder probes (pickle, copy, repr during
            # a failed construction) — that way recursion lies.
            raise AttributeError(attr)
        return getattr(self.engine, attr)

    @property
    def durables(self) -> Mapping[str, DurableDataset]:
        """Read-only view of the per-relation durable datasets."""
        return dict(self._durables)

    def __contains__(self, name: str) -> bool:
        return name in self.engine

    def __len__(self) -> int:
        return len(self.engine)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DurableEngine(root={str(self.root)!r}, relations={len(self._durables)}, "
            f"checkpoint_interval={self.checkpoint_interval})"
        )
