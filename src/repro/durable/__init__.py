"""``repro.durable``: the crash-safe storage tier (snapshot + WAL).

The in-memory engine stack (``repro.engine`` and its sharded/stream
wrappers) loses everything on a crash: data, learned calibration profiles,
cached plans.  This package adds durability underneath it without changing
the query path:

* :mod:`~repro.durable.segment` — memory-mappable columnar snapshots of a
  :class:`~repro.storage.pointstore.PointStore` (CRC-guarded; loads are
  zero-copy ``mmap`` + ``frombuffer``);
* :mod:`~repro.durable.wal` — a write-ahead log of
  :class:`~repro.storage.update.UpdateBatch` records (framed, CRC-guarded,
  fsynced per append; torn tails are tolerated, mid-file corruption is not);
* :mod:`~repro.durable.codec` — the columnar binary encoding of one batch;
* :mod:`~repro.durable.manifest` — atomic CRC-guarded JSON commit records;
* :mod:`~repro.durable.dataset` — :class:`DurableDataset`, one relation's
  generation-numbered directory (snapshot + WAL + manifest) with the
  checkpoint/recovery protocol;
* :mod:`~repro.durable.state` — persisted planner state (calibration
  profiles + plan signatures) for warm restarts;
* :mod:`~repro.durable.engine` — :class:`DurableEngine`, the crash-safe
  façade over :class:`~repro.engine.session.SpatialEngine`;
* :mod:`~repro.durable.faults` — named crash points
  (:data:`~repro.durable.faults.CRASH_POINTS`) the fault-injection test
  harness hooks into; no-ops in production.

The durability contract, the on-disk formats and the torn-write recovery
argument are documented in ``docs/durability.md``.
"""

from repro.durable import faults
from repro.durable.codec import decode_batch, encode_batch
from repro.durable.dataset import DurableDataset, RecoveryReport
from repro.durable.engine import DurableEngine
from repro.durable.faults import CRASH_POINTS
from repro.durable.manifest import (
    ManifestCorruptError,
    load_manifest,
    write_manifest,
)
from repro.durable.segment import SegmentCorruptError, load_segment, write_segment
from repro.durable.state import load_engine_state, save_engine_state, warm_plans
from repro.durable.wal import WalCorruptError, WalScan, WriteAheadLog, scan_wal

__all__ = [
    "faults",
    "CRASH_POINTS",
    "encode_batch",
    "decode_batch",
    "write_segment",
    "load_segment",
    "SegmentCorruptError",
    "WriteAheadLog",
    "scan_wal",
    "WalScan",
    "WalCorruptError",
    "write_manifest",
    "load_manifest",
    "ManifestCorruptError",
    "DurableDataset",
    "RecoveryReport",
    "DurableEngine",
    "save_engine_state",
    "load_engine_state",
    "warm_plans",
]
