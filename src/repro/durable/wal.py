"""The write-ahead log: framed, CRC-guarded ``UpdateBatch`` records.

A WAL file is a header followed by zero or more records, each framed as::

    <I payload_len> <I crc32(payload)> <payload bytes>

with the payload encoded by :mod:`repro.durable.codec`.  Appends are
sequential and fsynced before :meth:`WriteAheadLog.append` returns — the
fsync is the durability commit point of the whole tier (see
``docs/durability.md``).

Reads tolerate exactly the damage a crash can inflict on the *tail*:

* a **truncated** final record (fewer bytes on disk than the frame declares,
  including a frame cut mid-header), and
* a **corrupted** final record (CRC mismatch from a partial or garbled
  write).

:func:`scan_wal` stops at the first invalid frame and reports the byte
offset of the last valid record boundary; recovery replays the valid prefix
and truncates the tail so later appends never sit behind garbage.  Damage
*before* the tail (flipped bytes in an already-fsynced record) is detected
by the same CRC walk and surfaces as :class:`WalCorruptError` — that is real
corruption, not a crash artifact, and silently dropping suffix records that
were acknowledged as durable would be worse than failing loudly.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro.durable import faults
from repro.durable.codec import decode_batch, encode_batch
from repro.exceptions import InvalidParameterError
from repro.storage.update import UpdateBatch

__all__ = ["WalCorruptError", "WalScan", "WriteAheadLog", "scan_wal"]

MAGIC = b"RDWAL001"
_FRAME = struct.Struct("<II")

#: Records larger than this are rejected as structurally impossible (a torn
#: length prefix can decode to garbage; the cap stops a multi-GB misread).
MAX_RECORD_BYTES = 1 << 30


class WalCorruptError(InvalidParameterError):
    """Raised for WAL damage that cannot be a torn tail (see module doc)."""


@dataclass(frozen=True)
class WalScan:
    """The result of scanning a WAL file.

    ``batches`` is the valid record prefix, ``valid_bytes`` the offset of the
    last valid record boundary (the truncation target for a torn tail), and
    ``torn_tail`` whether trailing bytes after that boundary had to be
    discarded.
    """

    batches: tuple[UpdateBatch, ...]
    valid_bytes: int
    torn_tail: bool


def scan_wal(path: Path) -> WalScan:
    """Read every valid record of the WAL at ``path`` (see module doc).

    Raises :class:`WalCorruptError` when the file's header is damaged or an
    invalid record is followed by a *valid* one (mid-file corruption — a
    crash can only damage the tail).
    """
    data = Path(path).read_bytes()
    if len(data) < len(MAGIC):
        # A WAL created but not yet through its header fsync: empty prefix.
        return WalScan(batches=(), valid_bytes=0, torn_tail=len(data) > 0)
    if data[: len(MAGIC)] != MAGIC:
        raise WalCorruptError(f"WAL {Path(path).name}: bad magic")
    batches: list[UpdateBatch] = []
    offset = len(MAGIC)
    valid = offset
    torn = False
    while offset < len(data):
        if offset + _FRAME.size > len(data):
            torn = True  # frame header itself cut short
            break
        length, crc = _FRAME.unpack_from(data, offset)
        start = offset + _FRAME.size
        end = start + length
        if length > MAX_RECORD_BYTES or end > len(data):
            torn = True  # declared payload extends past EOF
            break
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            torn = True
            break
        try:
            batches.append(decode_batch(payload))
        except ValueError as exc:
            # CRC-valid but undecodable: not explicable as a torn write.
            raise WalCorruptError(
                f"WAL {Path(path).name}: undecodable record at byte {offset}: {exc}"
            ) from exc
        offset = end
        valid = end
    if torn and _has_valid_record_after(data, valid):
        raise WalCorruptError(
            f"WAL {Path(path).name}: corrupt record at byte {valid} "
            "followed by valid data (mid-file corruption, not a torn tail)"
        )
    return WalScan(batches=tuple(batches), valid_bytes=valid, torn_tail=torn)


def _has_valid_record_after(data: bytes, boundary: int) -> bool:
    """Whether any frame after the first invalid one still checks out.

    A torn tail ends the file; a CRC-valid record *behind* the damage means
    an already-fsynced record was corrupted in place, which recovery must
    refuse to paper over (dropping acknowledged records breaks durability).
    The walk probes every byte offset — frames are not self-synchronizing —
    but only past the damage point of an already-failed scan, so the cost is
    bounded by the (small) tail.
    """
    for probe in range(boundary + 1, len(data) - _FRAME.size + 1):
        length, crc = _FRAME.unpack_from(data, probe)
        start = probe + _FRAME.size
        end = start + length
        if length == 0 or length > MAX_RECORD_BYTES or end > len(data):
            continue
        if zlib.crc32(data[start:end]) == crc:
            try:
                decode_batch(data[start:end])
            except ValueError:
                continue
            return True
    return False


class WriteAheadLog:
    """Append-only writer over one WAL file.

    Parameters
    ----------
    path:
        The WAL file.  Created (with a durable header) when absent; opened
        for appending when present.
    """

    def __init__(self, path: Path) -> None:
        self.path = Path(path)
        #: Records appended through this handle (not the file's total).
        self.appends = 0
        created = not self.path.exists()
        self._fh = open(self.path, "ab")
        if created:
            self._fh.write(MAGIC)
            self._fh.flush()
            os.fsync(self._fh.fileno())

    @classmethod
    def create(cls, path: Path) -> "WriteAheadLog":
        """Create a fresh, empty WAL at ``path`` (truncating any old file)."""
        path = Path(path)
        if path.exists():
            path.unlink()
        return cls(path)

    def append(self, batch: UpdateBatch) -> int:
        """Append one batch record; durable when the call returns.

        Returns the number of bytes written.  The frame header and payload
        are written separately with the ``wal:mid-append`` crash point
        between them, so the fault suite can produce a genuinely torn record
        (length prefix on disk, payload missing).
        """
        payload = encode_batch(batch)
        frame = _FRAME.pack(len(payload), zlib.crc32(payload))
        self._fh.write(frame)
        self._fh.flush()
        faults.fire("wal:mid-append", path=str(self.path))
        self._fh.write(payload)
        self._fh.flush()
        faults.fire("wal:before-fsync", path=str(self.path))
        os.fsync(self._fh.fileno())
        faults.fire("wal:after-fsync", path=str(self.path))
        self.appends += 1
        return len(frame) + len(payload)

    def tell(self) -> int:
        """Current end-of-log byte offset."""
        return self._fh.tell()

    def close(self) -> None:
        """Close the underlying file handle (idempotent)."""
        if not self._fh.closed:
            self._fh.close()

    @staticmethod
    def truncate_torn_tail(path: Path, scan: WalScan) -> bool:
        """Cut a scanned WAL back to its last valid record boundary.

        Recovery calls this after :func:`scan_wal` reported a torn tail, so
        the next append continues from a clean boundary instead of burying
        garbage mid-file.  Returns whether anything was cut.
        """
        if not scan.torn_tail:
            return False
        with open(path, "r+b") as fh:
            fh.truncate(max(scan.valid_bytes, 0))
            if scan.valid_bytes < len(MAGIC):
                # The crash tore the header itself: rebuild an empty WAL.
                fh.seek(0)
                fh.write(MAGIC)
            fh.flush()
            os.fsync(fh.fileno())
        return True

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WriteAheadLog({self.path.name!r}, appends={self.appends})"
