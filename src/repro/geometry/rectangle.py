"""Axis-aligned rectangles.

Rectangles represent index *blocks* (grid cells, quadtree leaves, R-tree leaf
MBRs) and the spatial extent of datasets.  The paper's pruning rules use the
block center, the block diagonal length, and the MINDIST/MAXDIST metrics; all
of these are provided here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.exceptions import GeometryError
from repro.geometry.point import Point

__all__ = ["Rect"]


@dataclass(frozen=True, slots=True)
class Rect:
    """A closed axis-aligned rectangle ``[xmin, xmax] x [ymin, ymax]``."""

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    def __post_init__(self) -> None:
        if self.xmin > self.xmax or self.ymin > self.ymax:
            raise GeometryError(
                f"inverted rectangle: ({self.xmin}, {self.ymin}, {self.xmax}, {self.ymax})"
            )
        for value in (self.xmin, self.ymin, self.xmax, self.ymax):
            if not math.isfinite(value):
                raise GeometryError("rectangle bounds must be finite")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_points(cls, points: Iterable[Point]) -> "Rect":
        """Return the minimum bounding rectangle of ``points``."""
        xs: list[float] = []
        ys: list[float] = []
        for p in points:
            xs.append(p.x)
            ys.append(p.y)
        if not xs:
            raise GeometryError("cannot build a rectangle from an empty point collection")
        return cls(min(xs), min(ys), max(xs), max(ys))

    @classmethod
    def from_center(cls, center: Point, width: float, height: float) -> "Rect":
        """Return a rectangle of the given size centered at ``center``."""
        if width < 0 or height < 0:
            raise GeometryError("rectangle width/height must be non-negative")
        hw, hh = width / 2.0, height / 2.0
        return cls(center.x - hw, center.y - hh, center.x + hw, center.y + hh)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def width(self) -> float:
        return self.xmax - self.xmin

    @property
    def height(self) -> float:
        return self.ymax - self.ymin

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def diagonal(self) -> float:
        """Length of the rectangle's diagonal (the paper's ``d``)."""
        return math.hypot(self.width, self.height)

    @property
    def center(self) -> Point:
        """The rectangle's center point (the paper's block center ``c``)."""
        return Point((self.xmin + self.xmax) / 2.0, (self.ymin + self.ymax) / 2.0)

    def corners(self) -> Iterator[Point]:
        """Yield the four corner points."""
        yield Point(self.xmin, self.ymin)
        yield Point(self.xmax, self.ymin)
        yield Point(self.xmax, self.ymax)
        yield Point(self.xmin, self.ymax)

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def contains_point(self, p: Point) -> bool:
        """True if ``p`` lies inside or on the boundary of the rectangle."""
        return self.xmin <= p.x <= self.xmax and self.ymin <= p.y <= self.ymax

    def contains_rect(self, other: "Rect") -> bool:
        """True if ``other`` is fully contained in this rectangle."""
        return (
            self.xmin <= other.xmin
            and self.ymin <= other.ymin
            and self.xmax >= other.xmax
            and self.ymax >= other.ymax
        )

    def intersects(self, other: "Rect") -> bool:
        """True if the two (closed) rectangles share at least one point."""
        return not (
            self.xmax < other.xmin
            or other.xmax < self.xmin
            or self.ymax < other.ymin
            or other.ymax < self.ymin
        )

    def intersection(self, other: "Rect") -> "Rect | None":
        """Return the intersection rectangle, or ``None`` if disjoint."""
        if not self.intersects(other):
            return None
        return Rect(
            max(self.xmin, other.xmin),
            max(self.ymin, other.ymin),
            min(self.xmax, other.xmax),
            min(self.ymax, other.ymax),
        )

    def union(self, other: "Rect") -> "Rect":
        """Return the smallest rectangle containing both rectangles."""
        return Rect(
            min(self.xmin, other.xmin),
            min(self.ymin, other.ymin),
            max(self.xmax, other.xmax),
            max(self.ymax, other.ymax),
        )

    def expand(self, margin: float) -> "Rect":
        """Return this rectangle grown by ``margin`` on every side."""
        if margin < 0 and (self.width < -2 * margin or self.height < -2 * margin):
            raise GeometryError("cannot shrink the rectangle below zero size")
        return Rect(self.xmin - margin, self.ymin - margin, self.xmax + margin, self.ymax + margin)

    # ------------------------------------------------------------------
    # Subdivision (used by the quadtree)
    # ------------------------------------------------------------------
    def quadrants(self) -> tuple["Rect", "Rect", "Rect", "Rect"]:
        """Split into four equal quadrants (SW, SE, NW, NE)."""
        cx = (self.xmin + self.xmax) / 2.0
        cy = (self.ymin + self.ymax) / 2.0
        return (
            Rect(self.xmin, self.ymin, cx, cy),
            Rect(cx, self.ymin, self.xmax, cy),
            Rect(self.xmin, cy, cx, self.ymax),
            Rect(cx, cy, self.xmax, self.ymax),
        )

    def as_tuple(self) -> tuple[float, float, float, float]:
        """Return ``(xmin, ymin, xmax, ymax)``."""
        return (self.xmin, self.ymin, self.xmax, self.ymax)
