"""Planar geometry primitives used throughout the library.

The paper operates on points in the two-dimensional Euclidean plane and on
axis-aligned rectangular *blocks* produced by a space-partitioning index.  The
two metrics MINDIST and MAXDIST (Roussopoulos et al. [13]) between a point and
a block drive every pruning rule in the paper; they live in
:mod:`repro.geometry.distance`.
"""

from repro.geometry.point import Point, PointArray, as_point_array, centroid
from repro.geometry.rectangle import Rect
from repro.geometry.distance import (
    euclidean,
    euclidean_squared,
    mindist_point_rect,
    maxdist_point_rect,
    mindist_rect_rect,
    pairwise_distances,
    distances_to_point,
)

__all__ = [
    "Point",
    "PointArray",
    "as_point_array",
    "centroid",
    "Rect",
    "euclidean",
    "euclidean_squared",
    "mindist_point_rect",
    "maxdist_point_rect",
    "mindist_rect_rect",
    "pairwise_distances",
    "distances_to_point",
]
