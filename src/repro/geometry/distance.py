"""Distance metrics: Euclidean, MINDIST and MAXDIST.

MINDIST(p, b) is the smallest possible distance between point ``p`` and any
point of block ``b``; MAXDIST(p, b) is the largest possible such distance
(Roussopoulos et al., "Nearest neighbor queries", SIGMOD 1995).  The paper's
algorithms scan index blocks in MINDIST or MAXDIST order from a point and use
the two metrics for every pruning bound.
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry.point import Point, PointArray
from repro.geometry.rectangle import Rect

__all__ = [
    "euclidean",
    "euclidean_squared",
    "mindist_point_rect",
    "maxdist_point_rect",
    "mindist_rect_rect",
    "pairwise_distances",
    "distances_to_point",
]


def euclidean(a: Point, b: Point) -> float:
    """Euclidean distance between two points."""
    return math.hypot(a.x - b.x, a.y - b.y)


def euclidean_squared(a: Point, b: Point) -> float:
    """Squared Euclidean distance between two points."""
    dx = a.x - b.x
    dy = a.y - b.y
    return dx * dx + dy * dy


def mindist_point_rect(p: Point, rect: Rect) -> float:
    """MINDIST between point ``p`` and rectangle ``rect``.

    Zero when ``p`` lies inside (or on the boundary of) the rectangle.
    """
    dx = 0.0
    if p.x < rect.xmin:
        dx = rect.xmin - p.x
    elif p.x > rect.xmax:
        dx = p.x - rect.xmax
    dy = 0.0
    if p.y < rect.ymin:
        dy = rect.ymin - p.y
    elif p.y > rect.ymax:
        dy = p.y - rect.ymax
    return math.hypot(dx, dy)


def maxdist_point_rect(p: Point, rect: Rect) -> float:
    """MAXDIST between point ``p`` and rectangle ``rect``.

    The distance from ``p`` to the farthest corner of the rectangle; any point
    inside the rectangle is at most this far from ``p``.
    """
    dx = max(abs(p.x - rect.xmin), abs(p.x - rect.xmax))
    dy = max(abs(p.y - rect.ymin), abs(p.y - rect.ymax))
    return math.hypot(dx, dy)


def mindist_rect_rect(a: Rect, b: Rect) -> float:
    """MINDIST between two rectangles (zero when they intersect)."""
    dx = max(0.0, max(a.xmin, b.xmin) - min(a.xmax, b.xmax))
    dy = max(0.0, max(a.ymin, b.ymin) - min(a.ymax, b.ymax))
    return math.hypot(dx, dy)


def distances_to_point(coords: PointArray, p: Point) -> np.ndarray:
    """Vectorized Euclidean distances from every row of ``coords`` to ``p``.

    ``coords`` must be an ``(n, 2)`` array; the result is an ``(n,)`` array.
    """
    if coords.size == 0:
        return np.empty(0, dtype=np.float64)
    diff = coords - np.array([p.x, p.y], dtype=np.float64)
    return np.hypot(diff[:, 0], diff[:, 1])


def pairwise_distances(a: PointArray, b: PointArray) -> np.ndarray:
    """Full ``(len(a), len(b))`` matrix of Euclidean distances.

    Intended for small blocks of points (the brute-force reference kNN and
    unit tests); the library's algorithms never materialize a full distance
    matrix over whole datasets.
    """
    if a.size == 0 or b.size == 0:
        return np.empty((a.shape[0], b.shape[0]), dtype=np.float64)
    diff = a[:, None, :] - b[None, :, :]
    return np.hypot(diff[..., 0], diff[..., 1])
