"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish configuration errors from query-planning errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class GeometryError(ReproError, ValueError):
    """Raised for invalid geometric constructions (e.g. inverted rectangles).

    Also a :class:`ValueError` — same reasoning as
    :class:`InvalidParameterError`: a NaN/infinite coordinate is rejected
    with the same catchable type at every entry point (point and batch
    construction, ``Dataset``/engine mutations, WAL decode), which is what
    lets callers guard the whole mutation surface with one ``except
    ValueError``.
    """


class IndexError_(ReproError):
    """Raised for invalid spatial-index configurations or operations.

    Named with a trailing underscore to avoid shadowing the built-in
    :class:`IndexError`; exported as ``SpatialIndexError`` from the package
    root.
    """


class EmptyDatasetError(ReproError):
    """Raised when an operation requires a non-empty dataset but got none."""


class InvalidParameterError(ReproError, ValueError):
    """Raised when a query or algorithm parameter is out of range (e.g. k <= 0).

    Also a :class:`ValueError`, so every entry point — ``get_knn`` and the
    operators, predicate construction, ``SpatialEngine.run`` / ``run_many``,
    the sharded engine and ``StreamEngine.subscribe`` — rejects an invalid
    ``k`` with the *same* catchable type, before any planning happens.
    (``k`` larger than the population is uniformly *valid* and truncates;
    see ``tests/test_locality_knn_truncation.py``.)
    """


class PlanError(ReproError):
    """Raised when a query evaluation plan is malformed."""


class InvalidPlanError(PlanError):
    """Raised when a QEP violates the paper's correctness rules.

    The canonical example is pushing a kNN-select below the *inner* relation
    of a kNN-join (Section 1 and Section 3 of the paper), which changes the
    query answer and is therefore rejected by the planner.
    """


class UnsupportedQueryError(ReproError):
    """Raised when the query API is asked for a combination it cannot plan."""


class StaleShardError(ReproError):
    """Raised when sharded execution detects a dataset version mismatch.

    Every shard task carries the dataset versions its plan was derived
    against; a worker that observes a different version (e.g. a process-pool
    worker holding a pre-mutation snapshot, or a dataset mutated behind the
    engine's back) refuses to execute rather than serve results computed
    against stale per-shard state.  The engine catches this error, rebuilds
    its shard runtime, re-plans and retries.
    """
