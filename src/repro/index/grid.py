"""Uniform grid index.

This is the index used in the paper's evaluation (Section 6): "We index the
data points into a simple grid.  Since our algorithms are independent of a
specific indexing structure, we choose a grid in order to be able to see the
effectiveness of our algorithms even with simple structures."

The grid partitions the dataset bounds into ``cells_per_side x cells_per_side``
equal cells.  Every cell is a block, including empty cells (empty blocks are
kept so that MINDIST/MAXDIST contours are complete; they carry a zero count
and are skipped quickly by every algorithm).

Construction is columnar: the builder accepts a
:class:`~repro.storage.pointstore.PointStore` (or any iterable of points,
which it shreds into one), assigns every row to its cell with one vectorized
pass over the coordinate columns, and hands each block an ``int32`` member-row
array — no per-point Python objects are touched while building.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.exceptions import EmptyDatasetError, InvalidParameterError
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.index.base import SpatialIndex
from repro.index.block import Block
from repro.storage.pointstore import PointStore
from repro.storage.update import StoreChange

__all__ = ["GridIndex"]


def _group_by_cell(cells: np.ndarray, rows: np.ndarray) -> dict[int, np.ndarray]:
    """Group aligned ``(cell_id, row)`` pairs into cell id → row array."""
    if not len(rows):
        return {}
    order = np.argsort(cells, kind="stable")
    sorted_cells = cells[order]
    sorted_rows = rows[order]
    boundaries = np.nonzero(np.diff(sorted_cells))[0] + 1
    return {
        int(sorted_cells[start]): group
        for start, group in zip(
            np.concatenate(([0], boundaries)), np.split(sorted_rows, boundaries)
        )
    }


class GridIndex(SpatialIndex):
    """A uniform grid over the bounding rectangle of the indexed points.

    Parameters
    ----------
    points:
        The points to index — a :class:`PointStore` or an iterable of
        :class:`Point`.
    cells_per_side:
        Number of cells along each axis.  If omitted, a value is derived from
        the dataset size targeting roughly ``target_points_per_cell`` points
        per non-empty cell.
    bounds:
        Optional explicit spatial extent.  Supplying the same bounds for
        several datasets makes their grids share the same cell decomposition,
        which is what the paper assumes for the unchained-join Candidate/Safe
        block marking (see DESIGN.md note 2).
    target_points_per_cell:
        Sizing hint used only when ``cells_per_side`` is not given.
    keep_empty_cells:
        Whether to materialize empty cells as blocks (default ``True``).
    """

    def __init__(
        self,
        points: Iterable[Point] | PointStore,
        cells_per_side: int | None = None,
        bounds: Rect | None = None,
        target_points_per_cell: int = 64,
        keep_empty_cells: bool = True,
    ) -> None:
        super().__init__()
        store = self._as_store(points)
        n = len(store)
        if n == 0:
            raise EmptyDatasetError("GridIndex requires at least one point")
        if bounds is None:
            bounds = Rect(
                float(store.xs.min()),
                float(store.ys.min()),
                float(store.xs.max()),
                float(store.ys.max()),
            )
            # Grow degenerate bounds slightly so every point falls strictly inside.
            if bounds.width == 0 or bounds.height == 0:
                bounds = bounds.expand(max(1e-9, 0.5))
        if cells_per_side is None:
            if target_points_per_cell <= 0:
                raise InvalidParameterError("target_points_per_cell must be positive")
            cells_per_side = max(1, int(math.sqrt(n / target_points_per_cell)))
        if cells_per_side <= 0:
            raise InvalidParameterError("cells_per_side must be positive")

        self.cells_per_side = int(cells_per_side)
        self._cell_width = bounds.width / self.cells_per_side
        self._cell_height = bounds.height / self.cells_per_side
        self._grid_bounds = bounds

        # Vectorized cell assignment over the coordinate columns.
        ix, iy = self._cells_of(store.xs, store.ys, bounds)
        cell_ids = iy * self.cells_per_side + ix
        # Stable sort groups member rows per cell while preserving the input
        # (store) order inside each cell — identical to the per-point append
        # order of the object-path builder.
        order = np.argsort(cell_ids, kind="stable").astype(np.int32)
        sorted_cells = cell_ids[order]
        boundaries = np.nonzero(np.diff(sorted_cells))[0] + 1
        groups = np.split(order, boundaries)
        members_by_cell: dict[int, np.ndarray] = {
            int(sorted_cells[start]): group
            for start, group in zip(np.concatenate(([0], boundaries)), groups)
        }

        blocks: list[Block] = []
        self._cell_to_block: dict[tuple[int, int], Block] = {}
        block_id = 0
        for cy in range(self.cells_per_side):
            for cx in range(self.cells_per_side):
                cell_members = members_by_cell.get(cy * self.cells_per_side + cx)
                if cell_members is None and not keep_empty_cells:
                    continue
                rect = self._cell_rect(cx, cy, bounds)
                block = Block(
                    block_id, rect, tag=(cx, cy), store=store, members=cell_members
                )
                blocks.append(block)
                self._cell_to_block[(cx, cy)] = block
                block_id += 1
        self._finalize(blocks, bounds, store=store)

    # ------------------------------------------------------------------
    # Cell arithmetic
    # ------------------------------------------------------------------
    def _cells_of(
        self, xs: np.ndarray, ys: np.ndarray, bounds: Rect
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized ``(ix, iy)`` cell assignment, clamped to the grid."""
        last = self.cells_per_side - 1
        if self._cell_width > 0:
            ix = ((xs - bounds.xmin) / self._cell_width).astype(np.int64)
            np.clip(ix, 0, last, out=ix)
        else:
            ix = np.zeros(len(xs), dtype=np.int64)
        if self._cell_height > 0:
            iy = ((ys - bounds.ymin) / self._cell_height).astype(np.int64)
            np.clip(iy, 0, last, out=iy)
        else:
            iy = np.zeros(len(ys), dtype=np.int64)
        return ix, iy

    def _cell_of(self, p: Point, bounds: Rect) -> tuple[int, int]:
        """Return the (ix, iy) cell containing ``p``, clamped to the grid."""
        if self._cell_width > 0:
            ix = int((p.x - bounds.xmin) / self._cell_width)
        else:
            ix = 0
        if self._cell_height > 0:
            iy = int((p.y - bounds.ymin) / self._cell_height)
        else:
            iy = 0
        ix = min(max(ix, 0), self.cells_per_side - 1)
        iy = min(max(iy, 0), self.cells_per_side - 1)
        return ix, iy

    def _cell_rect(self, ix: int, iy: int, bounds: Rect) -> Rect:
        xmin = bounds.xmin + ix * self._cell_width
        ymin = bounds.ymin + iy * self._cell_height
        # Snap the last row/column to the exact bound to avoid FP gaps.
        xmax = bounds.xmax if ix == self.cells_per_side - 1 else xmin + self._cell_width
        ymax = bounds.ymax if iy == self.cells_per_side - 1 else ymin + self._cell_height
        return Rect(xmin, ymin, xmax, ymax)

    # ------------------------------------------------------------------
    # Incremental repair
    # ------------------------------------------------------------------
    def repaired(self, store: PointStore, change: StoreChange) -> "GridIndex | None":
        """Patch only the affected cells instead of rebuilding the grid.

        The grid's decomposition is a pure function of its bounds and
        resolution, so a mutation can never force a re-split: repairing means
        (a) dropping removed and moved-out rows from their old cells,
        (b) renumbering surviving member rows past removal compaction with
        one vectorized ``searchsorted`` per touched array, and (c) inserting
        moved-in and appended rows into their destination cells in ascending
        row order — which makes the repaired member arrays *identical* to a
        full rebuild over ``store`` with this grid's bounds and resolution.
        Unaffected cells keep their member arrays (no copy when nothing was
        removed).

        Declines (returns ``None``) when a new coordinate falls outside the
        grid extent — clamping it into an edge cell whose rectangle does not
        contain it would break the MINDIST lower bound — or when a
        destination cell was not materialized (``keep_empty_cells=False``).
        """
        old_store = self._store
        if old_store is None:
            return None
        bounds = self._grid_bounds
        removed = np.asarray(change.removed_rows, dtype=np.int64)
        moved_old = np.asarray(change.moved_rows, dtype=np.int64)
        n_new = len(store)
        appended = np.arange(n_new - change.appended, n_new, dtype=np.int64)
        moved_new = change.map_rows(moved_old)

        placed_rows = np.concatenate((moved_new, appended))
        if len(placed_rows):
            px = store.xs[placed_rows]
            py = store.ys[placed_rows]
            inside = (
                (px >= bounds.xmin)
                & (px <= bounds.xmax)
                & (py >= bounds.ymin)
                & (py <= bounds.ymax)
            )
            if not inside.all():
                return None

        def cells(source: PointStore, rows: np.ndarray) -> np.ndarray:
            ix, iy = self._cells_of(source.xs[rows], source.ys[rows], bounds)
            return iy * self.cells_per_side + ix

        moved_from = cells(old_store, moved_old)
        moved_to = cells(store, moved_new)
        crossed = moved_from != moved_to
        drop_cells = np.concatenate((cells(old_store, removed), moved_from[crossed]))
        drop_rows = np.concatenate((removed, moved_old[crossed]))
        add_cells = np.concatenate((moved_to[crossed], cells(store, appended)))
        add_rows = np.concatenate((moved_new[crossed], appended))

        add_by_cell = _group_by_cell(add_cells, add_rows)
        for cell in add_by_cell:
            cx, cy = cell % self.cells_per_side, cell // self.cells_per_side
            if (cx, cy) not in self._cell_to_block:
                return None  # destination cell not materialized

        # One boolean drop bitmap over old rows plus (when rows were removed)
        # one O(n) old→new renumber table — each block then repairs with
        # plain gathers, no per-block sorting or set logic.
        drop_flags = np.zeros(len(old_store), dtype=bool)
        drop_flags[drop_rows] = True
        dropped_cells = set(np.unique(drop_cells).tolist())
        has_removals = len(removed) > 0
        if has_removals:
            removed_flags = np.zeros(len(old_store), dtype=np.int64)
            removed_flags[removed] = 1
            new_of_old = np.arange(len(old_store), dtype=np.int64) - np.cumsum(
                removed_flags
            )
        cps = self.cells_per_side
        blocks: list[Block] = []
        cell_to_block: dict[tuple[int, int], Block] = {}
        counts = np.empty(len(self._blocks), dtype=np.int64)
        for i, block in enumerate(self._blocks):
            tag = block.tag
            cell = tag[1] * cps + tag[0]
            members = block._members
            if cell in dropped_cells:
                members = members[~drop_flags[members]]
            if has_removals and len(members):
                members = new_of_old[members].astype(np.int32)
            adds = add_by_cell.get(cell)
            if adds is not None:
                members = np.sort(np.concatenate((members, adds.astype(np.int32))))
            # Direct slot assembly: the loop runs once per cell per mutation,
            # so even Block.__init__'s normalization is measurable overhead.
            repaired_block = Block.__new__(Block)
            repaired_block.block_id = block.block_id
            repaired_block.rect = block.rect
            repaired_block.store = store
            repaired_block._members = members
            repaired_block._points = None
            repaired_block._coords = None
            repaired_block.tag = tag
            counts[i] = len(members)
            blocks.append(repaired_block)
            cell_to_block[tag] = repaired_block

        repaired = GridIndex.__new__(GridIndex)
        SpatialIndex.__init__(repaired)
        repaired.cells_per_side = cps
        repaired._cell_width = self._cell_width
        repaired._cell_height = self._cell_height
        repaired._grid_bounds = bounds
        repaired._cell_to_block = cell_to_block
        # Cell rectangles are untouched by any mutation: share the bound
        # table with the parent index instead of re-deriving it.
        repaired._blocks = tuple(blocks)
        repaired._bounds = bounds
        repaired._store = store
        repaired._block_bounds = self._block_bounds
        repaired._block_counts = counts
        repaired._num_points = len(store)
        return repaired

    # ------------------------------------------------------------------
    # SpatialIndex interface
    # ------------------------------------------------------------------
    def locate(self, p: Point) -> Block | None:
        """Return the grid cell containing ``p`` (``None`` if outside the grid)."""
        if not self._grid_bounds.contains_point(p):
            return None
        return self._cell_to_block.get(self._cell_of(p, self._grid_bounds))

    def cell_block(self, ix: int, iy: int) -> Block | None:
        """Return the block for cell ``(ix, iy)`` if it exists."""
        return self._cell_to_block.get((ix, iy))

    @property
    def cell_size(self) -> tuple[float, float]:
        """The ``(width, height)`` of each grid cell."""
        return (self._cell_width, self._cell_height)
