"""Uniform grid index.

This is the index used in the paper's evaluation (Section 6): "We index the
data points into a simple grid.  Since our algorithms are independent of a
specific indexing structure, we choose a grid in order to be able to see the
effectiveness of our algorithms even with simple structures."

The grid partitions the dataset bounds into ``cells_per_side x cells_per_side``
equal cells.  Every cell is a block, including empty cells (empty blocks are
kept so that MINDIST/MAXDIST contours are complete; they carry a zero count
and are skipped quickly by every algorithm).
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import EmptyDatasetError, InvalidParameterError
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.index.base import SpatialIndex
from repro.index.block import Block

__all__ = ["GridIndex"]


class GridIndex(SpatialIndex):
    """A uniform grid over the bounding rectangle of the indexed points.

    Parameters
    ----------
    points:
        The points to index.
    cells_per_side:
        Number of cells along each axis.  If omitted, a value is derived from
        the dataset size targeting roughly ``target_points_per_cell`` points
        per non-empty cell.
    bounds:
        Optional explicit spatial extent.  Supplying the same bounds for
        several datasets makes their grids share the same cell decomposition,
        which is what the paper assumes for the unchained-join Candidate/Safe
        block marking (see DESIGN.md note 2).
    target_points_per_cell:
        Sizing hint used only when ``cells_per_side`` is not given.
    keep_empty_cells:
        Whether to materialize empty cells as blocks (default ``True``).
    """

    def __init__(
        self,
        points: Iterable[Point],
        cells_per_side: int | None = None,
        bounds: Rect | None = None,
        target_points_per_cell: int = 64,
        keep_empty_cells: bool = True,
    ) -> None:
        super().__init__()
        pts = list(points)
        if not pts:
            raise EmptyDatasetError("GridIndex requires at least one point")
        if bounds is None:
            bounds = Rect.from_points(pts)
            # Grow degenerate bounds slightly so every point falls strictly inside.
            if bounds.width == 0 or bounds.height == 0:
                bounds = bounds.expand(max(1e-9, 0.5))
        if cells_per_side is None:
            if target_points_per_cell <= 0:
                raise InvalidParameterError("target_points_per_cell must be positive")
            cells_per_side = max(1, int(math.sqrt(len(pts) / target_points_per_cell)))
        if cells_per_side <= 0:
            raise InvalidParameterError("cells_per_side must be positive")

        self.cells_per_side = int(cells_per_side)
        self._cell_width = bounds.width / self.cells_per_side
        self._cell_height = bounds.height / self.cells_per_side
        self._grid_bounds = bounds

        buckets: dict[tuple[int, int], list[Point]] = {}
        for p in pts:
            buckets.setdefault(self._cell_of(p, bounds), []).append(p)

        blocks: list[Block] = []
        self._cell_to_block: dict[tuple[int, int], Block] = {}
        block_id = 0
        for iy in range(self.cells_per_side):
            for ix in range(self.cells_per_side):
                cell_points = buckets.get((ix, iy))
                if not cell_points and not keep_empty_cells:
                    continue
                rect = self._cell_rect(ix, iy, bounds)
                block = Block(block_id, rect, cell_points or (), tag=(ix, iy))
                blocks.append(block)
                self._cell_to_block[(ix, iy)] = block
                block_id += 1
        self._finalize(blocks, bounds)

    # ------------------------------------------------------------------
    # Cell arithmetic
    # ------------------------------------------------------------------
    def _cell_of(self, p: Point, bounds: Rect) -> tuple[int, int]:
        """Return the (ix, iy) cell containing ``p``, clamped to the grid."""
        if self._cell_width > 0:
            ix = int((p.x - bounds.xmin) / self._cell_width)
        else:
            ix = 0
        if self._cell_height > 0:
            iy = int((p.y - bounds.ymin) / self._cell_height)
        else:
            iy = 0
        ix = min(max(ix, 0), self.cells_per_side - 1)
        iy = min(max(iy, 0), self.cells_per_side - 1)
        return ix, iy

    def _cell_rect(self, ix: int, iy: int, bounds: Rect) -> Rect:
        xmin = bounds.xmin + ix * self._cell_width
        ymin = bounds.ymin + iy * self._cell_height
        # Snap the last row/column to the exact bound to avoid FP gaps.
        xmax = bounds.xmax if ix == self.cells_per_side - 1 else xmin + self._cell_width
        ymax = bounds.ymax if iy == self.cells_per_side - 1 else ymin + self._cell_height
        return Rect(xmin, ymin, xmax, ymax)

    # ------------------------------------------------------------------
    # SpatialIndex interface
    # ------------------------------------------------------------------
    def locate(self, p: Point) -> Block | None:
        """Return the grid cell containing ``p`` (``None`` if outside the grid)."""
        if not self._grid_bounds.contains_point(p):
            return None
        return self._cell_to_block.get(self._cell_of(p, self._grid_bounds))

    def cell_block(self, ix: int, iy: int) -> Block | None:
        """Return the block for cell ``(ix, iy)`` if it exists."""
        return self._cell_to_block.get((ix, iy))

    @property
    def cell_size(self) -> tuple[float, float]:
        """The ``(width, height)`` of each grid cell."""
        return (self._cell_width, self._cell_height)
