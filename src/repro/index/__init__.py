"""Spatial indexes exposing the block interface required by the paper.

Every algorithm in the paper is index-agnostic (Section 2): it only needs a
space-partitioning index that

* partitions the plane into *blocks*,
* stores the number of points inside each block, and
* can enumerate blocks in MINDIST or MAXDIST order from a query point.

Three concrete indexes are provided:

* :class:`~repro.index.grid.GridIndex` — the uniform grid used in the paper's
  evaluation (Section 6).
* :class:`~repro.index.quadtree.QuadtreeIndex` — a PR-quadtree whose leaves
  are the blocks.
* :class:`~repro.index.rtree.RTreeIndex` — an STR bulk-loaded R-tree whose
  leaf MBRs are the blocks.
"""

from repro.index.block import Block
from repro.index.base import SpatialIndex
from repro.index.grid import GridIndex
from repro.index.quadtree import QuadtreeIndex
from repro.index.rtree import RTreeIndex
from repro.index.orderings import (
    BlockDistance,
    mindist_ordering,
    maxdist_ordering,
)
from repro.index.stats import IndexStats

__all__ = [
    "Block",
    "SpatialIndex",
    "GridIndex",
    "QuadtreeIndex",
    "RTreeIndex",
    "BlockDistance",
    "mindist_ordering",
    "maxdist_ordering",
    "IndexStats",
]
