"""MINDIST and MAXDIST orderings of index blocks.

Section 2 of the paper: "we process the blocks in a certain order according to
their MINDIST (or MAXDIST) from a certain point.  An ordering of the blocks
based on the MINDIST or MAXDIST from a certain point is termed a MINDIST or
MAXDIST ordering."

The orderings here are lazy iterators so that algorithms that stop early (all
of them do) never pay for sorting the tail.  For small block counts a full
vectorized sort would also work; the heap keeps the asymptotics friendly when
indexes have many blocks.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.geometry.point import Point
from repro.index.block import Block

__all__ = [
    "BlockDistance",
    "mindist_ordering",
    "maxdist_ordering",
    "ordering_from_distances",
]


@dataclass(frozen=True, slots=True)
class BlockDistance:
    """A block paired with its distance from the ordering's query point."""

    distance: float
    block: Block


def _heap_ordering(
    blocks: Sequence[Block],
    distances: np.ndarray,
) -> Iterator[BlockDistance]:
    """Yield blocks in increasing order of ``distances`` lazily.

    Ties are broken by ``block_id`` so orderings are deterministic.
    """
    heap: list[tuple[float, int, int]] = [
        (float(distances[i]), blocks[i].block_id, i) for i in range(len(blocks))
    ]
    heapq.heapify(heap)
    while heap:
        dist, _, i = heapq.heappop(heap)
        yield BlockDistance(dist, blocks[i])


def mindist_ordering(
    blocks: Sequence[Block],
    p: Point,
    distances: np.ndarray | None = None,
) -> Iterator[BlockDistance]:
    """Yield ``blocks`` in increasing MINDIST order from ``p``.

    ``distances`` may supply precomputed MINDIST values (one per block) to
    avoid recomputation; indexes pass their vectorized values here.
    """
    if distances is None:
        distances = np.array([b.mindist(p) for b in blocks], dtype=np.float64)
    return _heap_ordering(blocks, distances)


def maxdist_ordering(
    blocks: Sequence[Block],
    p: Point,
    distances: np.ndarray | None = None,
) -> Iterator[BlockDistance]:
    """Yield ``blocks`` in increasing MAXDIST order from ``p``."""
    if distances is None:
        distances = np.array([b.maxdist(p) for b in blocks], dtype=np.float64)
    return _heap_ordering(blocks, distances)


def ordering_from_distances(
    blocks: Sequence[Block],
    distances: Iterable[float],
) -> Iterator[BlockDistance]:
    """Order ``blocks`` by arbitrary caller-supplied distances."""
    arr = np.fromiter(distances, dtype=np.float64, count=len(blocks))
    return _heap_ordering(blocks, arr)
