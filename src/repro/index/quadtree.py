"""PR-quadtree index.

The quadtree recursively splits a square region into four quadrants until the
number of points in a node drops below a capacity threshold (Section 2 of the
paper describes exactly this family of structures).  The *leaves* of the tree
are the blocks exposed to the algorithms; internal nodes exist only during
construction and for point location.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.exceptions import EmptyDatasetError, InvalidParameterError
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.index.base import SpatialIndex
from repro.index.block import Block

__all__ = ["QuadtreeIndex"]


@dataclass
class _Node:
    """A quadtree node; either a leaf holding points or four children."""

    rect: Rect
    depth: int
    points: list[Point] = field(default_factory=list)
    children: "list[_Node] | None" = None
    block: Block | None = None

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class QuadtreeIndex(SpatialIndex):
    """A point-region quadtree whose leaves are the index blocks.

    Parameters
    ----------
    points:
        Points to index.
    capacity:
        Maximum number of points in a leaf before it splits.
    max_depth:
        Hard recursion limit; leaves at this depth keep all their points even
        if they exceed ``capacity`` (protects against many coincident points).
    bounds:
        Optional explicit extent (made square internally).
    """

    def __init__(
        self,
        points: Iterable[Point],
        capacity: int = 128,
        max_depth: int = 16,
        bounds: Rect | None = None,
    ) -> None:
        super().__init__()
        pts = list(points)
        if not pts:
            raise EmptyDatasetError("QuadtreeIndex requires at least one point")
        if capacity <= 0:
            raise InvalidParameterError("capacity must be positive")
        if max_depth <= 0:
            raise InvalidParameterError("max_depth must be positive")
        self.capacity = int(capacity)
        self.max_depth = int(max_depth)

        if bounds is None:
            bounds = Rect.from_points(pts)
        # Make the root square (classic PR-quadtree) and non-degenerate.
        side = max(bounds.width, bounds.height)
        if side == 0:
            side = 1.0
        bounds = Rect(bounds.xmin, bounds.ymin, bounds.xmin + side, bounds.ymin + side)

        self._root = _Node(rect=bounds, depth=0, points=list(pts))
        self._split(self._root)

        blocks: list[Block] = []
        self._collect_leaves(self._root, blocks)
        self._finalize(blocks, bounds)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _split(self, node: _Node) -> None:
        """Recursively split ``node`` until every leaf satisfies the capacity."""
        if len(node.points) <= self.capacity or node.depth >= self.max_depth:
            return
        quadrants = node.rect.quadrants()
        children = [_Node(rect=q, depth=node.depth + 1) for q in quadrants]
        for p in node.points:
            children[self._quadrant_of(node.rect, p)].points.append(p)
        node.points = []
        node.children = children
        for child in children:
            self._split(child)

    @staticmethod
    def _quadrant_of(rect: Rect, p: Point) -> int:
        """Index (SW=0, SE=1, NW=2, NE=3) of the quadrant of ``rect`` holding ``p``."""
        cx = (rect.xmin + rect.xmax) / 2.0
        cy = (rect.ymin + rect.ymax) / 2.0
        east = p.x >= cx
        north = p.y >= cy
        return (2 if north else 0) + (1 if east else 0)

    def _collect_leaves(self, node: _Node, out: list[Block]) -> None:
        if node.is_leaf:
            block = Block(len(out), node.rect, node.points, tag=("leaf", node.depth))
            node.block = block
            out.append(block)
            return
        assert node.children is not None
        for child in node.children:
            self._collect_leaves(child, out)

    # ------------------------------------------------------------------
    # SpatialIndex interface
    # ------------------------------------------------------------------
    def locate(self, p: Point) -> Block | None:
        """Return the leaf block whose region contains ``p``."""
        if not self._root.rect.contains_point(p):
            return None
        node = self._root
        while not node.is_leaf:
            assert node.children is not None
            node = node.children[self._quadrant_of(node.rect, p)]
        return node.block

    # ------------------------------------------------------------------
    # Introspection helpers (used in tests and ablations)
    # ------------------------------------------------------------------
    def depth(self) -> int:
        """Maximum leaf depth of the tree."""
        best = 0

        def visit(node: _Node) -> None:
            nonlocal best
            if node.is_leaf:
                best = max(best, node.depth)
            else:
                assert node.children is not None
                for child in node.children:
                    visit(child)

        visit(self._root)
        return best
