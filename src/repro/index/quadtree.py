"""PR-quadtree index.

The quadtree recursively splits a square region into four quadrants until the
number of points in a node drops below a capacity threshold (Section 2 of the
paper describes exactly this family of structures).  The *leaves* of the tree
are the blocks exposed to the algorithms; internal nodes exist only during
construction and for point location.

Construction is columnar: nodes carry ``int32`` row-index arrays into the
dataset's :class:`~repro.storage.pointstore.PointStore` and each split is a
pair of vectorized comparisons over gathered coordinate columns, so building
never iterates Python point objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.exceptions import EmptyDatasetError, InvalidParameterError
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.index.base import SpatialIndex
from repro.index.block import Block
from repro.storage.pointstore import PointStore

__all__ = ["QuadtreeIndex"]


@dataclass
class _Node:
    """A quadtree node; either a leaf holding member rows or four children."""

    rect: Rect
    depth: int
    members: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int32))
    children: "list[_Node] | None" = None
    block: Block | None = None

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class QuadtreeIndex(SpatialIndex):
    """A point-region quadtree whose leaves are the index blocks.

    Parameters
    ----------
    points:
        Points to index — a :class:`PointStore` or an iterable of
        :class:`Point`.
    capacity:
        Maximum number of points in a leaf before it splits.
    max_depth:
        Hard recursion limit; leaves at this depth keep all their points even
        if they exceed ``capacity`` (protects against many coincident points).
    bounds:
        Optional explicit extent (made square internally).
    """

    def __init__(
        self,
        points: Iterable[Point] | PointStore,
        capacity: int = 128,
        max_depth: int = 16,
        bounds: Rect | None = None,
    ) -> None:
        super().__init__()
        store = self._as_store(points)
        if len(store) == 0:
            raise EmptyDatasetError("QuadtreeIndex requires at least one point")
        if capacity <= 0:
            raise InvalidParameterError("capacity must be positive")
        if max_depth <= 0:
            raise InvalidParameterError("max_depth must be positive")
        self.capacity = int(capacity)
        self.max_depth = int(max_depth)
        self._qt_store = store

        if bounds is None:
            bounds = Rect(
                float(store.xs.min()),
                float(store.ys.min()),
                float(store.xs.max()),
                float(store.ys.max()),
            )
        # Make the root square (classic PR-quadtree) and non-degenerate.
        side = max(bounds.width, bounds.height)
        if side == 0:
            side = 1.0
        bounds = Rect(bounds.xmin, bounds.ymin, bounds.xmin + side, bounds.ymin + side)

        self._root = _Node(
            rect=bounds, depth=0, members=np.arange(len(store), dtype=np.int32)
        )
        self._split(self._root)

        blocks: list[Block] = []
        self._collect_leaves(self._root, blocks)
        self._finalize(blocks, bounds, store=store)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _split(self, node: _Node) -> None:
        """Recursively split ``node`` until every leaf satisfies the capacity."""
        if len(node.members) <= self.capacity or node.depth >= self.max_depth:
            return
        rect = node.rect
        cx = (rect.xmin + rect.xmax) / 2.0
        cy = (rect.ymin + rect.ymax) / 2.0
        xs = self._qt_store.xs[node.members]
        ys = self._qt_store.ys[node.members]
        east = xs >= cx
        north = ys >= cy
        quadrants = rect.quadrants()
        children = [_Node(rect=q, depth=node.depth + 1) for q in quadrants]
        # Quadrant index (SW=0, SE=1, NW=2, NE=3), as in _quadrant_of.
        children[0].members = node.members[~north & ~east]
        children[1].members = node.members[~north & east]
        children[2].members = node.members[north & ~east]
        children[3].members = node.members[north & east]
        node.members = np.empty(0, dtype=np.int32)
        node.children = children
        for child in children:
            self._split(child)

    @staticmethod
    def _quadrant_of(rect: Rect, p: Point) -> int:
        """Index (SW=0, SE=1, NW=2, NE=3) of the quadrant of ``rect`` holding ``p``."""
        cx = (rect.xmin + rect.xmax) / 2.0
        cy = (rect.ymin + rect.ymax) / 2.0
        east = p.x >= cx
        north = p.y >= cy
        return (2 if north else 0) + (1 if east else 0)

    def _collect_leaves(self, node: _Node, out: list[Block]) -> None:
        if node.is_leaf:
            block = Block(
                len(out),
                node.rect,
                tag=("leaf", node.depth),
                store=self._qt_store,
                members=node.members,
            )
            node.block = block
            out.append(block)
            return
        assert node.children is not None
        for child in node.children:
            self._collect_leaves(child, out)

    # ------------------------------------------------------------------
    # SpatialIndex interface
    # ------------------------------------------------------------------
    def locate(self, p: Point) -> Block | None:
        """Return the leaf block whose region contains ``p``."""
        if not self._root.rect.contains_point(p):
            return None
        node = self._root
        while not node.is_leaf:
            assert node.children is not None
            node = node.children[self._quadrant_of(node.rect, p)]
        return node.block

    # ------------------------------------------------------------------
    # Introspection helpers (used in tests and ablations)
    # ------------------------------------------------------------------
    def depth(self) -> int:
        """Maximum leaf depth of the tree."""
        best = 0

        def visit(node: _Node) -> None:
            nonlocal best
            if node.is_leaf:
                best = max(best, node.depth)
            else:
                assert node.children is not None
                for child in node.children:
                    visit(child)

        visit(self._root)
        return best
