"""STR bulk-loaded R-tree index.

The R-tree is built with the Sort-Tile-Recursive (STR) packing algorithm: the
points are sorted into vertical slices by x, each slice is sorted by y and cut
into leaf pages of at most ``leaf_capacity`` points.  The leaf pages (their
minimum bounding rectangles) are the blocks exposed to the paper's algorithms;
upper levels of the tree are kept for point location.

Packing is columnar: both STR sorts are ``np.lexsort`` calls over the store's
coordinate/pid columns (ties broken by pid, as in the object-path builder),
and each leaf page is an ``int32`` member-row slice of the sorted order.

Unlike the grid and the quadtree, R-tree leaf MBRs do not tile the plane:
``locate`` returns ``None`` for points that fall outside every leaf MBR.  The
paper's algorithms only call ``locate`` for points that are known to be
indexed, so this difference is benign and is covered by tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.exceptions import EmptyDatasetError, InvalidParameterError
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.index.base import SpatialIndex
from repro.index.block import Block
from repro.storage.pointstore import PointStore

__all__ = ["RTreeIndex"]


@dataclass
class _RNode:
    """An internal R-tree node: an MBR plus child nodes or a leaf block."""

    rect: Rect
    children: "list[_RNode]" = field(default_factory=list)
    block: Block | None = None

    @property
    def is_leaf(self) -> bool:
        return self.block is not None


class RTreeIndex(SpatialIndex):
    """An R-tree bulk loaded with Sort-Tile-Recursive packing.

    Parameters
    ----------
    points:
        Points to index — a :class:`PointStore` or an iterable of
        :class:`Point`.
    leaf_capacity:
        Maximum number of points per leaf page.
    fanout:
        Maximum number of children of an internal node.
    """

    def __init__(
        self,
        points: Iterable[Point] | PointStore,
        leaf_capacity: int = 128,
        fanout: int = 16,
    ) -> None:
        super().__init__()
        store = self._as_store(points)
        if len(store) == 0:
            raise EmptyDatasetError("RTreeIndex requires at least one point")
        if leaf_capacity <= 0:
            raise InvalidParameterError("leaf_capacity must be positive")
        if fanout < 2:
            raise InvalidParameterError("fanout must be at least 2")
        self.leaf_capacity = int(leaf_capacity)
        self.fanout = int(fanout)

        blocks = self._pack_leaves(store)
        self._root = self._build_upper_levels([_RNode(rect=b.rect, block=b) for b in blocks])
        bounds = Rect(
            float(store.xs.min()),
            float(store.ys.min()),
            float(store.xs.max()),
            float(store.ys.max()),
        )
        self._finalize(blocks, bounds, store=store)

    # ------------------------------------------------------------------
    # STR packing
    # ------------------------------------------------------------------
    def _pack_leaves(self, store: PointStore) -> list[Block]:
        """Pack the store's rows into leaf blocks using Sort-Tile-Recursive."""
        n = len(store)
        leaf_count = math.ceil(n / self.leaf_capacity)
        slices = max(1, math.ceil(math.sqrt(leaf_count)))
        per_slice = math.ceil(n / slices)

        xs, ys, pids = store.xs, store.ys, store.pids
        by_x = np.lexsort((pids, ys, xs))  # order by (x, y, pid)
        blocks: list[Block] = []
        for s in range(slices):
            chunk = by_x[s * per_slice : (s + 1) * per_slice]
            if not len(chunk):
                continue
            chunk = chunk[np.lexsort((pids[chunk], xs[chunk], ys[chunk]))]  # (y, x, pid)
            for i in range(0, len(chunk), self.leaf_capacity):
                page = chunk[i : i + self.leaf_capacity]
                page_xs, page_ys = xs[page], ys[page]
                rect = Rect(
                    float(page_xs.min()),
                    float(page_ys.min()),
                    float(page_xs.max()),
                    float(page_ys.max()),
                )
                blocks.append(
                    Block(len(blocks), rect, tag=("leaf", s), store=store, members=page)
                )
        return blocks

    def _build_upper_levels(self, nodes: list[_RNode]) -> _RNode:
        """Group ``nodes`` bottom-up into internal nodes until one root remains."""
        while len(nodes) > 1:
            nodes.sort(key=lambda nd: (nd.rect.center.x, nd.rect.center.y))
            parents: list[_RNode] = []
            for i in range(0, len(nodes), self.fanout):
                group = nodes[i : i + self.fanout]
                rect = group[0].rect
                for child in group[1:]:
                    rect = rect.union(child.rect)
                parents.append(_RNode(rect=rect, children=group))
            nodes = parents
        return nodes[0]

    # ------------------------------------------------------------------
    # SpatialIndex interface
    # ------------------------------------------------------------------
    def locate(self, p: Point) -> Block | None:
        """Return a leaf block whose MBR contains ``p`` (``None`` otherwise).

        If several leaf MBRs overlap at ``p``, the one containing a point
        nearest to ``p`` is returned, which is the block an insertion-based
        R-tree would most plausibly have routed the point to.
        """
        candidates: list[Block] = []

        def visit(node: _RNode) -> None:
            if not node.rect.contains_point(p):
                return
            if node.is_leaf:
                assert node.block is not None
                candidates.append(node.block)
                return
            for child in node.children:
                visit(child)

        visit(self._root)
        if not candidates:
            return None
        if len(candidates) == 1:
            return candidates[0]

        def nearest_point_distance(block: Block) -> float:
            if block.is_empty:
                return math.inf
            diff = block.coords - np.array([p.x, p.y])
            return float(np.hypot(diff[:, 0], diff[:, 1]).min())

        return min(candidates, key=nearest_point_distance)
