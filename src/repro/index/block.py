"""The block abstraction shared by every spatial index.

A block is a rectangular region of space together with the points it contains.
The paper's algorithms rely on three pieces of per-block information:

* the number of points in the block (Section 2: "the index maintains the count
  of points in each block"),
* the block's center and diagonal (Block-Marking search thresholds), and
* MINDIST/MAXDIST from a query point to the block.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

import numpy as np

from repro.geometry.distance import maxdist_point_rect, mindist_point_rect
from repro.geometry.point import Point, PointArray
from repro.geometry.rectangle import Rect

__all__ = ["Block"]


class Block:
    """A rectangular index block holding a set of points.

    Blocks are created by the index builders and are treated as immutable by
    the query algorithms.  ``block_id`` is unique within one index and is used
    for hashing and for per-query marks kept in external dictionaries (the
    algorithms never mutate blocks).
    """

    __slots__ = ("block_id", "rect", "_points", "_coords", "tag")

    def __init__(
        self,
        block_id: int,
        rect: Rect,
        points: Sequence[Point] | None = None,
        tag: Any = None,
    ) -> None:
        self.block_id = int(block_id)
        self.rect = rect
        self._points: tuple[Point, ...] = tuple(points) if points else ()
        self._coords: PointArray | None = None
        #: Free-form tag used by index builders (e.g. grid cell coordinates).
        self.tag = tag

    # ------------------------------------------------------------------
    # Contents
    # ------------------------------------------------------------------
    @property
    def points(self) -> tuple[Point, ...]:
        """The points stored in this block."""
        return self._points

    @property
    def count(self) -> int:
        """Number of points in the block (the paper's ``numberOfPoints``)."""
        return len(self._points)

    @property
    def is_empty(self) -> bool:
        return not self._points

    @property
    def coords(self) -> PointArray:
        """Lazily built ``(count, 2)`` coordinate array for vectorized math."""
        if self._coords is None:
            if self._points:
                self._coords = np.array([(p.x, p.y) for p in self._points], dtype=np.float64)
            else:
                self._coords = np.empty((0, 2), dtype=np.float64)
        return self._coords

    def __iter__(self) -> Iterator[Point]:
        return iter(self._points)

    def __len__(self) -> int:
        return len(self._points)

    # ------------------------------------------------------------------
    # Geometry shortcuts used by the algorithms
    # ------------------------------------------------------------------
    @property
    def center(self) -> Point:
        """Center of the block (used by Block-Marking preprocessing)."""
        return self.rect.center

    @property
    def diagonal(self) -> float:
        """Length of the block diagonal (the paper's ``d``)."""
        return self.rect.diagonal

    def mindist(self, p: Point) -> float:
        """MINDIST between ``p`` and this block."""
        return mindist_point_rect(p, self.rect)

    def maxdist(self, p: Point) -> float:
        """MAXDIST between ``p`` and this block."""
        return maxdist_point_rect(p, self.rect)

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def __hash__(self) -> int:
        return hash((id(self.__class__), self.block_id))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Block):
            return NotImplemented
        return self is other or (self.block_id == other.block_id and self.rect == other.rect)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        r = self.rect
        return (
            f"Block(id={self.block_id}, n={self.count}, "
            f"rect=({r.xmin:.4g}, {r.ymin:.4g}, {r.xmax:.4g}, {r.ymax:.4g}))"
        )
