"""The block abstraction shared by every spatial index.

A block is a rectangular region of space together with the points it contains.
The paper's algorithms rely on three pieces of per-block information:

* the number of points in the block (Section 2: "the index maintains the count
  of points in each block"),
* the block's center and diagonal (Block-Marking search thresholds), and
* MINDIST/MAXDIST from a query point to the block.

Since the columnar refactor a block does not own point objects: it holds an
``int32`` array of **member row indices** into its dataset's
:class:`~repro.storage.pointstore.PointStore`.  Coordinates and pids are
zero-copy-style gathers from the store's columns; :class:`Point` objects are
materialized lazily (and cached) only when a caller actually iterates the
block's points — pruned blocks never materialize anything.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

import numpy as np

from repro.geometry.distance import maxdist_point_rect, mindist_point_rect
from repro.geometry.point import Point, PointArray
from repro.geometry.rectangle import Rect
from repro.storage.pointstore import PointStore

__all__ = ["Block"]

_EMPTY_MEMBERS = np.empty(0, dtype=np.int32)


class Block:
    """A rectangular index block holding a set of points.

    Blocks are created by the index builders and are treated as immutable by
    the query algorithms.  ``block_id`` is unique within one index and is used
    for hashing and for per-query marks kept in external dictionaries (the
    algorithms never mutate blocks).

    Two construction forms exist: the columnar form used by the index
    builders (``store=`` + ``members=``, a row-index array into the store)
    and the convenience form taking a sequence of :class:`Point` objects
    (tests, ad-hoc blocks), which shreds them into a private store.
    """

    __slots__ = ("block_id", "rect", "store", "_members", "_points", "_coords", "tag")

    def __init__(
        self,
        block_id: int,
        rect: Rect,
        points: Sequence[Point] | None = None,
        tag: Any = None,
        *,
        store: PointStore | None = None,
        members: np.ndarray | None = None,
    ) -> None:
        self.block_id = int(block_id)
        self.rect = rect
        if store is not None:
            #: The columnar store the member rows index into.
            self.store: PointStore = store
            self._members = (
                np.ascontiguousarray(members, dtype=np.int32)
                if members is not None and len(members)
                else _EMPTY_MEMBERS
            )
            self._points: tuple[Point, ...] | None = None
        else:
            pts = tuple(points) if points else ()
            self.store = PointStore.from_points(pts)
            self._members = (
                np.arange(len(pts), dtype=np.int32) if pts else _EMPTY_MEMBERS
            )
            self._points = pts
        self._coords: PointArray | None = None
        #: Free-form tag used by index builders (e.g. grid cell coordinates).
        self.tag = tag

    # ------------------------------------------------------------------
    # Contents
    # ------------------------------------------------------------------
    @property
    def member_ids(self) -> np.ndarray:
        """Row indices of this block's points in :attr:`store` (``int32``)."""
        return self._members

    @property
    def points(self) -> tuple[Point, ...]:
        """The points stored in this block (materialized lazily, cached)."""
        if self._points is None:
            self._points = tuple(self.store.materialize(self._members))
        return self._points

    @property
    def count(self) -> int:
        """Number of points in the block (the paper's ``numberOfPoints``)."""
        return len(self._members)

    @property
    def is_empty(self) -> bool:
        return len(self._members) == 0

    @property
    def coords(self) -> PointArray:
        """``(count, 2)`` coordinate array gathered from the store (cached)."""
        if self._coords is None:
            self._coords = self.store.coords(self._members)
        return self._coords

    @property
    def pids(self) -> np.ndarray:
        """The members' pids gathered from the store (``int64``)."""
        return self.store.pids[self._members]

    def __iter__(self) -> Iterator[Point]:
        return iter(self.points)

    def __len__(self) -> int:
        return len(self._members)

    # ------------------------------------------------------------------
    # Geometry shortcuts used by the algorithms
    # ------------------------------------------------------------------
    @property
    def center(self) -> Point:
        """Center of the block (used by Block-Marking preprocessing)."""
        return self.rect.center

    @property
    def diagonal(self) -> float:
        """Length of the block diagonal (the paper's ``d``)."""
        return self.rect.diagonal

    def mindist(self, p: Point) -> float:
        """MINDIST between ``p`` and this block."""
        return mindist_point_rect(p, self.rect)

    def maxdist(self, p: Point) -> float:
        """MAXDIST between ``p`` and this block."""
        return maxdist_point_rect(p, self.rect)

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def __hash__(self) -> int:
        return hash((id(self.__class__), self.block_id))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Block):
            return NotImplemented
        return self is other or (self.block_id == other.block_id and self.rect == other.rect)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        r = self.rect
        return (
            f"Block(id={self.block_id}, n={self.count}, "
            f"rect=({r.xmin:.4g}, {r.ymin:.4g}, {r.xmax:.4g}, {r.ymax:.4g}))"
        )
