"""Simple statistics describing an index and its data distribution.

The planner's heuristics (Counting vs Block-Marking, unchained join order,
two-select ordering) use cheap summary statistics rather than the data itself,
mirroring how the paper reasons about density and cluster coverage in
Sections 3.3 and 4.1.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.index.base import SpatialIndex

__all__ = ["IndexStats"]


@dataclass(frozen=True, slots=True)
class IndexStats:
    """Summary statistics over the blocks of one index."""

    num_points: int
    num_blocks: int
    num_nonempty_blocks: int
    mean_points_per_nonempty_block: float
    max_points_per_block: int
    occupied_area_fraction: float
    total_area: float

    @classmethod
    def from_index(cls, index: SpatialIndex) -> "IndexStats":
        """Compute statistics for ``index`` (one pass over the block tables)."""
        counts = index.block_counts
        nonempty = counts[counts > 0]
        total_area = index.bounds.area
        if total_area <= 0:
            total_area = 1.0
        bounds = index.block_bounds
        if len(bounds):
            occupied = counts > 0
            occupied_area = float(
                (
                    (bounds[occupied, 2] - bounds[occupied, 0])
                    * (bounds[occupied, 3] - bounds[occupied, 1])
                ).sum()
            )
        else:
            occupied_area = 0.0
        return cls(
            num_points=index.num_points,
            num_blocks=index.num_blocks,
            num_nonempty_blocks=int(nonempty.size),
            mean_points_per_nonempty_block=float(nonempty.mean()) if nonempty.size else 0.0,
            max_points_per_block=int(counts.max()) if counts.size else 0,
            occupied_area_fraction=min(1.0, occupied_area / total_area),
            total_area=float(total_area),
        )

    @classmethod
    def aggregate(
        cls, parts: Sequence["IndexStats"], total_area: float | None = None
    ) -> "IndexStats":
        """Merge per-shard statistics into statistics for the whole relation.

        A sharded dataset never builds one big index, so the engine derives
        the relation-level statistics the planner needs by aggregating the
        per-shard ones: counts and block totals add up, the per-block mean is
        re-derived from the totals (every indexed point lives in a non-empty
        block), and the occupied area is the sum of the shards' occupied
        areas.  ``total_area`` should be the area of the full relation extent;
        when omitted, the sum of the shard extents is used, which is exact for
        tiling shard maps and an under-estimate when shard extents overlap.

        The aggregate is not bit-identical to ``from_index`` over one big
        index — the shards decompose space differently — but it tracks the
        same quantities the planner's heuristics consume (density, per-block
        occupancy, clustering ratio).
        """
        if not parts:
            raise InvalidParameterError("cannot aggregate an empty statistics list")
        num_points = sum(p.num_points for p in parts)
        num_blocks = sum(p.num_blocks for p in parts)
        num_nonempty = sum(p.num_nonempty_blocks for p in parts)
        occupied_area = sum(p.occupied_area_fraction * p.total_area for p in parts)
        if total_area is None:
            total_area = sum(p.total_area for p in parts)
        if total_area <= 0:
            total_area = 1.0
        return cls(
            num_points=num_points,
            num_blocks=num_blocks,
            num_nonempty_blocks=num_nonempty,
            mean_points_per_nonempty_block=(
                num_points / num_nonempty if num_nonempty else 0.0
            ),
            max_points_per_block=max(p.max_points_per_block for p in parts),
            occupied_area_fraction=min(1.0, occupied_area / total_area),
            total_area=float(total_area),
        )

    @property
    def density(self) -> float:
        """Points per unit area over the whole extent."""
        return self.num_points / self.total_area if self.total_area else 0.0

    @property
    def clustering_ratio(self) -> float:
        """A crude clusteredness measure in [0, 1].

        1.0 means all points live in a vanishing fraction of the blocks (highly
        clustered); 0.0 means every block is occupied (spread out / uniform).
        The unchained-join order heuristic (Section 4.1.2) prefers starting
        with the relation whose clusters cover the *smaller* area, i.e. the
        one with the higher clustering ratio.
        """
        return 1.0 - self.occupied_area_fraction
