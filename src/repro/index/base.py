"""Abstract base class for the block-based spatial indexes.

The interface is intentionally small: the paper's algorithms only need block
enumeration, per-block counts, MINDIST/MAXDIST orderings from a point, and
point location.  Vectorized MINDIST/MAXDIST computation over all blocks is
provided here once so every concrete index gets efficient orderings for free.
"""

from __future__ import annotations

import abc
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro import kernels
from repro.exceptions import EmptyDatasetError
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.index.block import Block
from repro.index.orderings import BlockDistance, maxdist_ordering, mindist_ordering
from repro.storage.pointstore import PointStore
from repro.storage.update import StoreChange

__all__ = ["SpatialIndex"]


class SpatialIndex(abc.ABC):
    """A space-partitioning index over a static set of 2-D points.

    Concrete subclasses build their blocks at construction time and then call
    :meth:`_finalize` with the resulting block list; the base class takes care
    of the bounds, the vectorized per-block bound arrays, and the orderings.
    """

    def __init__(self) -> None:
        self._blocks: tuple[Block, ...] = ()
        self._bounds: Rect | None = None
        self._store: PointStore | None = None
        self._block_bounds: np.ndarray = np.empty((0, 4), dtype=np.float64)
        self._block_counts: np.ndarray = np.empty(0, dtype=np.int64)
        self._row_block_ids: np.ndarray | None = None
        self._num_points = 0

    # ------------------------------------------------------------------
    # Construction support for subclasses
    # ------------------------------------------------------------------
    @staticmethod
    def _as_store(points: "Iterable[Point] | PointStore") -> PointStore:
        """Normalize a builder's input into a :class:`PointStore`."""
        if isinstance(points, PointStore):
            return points
        return PointStore.from_points(points)

    def _finalize(
        self, blocks: Sequence[Block], bounds: Rect, store: PointStore | None = None
    ) -> None:
        """Record the final block list; called once by subclass constructors."""
        self._blocks = tuple(blocks)
        self._bounds = bounds
        self._store = store
        if self._blocks:
            self._block_bounds = np.array(
                [b.rect.as_tuple() for b in self._blocks], dtype=np.float64
            )
            self._block_counts = np.array([b.count for b in self._blocks], dtype=np.int64)
        else:
            self._block_bounds = np.empty((0, 4), dtype=np.float64)
            self._block_counts = np.empty(0, dtype=np.int64)
        self._num_points = int(self._block_counts.sum())

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def blocks(self) -> tuple[Block, ...]:
        """All blocks of the index (their order is arbitrary but stable)."""
        return self._blocks

    @property
    def num_blocks(self) -> int:
        return len(self._blocks)

    @property
    def num_points(self) -> int:
        """Total number of indexed points."""
        return self._num_points

    @property
    def bounds(self) -> Rect:
        """The spatial extent covered by the index."""
        if self._bounds is None:
            raise EmptyDatasetError("index has not been built")
        return self._bounds

    @property
    def block_counts(self) -> np.ndarray:
        """Per-block point counts, aligned with :attr:`blocks`."""
        return self._block_counts

    @property
    def block_bounds(self) -> np.ndarray:
        """Per-block ``(xmin, ymin, xmax, ymax)`` rows, aligned with :attr:`blocks`.

        The vectorized MINDIST/MAXDIST kernels (here and in the batched prune
        phases of the core algorithms) all read from this one table.
        """
        return self._block_bounds

    @property
    def store(self) -> PointStore | None:
        """The columnar store every block's member rows index into.

        ``None`` only for indexes finalized without a shared store (legacy
        block lists built directly from point sequences).
        """
        return self._store

    @property
    def row_block_ids(self) -> np.ndarray:
        """Owning block id of every store row (built once, cached).

        The inverse of the blocks' member arrays: one scatter over them
        yields a ``len(store)`` table that turns "which block holds this
        row?" into a gather.  Indexes are immutable, so the table is a pure
        function of the build and amortizes across queries.
        """
        if self._store is None:
            raise EmptyDatasetError("index has no shared store")
        if self._row_block_ids is None:
            table = np.empty(len(self._store), dtype=np.int64)
            for block in self._blocks:
                table[block.member_ids] = block.block_id
            self._row_block_ids = table
        return self._row_block_ids

    def points(self) -> Iterator[Point]:
        """Iterate over every indexed point (block by block)."""
        for block in self._blocks:
            yield from block

    def __len__(self) -> int:
        return self._num_points

    # ------------------------------------------------------------------
    # Vectorized metrics
    # ------------------------------------------------------------------
    def mindists(self, p: Point) -> np.ndarray:
        """MINDIST from ``p`` to every block, aligned with :attr:`blocks`."""
        if self._block_bounds.size == 0:
            return np.empty(0, dtype=np.float64)
        xmin, ymin, xmax, ymax = self._block_bounds.T
        return kernels.point_block_mindists(p.x, p.y, xmin, ymin, xmax, ymax)

    def maxdists(self, p: Point) -> np.ndarray:
        """MAXDIST from ``p`` to every block, aligned with :attr:`blocks`."""
        if self._block_bounds.size == 0:
            return np.empty(0, dtype=np.float64)
        xmin, ymin, xmax, ymax = self._block_bounds.T
        return kernels.point_block_maxdists(p.x, p.y, xmin, ymin, xmax, ymax)

    # ------------------------------------------------------------------
    # Orderings (Section 2 of the paper)
    # ------------------------------------------------------------------
    def mindist_order(self, p: Point) -> Iterator[BlockDistance]:
        """Blocks in increasing MINDIST order from ``p`` (lazy)."""
        return mindist_ordering(self._blocks, p, self.mindists(p))

    def maxdist_order(self, p: Point) -> Iterator[BlockDistance]:
        """Blocks in increasing MAXDIST order from ``p`` (lazy)."""
        return maxdist_ordering(self._blocks, p, self.maxdists(p))

    # ------------------------------------------------------------------
    # Incremental repair
    # ------------------------------------------------------------------
    def repaired(self, store: PointStore, change: "StoreChange") -> "SpatialIndex | None":
        """A new index over ``store``, repaired block-locally — or ``None``.

        ``change`` describes how ``store`` differs from the store this index
        was built on (moved rows, removed rows, appended tail; see
        :class:`~repro.storage.update.StoreChange`).  Indexes that can patch
        only the affected blocks return the repaired index; the default is
        ``None`` — "unsupported, rebuild from scratch" — which is what the
        structural indexes (quadtree, R-tree) do, since a mutation can change
        their decomposition.  The repaired index must be *identical* to a
        full rebuild over ``store`` within the original spatial bounds;
        implementations must decline (return ``None``) whenever that cannot
        be guaranteed, e.g. when a new coordinate falls outside the indexed
        extent.
        """
        return None

    # ------------------------------------------------------------------
    # Point location
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def locate(self, p: Point) -> Block | None:
        """Return the block whose region contains ``p`` (``None`` if outside).

        For indexes whose blocks do not tile the space (the R-tree), the block
        whose rectangle contains ``p`` and holds the point with the smallest
        distance is returned; ``None`` if no block rectangle contains ``p``.
        """

    # ------------------------------------------------------------------
    # Convenience queries
    # ------------------------------------------------------------------
    def blocks_intersecting(self, rect: Rect) -> list[Block]:
        """All blocks whose rectangle intersects ``rect`` (vectorized test)."""
        if not self._blocks:
            return []
        xmin, ymin, xmax, ymax = self._block_bounds.T
        mask = (
            (xmin <= rect.xmax)
            & (rect.xmin <= xmax)
            & (ymin <= rect.ymax)
            & (rect.ymin <= ymax)
        )
        return [self._blocks[i] for i in np.nonzero(mask)[0]]

    def blocks_within(self, p: Point, radius: float) -> list[Block]:
        """All blocks whose MINDIST from ``p`` is at most ``radius``."""
        if not self._blocks:
            return []
        mind = self.mindists(p)
        return [self._blocks[i] for i in np.nonzero(mind <= radius)[0]]

    def count_points_within_maxdist(self, p: Point, radius: float) -> int:
        """Total count of points in blocks *completely* inside ``radius`` of ``p``.

        "Completely inside" means MAXDIST(block, p) <= radius; this is the
        quantity the Counting algorithm accumulates.
        """
        if not self._blocks:
            return 0
        maxd = self.maxdists(p)
        return int(self._block_counts[maxd <= radius].sum())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(points={self.num_points}, blocks={self.num_blocks})"
