"""Primitive query operators: kNN-select, kNN-join and intersections.

These are the building blocks from which both the conceptually correct QEPs
and the paper's optimized algorithms are assembled:

* ``knn_select`` — ``sigma_{k,f}(E)``: the k points of ``E`` closest to the
  focal point ``f``.
* ``knn_join`` — ``E1 join_kNN E2``: all pairs ``(e1, e2)`` where ``e2`` is
  among the k closest points of ``E2`` to ``e1``.
* ``intersect_points`` / ``intersect_pairs_on_inner`` — plain set intersection
  and the paper's ``∩B`` (intersection of two pair sets on the shared inner
  relation).
"""

from repro.operators.results import JoinPair, JoinTriplet, pair_key, triplet_key
from repro.operators.knn_select import knn_select
from repro.operators.knn_join import knn_join, knn_join_pairs
from repro.operators.range_select import radius_select, range_select
from repro.operators.intersection import (
    intersect_points,
    intersect_pairs_on_inner,
    pairs_to_triplets,
)

__all__ = [
    "JoinPair",
    "JoinTriplet",
    "pair_key",
    "triplet_key",
    "knn_select",
    "knn_join",
    "knn_join_pairs",
    "range_select",
    "radius_select",
    "intersect_points",
    "intersect_pairs_on_inner",
    "pairs_to_triplets",
]
