"""Result row types produced by joins and multi-predicate queries."""

from __future__ import annotations

from typing import NamedTuple

from repro.geometry.point import Point

__all__ = ["JoinPair", "JoinTriplet", "pair_key", "triplet_key"]


class JoinPair(NamedTuple):
    """One output row of a kNN-join: ``inner`` is a k-nearest neighbor of ``outer``."""

    outer: Point
    inner: Point

    @property
    def pids(self) -> tuple[int, int]:
        """The ``(outer pid, inner pid)`` identifier pair."""
        return (self.outer.pid, self.inner.pid)

    @property
    def distance(self) -> float:
        """Distance between the two points of the pair."""
        return self.outer.distance_to(self.inner)


class JoinTriplet(NamedTuple):
    """One output row of a two-join query over relations A, B and C."""

    a: Point
    b: Point
    c: Point

    @property
    def pids(self) -> tuple[int, int, int]:
        """The ``(a pid, b pid, c pid)`` identifier triple."""
        return (self.a.pid, self.b.pid, self.c.pid)


def pair_key(pair: JoinPair) -> tuple[int, int]:
    """Canonical identifier key of a pair (for set comparisons and sorting)."""
    return pair.pids


def triplet_key(triplet: JoinTriplet) -> tuple[int, int, int]:
    """Canonical identifier key of a triplet (for set comparisons and sorting)."""
    return triplet.pids
