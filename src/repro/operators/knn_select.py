"""The kNN-select operator ``sigma_{k,f}(E)``.

For a focal point ``f``, the operator returns the k points of ``E`` closest to
``f`` — i.e. it is simply the neighborhood of ``f`` in ``E`` (Section 1 of the
paper).
"""

from __future__ import annotations

from repro.core.stats import PruningStats
from repro.exceptions import InvalidParameterError
from repro.geometry.point import Point
from repro.index.base import SpatialIndex
from repro.locality.knn import get_knn
from repro.locality.neighborhood import Neighborhood

__all__ = ["knn_select"]


def knn_select(
    index: SpatialIndex, focal: Point, k: int, stats: PruningStats | None = None
) -> Neighborhood:
    """Evaluate ``sigma_{k, focal}(E)`` where ``E`` is the data behind ``index``.

    Parameters
    ----------
    index:
        Spatial index over the relation ``E``.
    focal:
        The focal point ``f`` of the selection.
    k:
        Number of nearest neighbors to select.
    stats:
        Optional work counters; one neighborhood computation is charged (the
        engines feed these observations to the planner's calibration loop).

    Returns
    -------
    Neighborhood
        The k points of ``E`` nearest to ``focal`` in ``(distance, pid)``
        order.
    """
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    if stats is not None:
        stats.neighborhoods_computed += 1
    return get_knn(index, focal, k)
