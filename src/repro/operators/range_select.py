"""Range-select operators (rectangular window and circular range).

Footnote 1 of the paper notes that the select-below-inner-join pitfall "exists
if the selection is a spatial range (e.g., rectangle), or a relational
attribute-based selection" as well.  These operators provide the range
flavors; :mod:`repro.core.select_join.range_inner` adapts the Block-Marking
idea to them.

Per-point containment tests run columnar: a partially-overlapping block
contributes a vectorized mask over its gathered coordinate columns and only
the rows inside the window/ball are materialized as points.
"""

from __future__ import annotations

import numpy as np

from repro.core.stats import PruningStats
from repro.exceptions import InvalidParameterError
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.index.base import SpatialIndex
from repro.index.block import Block

__all__ = ["range_select", "radius_select"]


def _members_in_window(block: Block, window: Rect) -> list[Point]:
    """Materialize only the block rows whose coordinates fall in ``window``."""
    xs = block.store.xs[block.member_ids]
    ys = block.store.ys[block.member_ids]
    mask = (xs >= window.xmin) & (xs <= window.xmax) & (ys >= window.ymin) & (ys <= window.ymax)
    if not mask.any():
        return []
    return block.store.materialize(block.member_ids[mask])


def range_select(
    index: SpatialIndex, window: Rect, stats: "PruningStats | None" = None
) -> list[Point]:
    """Return every indexed point inside the rectangular ``window``.

    Blocks whose rectangle does not intersect the window are skipped without
    looking at their points; blocks fully contained in the window contribute
    all their points without per-point tests.  ``stats`` (optional) counts
    the blocks actually examined, for the engines' calibration feedback.
    """
    result: list[Point] = []
    for block in index.blocks_intersecting(window):
        if stats is not None:
            stats.blocks_examined += 1
        if block.is_empty:
            continue
        if window.contains_rect(block.rect):
            result.extend(block.points)
        else:
            result.extend(_members_in_window(block, window))
    return result


def radius_select(index: SpatialIndex, center: Point, radius: float) -> list[Point]:
    """Return every indexed point within ``radius`` of ``center`` (closed ball).

    Uses MINDIST/MAXDIST to skip blocks entirely outside the ball and to take
    blocks entirely inside it without per-point distance tests.
    """
    if radius < 0:
        raise InvalidParameterError("radius must be non-negative")
    result: list[Point] = []
    for block in index.blocks:
        if block.is_empty:
            continue
        if block.mindist(center) > radius:
            continue
        if block.maxdist(center) <= radius:
            result.extend(block.points)
        else:
            dists = block.store.distances_to(center.x, center.y, block.member_ids)
            mask = dists <= radius
            if mask.any():
                result.extend(block.store.materialize(block.member_ids[mask]))
    return result
