"""Range-select operators (rectangular window and circular range).

Footnote 1 of the paper notes that the select-below-inner-join pitfall "exists
if the selection is a spatial range (e.g., rectangle), or a relational
attribute-based selection" as well.  These operators provide the range
flavors; :mod:`repro.core.select_join.range_inner` adapts the Block-Marking
idea to them.
"""

from __future__ import annotations

from typing import Iterable

from repro.exceptions import InvalidParameterError
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.index.base import SpatialIndex

__all__ = ["range_select", "radius_select"]


def range_select(index: SpatialIndex, window: Rect) -> list[Point]:
    """Return every indexed point inside the rectangular ``window``.

    Blocks whose rectangle does not intersect the window are skipped without
    looking at their points; blocks fully contained in the window contribute
    all their points without per-point tests.
    """
    result: list[Point] = []
    for block in index.blocks:
        if block.is_empty or not block.rect.intersects(window):
            continue
        if window.contains_rect(block.rect):
            result.extend(block.points)
        else:
            result.extend(p for p in block if window.contains_point(p))
    return result


def radius_select(index: SpatialIndex, center: Point, radius: float) -> list[Point]:
    """Return every indexed point within ``radius`` of ``center`` (closed ball).

    Uses MINDIST/MAXDIST to skip blocks entirely outside the ball and to take
    blocks entirely inside it without per-point distance tests.
    """
    if radius < 0:
        raise InvalidParameterError("radius must be non-negative")
    result: list[Point] = []
    for block in index.blocks:
        if block.is_empty:
            continue
        if block.mindist(center) > radius:
            continue
        if block.maxdist(center) <= radius:
            result.extend(block.points)
        else:
            result.extend(p for p in block if p.distance_to(center) <= radius)
    return result
