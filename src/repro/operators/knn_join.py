"""The kNN-join operator ``E1 join_kNN E2``.

``E1 join_kNN E2`` returns all pairs ``(e1, e2)`` with ``e1 in E1``, ``e2 in
E2`` and ``e2`` among the k closest points of ``E2`` to ``e1`` (Section 1).
The operator is *not* symmetric: the outer relation drives the per-point
neighborhood computations against the inner relation's index.

This module provides the straightforward evaluation (one ``getkNN`` per outer
point); the optimized algorithms of the paper reuse it as their inner building
block but avoid calling it for outer points or blocks they can prove will not
contribute to the final query answer.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from repro.core.stats import PruningStats
from repro.exceptions import InvalidParameterError
from repro.geometry.point import Point
from repro.index.base import SpatialIndex
from repro.locality.batch import get_knn_batch
from repro.locality.knn import get_knn
from repro.locality.neighborhood import Neighborhood
from repro.operators.results import JoinPair

__all__ = ["knn_join", "knn_join_pairs"]


def knn_join(
    outer: Iterable[Point],
    inner_index: SpatialIndex,
    k: int,
    knn: Callable[[SpatialIndex, Point, int], Neighborhood] = get_knn,
) -> Iterator[tuple[Point, Neighborhood]]:
    """Lazily yield ``(e1, neighborhood-of-e1-in-E2)`` for every outer point.

    Yielding the whole neighborhood (instead of flat pairs) lets callers reuse
    it — e.g. the chained-join Nested Join plan probes a cache keyed by the
    inner point before computing the next-level neighborhood.

    Parameters
    ----------
    outer:
        The outer relation ``E1``.
    inner_index:
        Spatial index over the inner relation ``E2``.
    k:
        The join's k value.
    knn:
        The kNN primitive to use; injectable for testing and ablations.
    """
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    for e1 in outer:
        yield e1, knn(inner_index, e1, k)


def knn_join_pairs(
    outer: Iterable[Point],
    inner_index: SpatialIndex,
    k: int,
    knn: Callable[[SpatialIndex, Point, int], Neighborhood] = get_knn,
    stats: PruningStats | None = None,
) -> list[JoinPair]:
    """Materialize ``E1 join_kNN E2`` as a list of :class:`JoinPair` rows.

    With the default kNN primitive the per-outer-point neighborhoods are
    computed through the batched columnar kernel
    (:func:`~repro.locality.batch.get_knn_batch`), which amortizes the
    locality phase over the whole outer relation and runs its distance math
    on the active :mod:`repro.kernels` backend (compiled when available);
    an injected ``knn`` callable falls back to the per-point loop.
    ``stats`` (optional) counts one neighborhood computation per outer
    point, for the engines' calibration feedback.
    """
    if knn is get_knn:
        if k <= 0:
            raise InvalidParameterError(f"k must be positive, got {k}")
        outer_list = outer if isinstance(outer, list) else list(outer)
        if stats is not None:
            stats.neighborhoods_computed += len(outer_list)
        pairs: list[JoinPair] = []
        for e1, nbr in zip(outer_list, get_knn_batch(inner_index, outer_list, k)):
            pairs.extend(JoinPair(e1, e2) for e2 in nbr)
        return pairs
    pairs = []
    for e1, nbr in knn_join(outer, inner_index, k, knn=knn):
        if stats is not None:
            stats.neighborhoods_computed += 1
        pairs.extend(JoinPair(e1, e2) for e2 in nbr)
    return pairs
