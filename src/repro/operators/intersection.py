"""Intersection operators used by the conceptually correct QEPs.

Two flavors appear in the paper:

* plain point-set intersection (two kNN-selects, Section 5), and
* ``∩B`` — intersection of two pair sets on the shared inner relation B
  (unchained kNN-joins, Section 4.1), which produces triplets.

Point-set intersection is columnar: when both operands are neighborhoods the
match runs as one vectorized ``isin`` / ``intersect1d`` over their pid
columns and only the surviving members are materialized.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Sequence

import numpy as np

from repro.geometry.point import Point
from repro.locality.neighborhood import Neighborhood
from repro.operators.results import JoinPair, JoinTriplet

__all__ = [
    "intersect_points",
    "intersect_pids",
    "intersect_pairs_on_inner",
    "pairs_to_triplets",
]


def intersect_points(
    first: Neighborhood | Iterable[Point],
    second: Neighborhood | Iterable[Point],
) -> list[Point]:
    """Set intersection of two point collections, matching points by ``pid``.

    The result preserves the iteration order of ``first``.  When both
    operands are neighborhoods this delegates to the vectorized
    :meth:`Neighborhood.intersection` and materializes only the survivors.
    """
    if isinstance(first, Neighborhood) and isinstance(second, Neighborhood):
        return first.intersection(second)
    second_pids = (
        second.pids if isinstance(second, Neighborhood) else {p.pid for p in second}
    )
    seen: set[int] = set()
    result: list[Point] = []
    for p in first:
        if p.pid in second_pids and p.pid not in seen:
            seen.add(p.pid)
            result.append(p)
    return result


def intersect_pids(first: Neighborhood, second: Neighborhood) -> np.ndarray:
    """Sorted pid array common to both neighborhoods (``np.intersect1d``).

    The id-array flavor of the intersection: no point is materialized.
    Useful when a later phase only needs identifiers (e.g. filtering join
    outputs by a selection result).
    """
    return np.intersect1d(first.pid_array, second.pid_array)


def intersect_pairs_on_inner(
    ab_pairs: Sequence[JoinPair],
    cb_pairs: Sequence[JoinPair],
) -> list[JoinTriplet]:
    """The paper's ``∩B``: join two pair sets on their shared inner point.

    ``ab_pairs`` holds pairs ``(a, b)`` from ``A join_kNN B`` and ``cb_pairs``
    holds pairs ``(c, b)`` from ``C join_kNN B``.  The result is every triplet
    ``(a, b, c)`` such that ``(a, b)`` and ``(c, b)`` share the same ``b``.
    """
    by_inner: dict[int, list[JoinPair]] = defaultdict(list)
    for pair in cb_pairs:
        by_inner[pair.inner.pid].append(pair)
    triplets: list[JoinTriplet] = []
    for ab in ab_pairs:
        for cb in by_inner.get(ab.inner.pid, ()):
            triplets.append(JoinTriplet(ab.outer, ab.inner, cb.outer))
    return triplets


def pairs_to_triplets(
    ab_pairs: Sequence[JoinPair],
    bc_pairs: Sequence[JoinPair],
) -> list[JoinTriplet]:
    """Combine chained-join outputs: ``(a, b)`` rows with ``(b, c)`` rows.

    ``bc_pairs`` holds pairs from ``B join_kNN C`` (outer = b, inner = c); the
    result is every ``(a, b, c)`` with a matching ``b``.
    """
    by_outer: dict[int, list[JoinPair]] = defaultdict(list)
    for pair in bc_pairs:
        by_outer[pair.outer.pid].append(pair)
    triplets: list[JoinTriplet] = []
    for ab in ab_pairs:
        for bc in by_outer.get(ab.inner.pid, ()):
            triplets.append(JoinTriplet(ab.outer, ab.inner, bc.inner))
    return triplets
