"""Mergeable partial results for sharded kNN evaluation.

Data-partitioned execution splits a relation into spatial shards and evaluates
each operator per shard; the functions here combine the per-shard *partial*
results back into the exact global answer.  The key fact making kNN-select
mergeable is:

    If ``E = E_1 ∪ ... ∪ E_m`` (disjoint), then the global k nearest
    neighbors of a point ``p`` in ``E`` are contained in the union of the
    per-shard k nearest neighbors of ``p`` in each ``E_i``.

Proof sketch: a point ranked r-th globally (r ≤ k) is ranked at most r-th
within its own shard, so it appears in that shard's top-k.  Re-ranking the
union by the library-wide ``(distance, pid)`` order therefore reproduces the
unsharded neighborhood *exactly*, ties included.  Join outputs are mergeable
trivially: the outer relation is partitioned, every outer point is owned by
exactly one shard, so per-shard pair/triplet lists concatenate without
duplicates.

See ``docs/operators.md`` for the full border-expansion argument and
:mod:`repro.shard` for the execution layer built on these primitives.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.exceptions import InvalidParameterError
from repro.geometry.point import Point
from repro.locality.neighborhood import Neighborhood
from repro.operators.results import JoinPair, JoinTriplet, pair_key, triplet_key

__all__ = [
    "merge_neighborhoods",
    "merge_knn_candidates",
    "merge_point_partials",
    "merge_pair_partials",
    "merge_triplet_partials",
]


def merge_neighborhoods(
    center: Point, k: int, partials: Iterable[Neighborhood]
) -> Neighborhood:
    """Re-rank per-shard neighborhoods of ``center`` into the global top-k.

    Each partial must be a (≤ k)-neighborhood of the *same* center computed
    over one shard of the relation.  The merged result is identical to the
    neighborhood computed over the unsharded relation: candidates are ranked
    by ``(distance, pid)`` — the library's deterministic tie-break — and the
    first ``k`` are kept.
    """
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    candidates: list[tuple[float, int, Point]] = []
    for nbr in partials:
        candidates.extend(zip(nbr.distances, (p.pid for p in nbr), nbr))
    return merge_knn_candidates(center, k, candidates)


def merge_knn_candidates(
    center: Point, k: int, candidates: Sequence[tuple[float, int, Point]]
) -> Neighborhood:
    """Build the global k-neighborhood from ``(distance, pid, point)`` rows.

    This is the final re-rank step shared by :func:`merge_neighborhoods` and
    the incremental border-expansion search in :mod:`repro.shard.knn`.
    Duplicate pids (which cannot occur for disjoint shards) are kept as-is;
    callers guarantee disjointness.
    """
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    ranked = sorted(candidates, key=lambda row: (row[0], row[1]))[:k]
    return Neighborhood(
        center, k, [p for _, __, p in ranked], [d for d, __, ___ in ranked]
    )


def merge_point_partials(partials: Iterable[Sequence[Point]]) -> list[Point]:
    """Concatenate per-shard point lists (e.g. range-select partials).

    Shards are disjoint, so concatenation introduces no duplicates; the
    result is sorted by ``pid`` to make the output independent of shard
    enumeration order.
    """
    merged = [p for part in partials for p in part]
    merged.sort(key=lambda p: p.pid)
    return merged


def merge_pair_partials(partials: Iterable[Sequence[JoinPair]]) -> list[JoinPair]:
    """Concatenate per-outer-shard join outputs into the global pair set.

    The outer relation is partitioned, so each pair is produced by exactly
    one shard; sorting by ``(outer pid, inner pid)`` gives a canonical order
    independent of shard count and worker scheduling.
    """
    merged = [pair for part in partials for pair in part]
    merged.sort(key=pair_key)
    return merged


def merge_triplet_partials(
    partials: Iterable[Sequence[JoinTriplet]],
) -> list[JoinTriplet]:
    """Concatenate per-shard triplet outputs into the global triplet set."""
    merged = [t for part in partials for t in part]
    merged.sort(key=triplet_key)
    return merged
