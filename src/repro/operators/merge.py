"""Mergeable partial results for sharded kNN evaluation.

Data-partitioned execution splits a relation into spatial shards and evaluates
each operator per shard; the functions here combine the per-shard *partial*
results back into the exact global answer.  The key fact making kNN-select
mergeable is:

    If ``E = E_1 ∪ ... ∪ E_m`` (disjoint), then the global k nearest
    neighbors of a point ``p`` in ``E`` are contained in the union of the
    per-shard k nearest neighbors of ``p`` in each ``E_i``.

Proof sketch: a point ranked r-th globally (r ≤ k) is ranked at most r-th
within its own shard, so it appears in that shard's top-k.  Re-ranking the
union by the library-wide ``(distance, pid)`` order therefore reproduces the
unsharded neighborhood *exactly*, ties included.  Join outputs are mergeable
trivially: the outer relation is partitioned, every outer point is owned by
exactly one shard, so per-shard pair/triplet lists concatenate without
duplicates.

The re-rank itself is columnar: partial neighborhoods expose their
``(distance, pid)`` columns as arrays, the merge stacks them and runs one
``np.lexsort``, and only the k winners are materialized as points.

See ``docs/operators.md`` for the full border-expansion argument and
:mod:`repro.shard` for the execution layer built on these primitives.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro import kernels
from repro.exceptions import InvalidParameterError
from repro.geometry.point import Point
from repro.locality.neighborhood import Neighborhood
from repro.operators.results import JoinPair, JoinTriplet, pair_key, triplet_key

__all__ = [
    "merge_neighborhoods",
    "merge_knn_candidates",
    "merge_point_partials",
    "merge_pair_partials",
    "merge_triplet_partials",
]


def merge_neighborhoods(
    center: Point, k: int, partials: Iterable[Neighborhood]
) -> Neighborhood:
    """Re-rank per-shard neighborhoods of ``center`` into the global top-k.

    Each partial must be a (≤ k)-neighborhood of the *same* center computed
    over one shard of the relation.  The merged result is identical to the
    neighborhood computed over the unsharded relation: the partials'
    ``(distance, pid)`` columns are stacked and ranked with one ``np.lexsort``
    — the library's deterministic tie-break — and the first ``k`` are kept
    (only those k members are materialized).
    """
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    parts = [nbr for nbr in partials if len(nbr)]
    if not parts:
        return Neighborhood(center, k, [], [])
    dists = np.concatenate([nbr.distance_array for nbr in parts])
    pids = np.concatenate([nbr.pid_array for nbr in parts])
    order = kernels.merge_topk(dists, pids, k)
    offsets = np.cumsum([0] + [len(nbr) for nbr in parts])
    part_of = np.searchsorted(offsets, order, side="right") - 1
    members = [
        parts[part]._member_at(int(g - offsets[part]))
        for g, part in zip(order.tolist(), part_of.tolist())
    ]
    return Neighborhood(center, k, members, dists[order])


def merge_knn_candidates(
    center: Point, k: int, candidates: Sequence[tuple[float, int, Point]]
) -> Neighborhood:
    """Build the global k-neighborhood from ``(distance, pid, point)`` rows.

    The row-tuple flavor of :func:`merge_neighborhoods`, kept for callers
    that accumulate loose candidates; ranking is the same ``np.lexsort`` over
    the stacked ``(distance, pid)`` columns.  Duplicate pids (which cannot
    occur for disjoint shards) are kept as-is; callers guarantee
    disjointness.
    """
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    n = len(candidates)
    if n == 0:
        return Neighborhood(center, k, [], [])
    dists = np.fromiter((row[0] for row in candidates), dtype=np.float64, count=n)
    pids = np.fromiter((row[1] for row in candidates), dtype=np.int64, count=n)
    order = kernels.merge_topk(dists, pids, k)
    members = [candidates[i][2] for i in order.tolist()]
    return Neighborhood(center, k, members, dists[order])


def merge_point_partials(partials: Iterable[Sequence[Point]]) -> list[Point]:
    """Concatenate per-shard point lists (e.g. range-select partials).

    Shards are disjoint, so concatenation introduces no duplicates; the
    result is sorted by ``pid`` to make the output independent of shard
    enumeration order.
    """
    merged = [p for part in partials for p in part]
    merged.sort(key=lambda p: p.pid)
    return merged


def merge_pair_partials(partials: Iterable[Sequence[JoinPair]]) -> list[JoinPair]:
    """Concatenate per-outer-shard join outputs into the global pair set.

    The outer relation is partitioned, so each pair is produced by exactly
    one shard; sorting by ``(outer pid, inner pid)`` gives a canonical order
    independent of shard count and worker scheduling.
    """
    merged = [pair for part in partials for pair in part]
    merged.sort(key=pair_key)
    return merged


def merge_triplet_partials(
    partials: Iterable[Sequence[JoinTriplet]],
) -> list[JoinTriplet]:
    """Concatenate per-shard triplet outputs into the global triplet set."""
    merged = [t for part in partials for t in part]
    merged.sort(key=triplet_key)
    return merged
