"""Validity rules for plans containing two kNN predicates.

These rules encode the paper's correctness results:

* A kNN-select may be pushed below the **outer** relation of a kNN-join
  (Section 3, Figure 3) — the transformation preserves the answer.
* A kNN-select may **not** be pushed below the **inner** relation of a
  kNN-join (Section 1, Figures 1–2) — the join would see a truncated inner
  relation.
* Two **unchained** kNN-joins must be evaluated independently and intersected
  on the shared inner relation (Section 4.1, Figures 8–10); feeding either
  join's output into the other is invalid.
* Two **chained** kNN-joins may be evaluated in any of the three QEPs of
  Figure 13 (they are equivalent).
* Two kNN-selects must each be evaluated against the full relation and then
  intersected (Section 5, Figures 14–16).

``validate_plan`` walks a logical plan tree and raises
:class:`~repro.exceptions.InvalidPlanError` when it finds the invalid
select-below-inner pattern.

These fixed predicates are the special case the general rewrite-rule engine
(:mod:`repro.algebra.rules`) subsumes: there, push-below-outer is the
``push-filter-below-join-outer`` rule, push-below-inner is the
(never-firing) ``no-filter-below-join-inner`` rule, and the invalidity is
additionally *structural* — :class:`repro.algebra.tree.KnnJoinOp` refuses
any inner input that is not a bare scan.  This module remains the paper's
six-class formulation, used by the classic per-class planner.
"""

from __future__ import annotations

from repro.exceptions import InvalidPlanError
from repro.planner.plan import KnnJoinNode, KnnSelectNode, PlanNode

__all__ = [
    "can_push_select_below_outer",
    "can_push_select_below_inner",
    "chained_plans_equivalent",
    "unchained_requires_independent_joins",
    "two_selects_require_independent_evaluation",
    "validate_plan",
]


def can_push_select_below_outer() -> bool:
    """A kNN-select on the outer relation of a kNN-join may be pushed down.

    ``(E1 ⋈kNN E2) ∩ (σ(E1) × E2) ≡ σ(E1) ⋈kNN E2`` — outer points removed by
    the selection could only have produced pairs that the final filter would
    discard anyway.
    """
    return True


def can_push_select_below_inner() -> bool:
    """A kNN-select on the inner relation of a kNN-join may NOT be pushed down.

    Pushing it truncates the inner relation, so outer points join against a
    reduced point set and the k nearest neighbors change:
    ``(E1 ⋈kNN E2) ∩ (E1 × σ(E2)) ≢ E1 ⋈kNN σ(E2)``.
    """
    return False


def chained_plans_equivalent() -> bool:
    """The three chained-join QEPs of Figure 13 produce identical answers.

    ``(A ⋈ B) ∩ (B ⋈ C) ≡ (A ⋈ B) ⋈ C ≡ A ⋈ (B ⋈ C)`` because the first join
    acts as a selection on the *outer* relation of the second join, which is a
    valid push-down.
    """
    return True


def unchained_requires_independent_joins() -> bool:
    """Unchained joins must be evaluated independently and intersected on B.

    Evaluating either join first and feeding its output to the other is
    equivalent to pushing a selection below the inner relation of a kNN-join,
    which is invalid.
    """
    return True


def two_selects_require_independent_evaluation() -> bool:
    """Two kNN-selects must each see the full relation before intersecting."""
    return True


def _is_relation_restricted_by_select(node: PlanNode) -> bool:
    """True when ``node`` is (or wraps) a kNN-select restricting a relation."""
    return isinstance(node, KnnSelectNode)


def validate_plan(plan: PlanNode) -> None:
    """Reject plans that apply a kNN-select below a kNN-join's inner relation.

    Raises
    ------
    InvalidPlanError
        If any kNN-join in the plan has a kNN-select (directly) as its inner
        input, which Section 1 of the paper proves changes the query answer.
    """
    for node in plan.walk():
        if isinstance(node, KnnJoinNode) and _is_relation_restricted_by_select(node.inner):
            raise InvalidPlanError(
                "invalid QEP: a kNN-select may not be pushed below the inner "
                "relation of a kNN-join (the join would see a truncated inner "
                "relation); evaluate the join first and filter its output, or "
                "use the Counting / Block-Marking algorithms"
            )
