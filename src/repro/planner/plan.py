"""Logical query-plan nodes for spatial queries with kNN predicates.

The nodes model exactly the operators that appear in the paper's QEP figures:
base relations, kNN-selects, kNN-joins, point-set intersection and the ``∩B``
pair intersection.  They carry no data — they describe *structure*, which the
rules module inspects to accept or reject a plan and which ``explain`` renders
for humans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.exceptions import PlanError
from repro.geometry.point import Point

__all__ = [
    "PlanNode",
    "RelationNode",
    "KnnSelectNode",
    "KnnJoinNode",
    "IntersectNode",
    "IntersectOnInnerNode",
    "PhysicalPlan",
    "explain",
]


@dataclass(frozen=True)
class PhysicalPlan:
    """A fully resolved execution decision for one query.

    Produced by :meth:`repro.query.query.Query.plan` and consumed by
    :meth:`repro.query.query.Query.run`; the engine's plan cache stores these
    so that repeated queries skip strategy re-derivation (and the statistics
    reads behind it) entirely.

    ``decisions`` holds the per-query-class choices that would otherwise be
    re-derived at execution time, e.g. ``{"select_join_strategy":
    SelectJoinStrategy.COUNTING}`` or ``{"unchained_first": "A"}``.
    ``estimates`` optionally records the cost-model totals (strategy → abstract
    cost) that justified the choice, for EXPLAIN output.
    """

    query_class: str
    strategy: str
    decisions: dict[str, object] = field(default_factory=dict)
    estimates: dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class PlanNode:
    """Base class of all logical plan nodes."""

    def children(self) -> tuple["PlanNode", ...]:
        """The node's child operators (empty for leaves)."""
        return ()

    def walk(self) -> Iterator["PlanNode"]:
        """Pre-order traversal of the plan tree."""
        yield self
        for child in self.children():
            yield from child.walk()

    def label(self) -> str:
        """Short human-readable label used by :func:`explain`."""
        return type(self).__name__


@dataclass(frozen=True)
class RelationNode(PlanNode):
    """A base relation (a named point set)."""

    name: str

    def label(self) -> str:
        return self.name


@dataclass(frozen=True)
class KnnSelectNode(PlanNode):
    """``sigma_{k, focal}(child)`` — a kNN-select over its child."""

    child: PlanNode
    focal: Point
    k: int
    name: str = ""

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise PlanError("kNN-select requires k > 0")

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        suffix = f" [{self.name}]" if self.name else ""
        return f"kNN-select(k={self.k}){suffix}"


@dataclass(frozen=True)
class KnnJoinNode(PlanNode):
    """``outer join_kNN inner`` — pairs each outer point with its k inner neighbors."""

    outer: PlanNode
    inner: PlanNode
    k: int

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise PlanError("kNN-join requires k > 0")

    def children(self) -> tuple[PlanNode, ...]:
        return (self.outer, self.inner)

    def label(self) -> str:
        return f"kNN-join(k={self.k})"


@dataclass(frozen=True)
class IntersectNode(PlanNode):
    """Plain set intersection of two point-producing subplans."""

    left: PlanNode
    right: PlanNode

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        return "∩"


@dataclass(frozen=True)
class IntersectOnInnerNode(PlanNode):
    """The paper's ``∩B``: intersect two pair sets on their shared inner relation."""

    left: PlanNode
    right: PlanNode
    shared: str = "B"

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        return f"∩_{self.shared}"


def explain(plan: PlanNode, indent: int = 0) -> str:
    """Render ``plan`` as an indented single-string tree (one node per line)."""
    lines = ["  " * indent + plan.label()]
    for child in plan.children():
        lines.append(explain(child, indent + 1))
    return "\n".join(lines)
