"""A coarse cost model for choosing among the paper's algorithms.

The dominant cost of every strategy is the number of neighborhood (``getkNN``)
computations it performs, optionally weighted by the expected locality size.
The model does not try to predict wall-clock time; it ranks strategies, which
is all the optimizer needs (Section 3.3's "Counting vs Block-Marking"
discussion is exactly such a ranking argument).

Every estimator that needs block statistics accepts an optional precomputed
:class:`~repro.index.stats.IndexStats`, so a caller comparing several
strategies over the same index (or serving many queries, as the engine does)
computes the O(n) statistics once instead of once per estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.index.base import SpatialIndex
from repro.index.stats import IndexStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.planner.calibrate import StrategyProfile

__all__ = ["CostEstimate", "CostModel"]


@dataclass(frozen=True, slots=True)
class CostEstimate:
    """Estimated work of one strategy, in abstract units."""

    strategy: str
    neighborhood_computations: float
    per_tuple_overhead: float = 0.0
    per_block_overhead: float = 0.0

    @property
    def total(self) -> float:
        """Total abstract cost."""
        return self.neighborhood_computations + self.per_tuple_overhead + self.per_block_overhead


class CostModel:
    """Ranks the paper's strategies using simple block statistics.

    Parameters
    ----------
    prune_selectivity:
        Expected fraction of outer points whose neighborhoods overlap the
        selection result (i.e. survive pruning).  The true value depends on
        data and k; the default is deliberately pessimistic so that the model
        never underestimates the optimized algorithms' work.
    block_check_cost:
        Relative cost of one per-block preprocessing check (one center
        neighborhood computation) compared to one point neighborhood
        computation.
    tuple_check_cost:
        Relative cost of the Counting algorithm's per-tuple MAXDIST scan
        compared to one neighborhood computation.
    """

    def __init__(
        self,
        prune_selectivity: float = 0.05,
        block_check_cost: float = 1.0,
        tuple_check_cost: float = 0.15,
    ) -> None:
        self.prune_selectivity = prune_selectivity
        self.block_check_cost = block_check_cost
        self.tuple_check_cost = tuple_check_cost

    # ------------------------------------------------------------------
    # Select (inner) + join strategies — Section 3
    # ------------------------------------------------------------------
    def baseline_select_join(self, outer_size: int) -> CostEstimate:
        """Conceptually correct QEP: one neighborhood per outer point."""
        return CostEstimate("baseline", neighborhood_computations=float(outer_size))

    def counting_select_join(
        self, outer_size: int, selectivity: float | None = None
    ) -> CostEstimate:
        """Counting: per-tuple block scan plus neighborhoods for survivors.

        ``selectivity`` substitutes an *observed* survivor fraction for the
        static ``prune_selectivity`` constant (the calibrated path).
        """
        sel = self.prune_selectivity if selectivity is None else selectivity
        return CostEstimate(
            "counting",
            neighborhood_computations=outer_size * sel,
            per_tuple_overhead=outer_size * self.tuple_check_cost,
        )

    def block_marking_select_join(
        self,
        outer_index: SpatialIndex | None,
        stats: IndexStats | None = None,
        selectivity: float | None = None,
        blocks_checked: float | None = None,
    ) -> CostEstimate:
        """Block-Marking: per-block checks plus neighborhoods in surviving blocks.

        With ``stats`` supplied the index is never touched (and may be
        ``None``); everything the estimate needs lives in the statistics.
        ``selectivity`` and ``blocks_checked`` substitute observed values for
        the static survivor fraction and the non-empty-block count (the
        preprocessing pass actually examines *every* block in MINDIST order
        until a contour closes, which the static estimate undercounts — a
        calibrated ``blocks_checked`` corrects that).
        """
        if stats is None:
            if outer_index is None:
                raise ValueError(
                    "block_marking_select_join needs an index or precomputed stats"
                )
            stats = IndexStats.from_index(outer_index)
        sel = self.prune_selectivity if selectivity is None else selectivity
        blocks = stats.num_nonempty_blocks if blocks_checked is None else blocks_checked
        return CostEstimate(
            "block_marking",
            neighborhood_computations=stats.num_points * sel,
            per_block_overhead=blocks * self.block_check_cost,
        )

    def calibrated_select_join(
        self,
        stats: IndexStats,
        profiles: Mapping[str, "StrategyProfile"] | None,
        min_observations: int = 1,
    ) -> tuple[dict[str, CostEstimate], bool]:
        """Estimates for all three select+join strategies, observation-blended.

        For each strategy with a *warm* profile (at least ``min_observations``
        recorded executions, see :class:`~repro.planner.calibrate.StrategyProfile`)
        the profile's EWMA-observed selectivity and preprocessing volume
        replace the static constants; cold strategies fall back to the static
        estimate unchanged.  Returns ``(estimates, calibrated)`` where
        ``calibrated`` says whether any profile was warm — the optimizer
        re-ranks by total only in that case, keeping cold planning identical
        to the static heuristic.
        """
        n = stats.num_points

        def _warm(name: str) -> "StrategyProfile | None":
            if profiles is None:
                return None
            profile = profiles.get(name)
            if profile is not None and profile.warm(min_observations):
                return profile
            return None

        counting = _warm("counting")
        marking = _warm("block_marking")
        estimates = {
            "baseline": self.baseline_select_join(n),
            "counting": self.counting_select_join(
                n, selectivity=counting.selectivity if counting else None
            ),
            "block_marking": self.block_marking_select_join(
                None,
                stats,
                selectivity=marking.selectivity if marking else None,
                blocks_checked=marking.blocks_examined if marking else None,
            ),
        }
        calibrated = any(_warm(name) for name in ("baseline", "counting", "block_marking"))
        return estimates, calibrated

    # ------------------------------------------------------------------
    # Sharded execution — beyond the paper (repro.shard)
    # ------------------------------------------------------------------
    def sharded_fanout(
        self,
        base: CostEstimate,
        num_shards: int,
        max_workers: int | None = None,
        coordination_cost: float = 2.0,
    ) -> CostEstimate:
        """Estimate of ``base`` when fanned out over ``num_shards`` shards.

        The dominant work divides by the effective parallelism (shards cannot
        help beyond the worker count), while coordination — task dispatch and
        the global merge/re-rank of per-shard partial results — *grows* with
        the shard count.  The estimate therefore has a minimum: more shards
        stop paying once the per-shard work no longer amortizes the merge.

        Parameters
        ----------
        base:
            The unsharded estimate of the query's dominant work.
        num_shards:
            Number of spatial shards the driving relation is split into.
        max_workers:
            Worker-pool width; defaults to ``num_shards`` (fully parallel).
        coordination_cost:
            Abstract per-shard dispatch + merge overhead.
        """
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        workers = num_shards if max_workers is None else max(1, max_workers)
        parallelism = float(min(num_shards, workers))
        return CostEstimate(
            strategy=f"{base.strategy}[shards={num_shards}]",
            neighborhood_computations=base.neighborhood_computations / parallelism,
            per_tuple_overhead=base.per_tuple_overhead / parallelism,
            per_block_overhead=base.per_block_overhead / parallelism
            + coordination_cost * num_shards,
        )

    # ------------------------------------------------------------------
    # Chained joins — Section 4.2
    # ------------------------------------------------------------------
    def chained_qep2(self, a_size: int, b_size: int) -> CostEstimate:
        """Join Intersection: every A point and every B point gets a neighborhood."""
        return CostEstimate("qep2_join_intersection", neighborhood_computations=float(a_size + b_size))

    def chained_nested(self, a_size: int, k_ab: int, distinct_fraction: float = 0.6) -> CostEstimate:
        """Nested Join with cache: A neighborhoods plus one per *distinct* matched B point."""
        matched_b = a_size * k_ab * distinct_fraction
        return CostEstimate("qep3_nested_cached", neighborhood_computations=float(a_size + matched_b))

    # ------------------------------------------------------------------
    # Two selects — Section 5
    # ------------------------------------------------------------------
    def two_selects_baseline(
        self, index: SpatialIndex, k1: int, k2: int, stats: IndexStats | None = None
    ) -> CostEstimate:
        """Both localities built in full; cost grows with max(k1, k2)."""
        if stats is None:
            stats = IndexStats.from_index(index)
        avg_per_block = max(stats.mean_points_per_nonempty_block, 1.0)
        blocks_needed = (k1 + k2) / avg_per_block
        return CostEstimate("two_selects_baseline", neighborhood_computations=2.0,
                            per_block_overhead=blocks_needed)

    def two_selects_optimized(
        self, index: SpatialIndex, k1: int, k2: int, stats: IndexStats | None = None
    ) -> CostEstimate:
        """Procedure 5: the larger select's locality shrinks to the smaller's extent."""
        if stats is None:
            stats = IndexStats.from_index(index)
        avg_per_block = max(stats.mean_points_per_nonempty_block, 1.0)
        blocks_needed = 2.0 * min(k1, k2) / avg_per_block
        return CostEstimate("two_selects_optimized", neighborhood_computations=2.0,
                            per_block_overhead=blocks_needed)
