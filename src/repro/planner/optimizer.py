"""Physical-strategy selection for the paper's query classes.

The optimizer applies the paper's qualitative guidance:

* **Counting vs Block-Marking** (Section 3.3): Counting wins when the outer
  relation is small/sparse (the per-block preprocessing would not pay off);
  Block-Marking wins when the outer relation is dense, because whole blocks
  are excluded from the join.
* **Unchained join order** (Section 4.1.2): start with the more clustered
  outer relation (smaller cluster coverage) so that more blocks of the shared
  inner relation stay Safe.
* **Chained joins**: the Nested Join plan with the neighborhood cache
  dominates QEP1/QEP2 (Section 4.2.1, Figures 24–25) and is always chosen.
* **Two selects**: evaluate the smaller-k predicate first (Procedure 5 swaps
  internally, so the optimizer only reports the order for explanation).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Mapping

from repro.exceptions import InvalidParameterError
from repro.index.base import SpatialIndex
from repro.index.stats import IndexStats
from repro.planner.cost import CostEstimate, CostModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.planner.calibrate import StrategyProfile

__all__ = [
    "SelectJoinStrategy",
    "choose_select_join_strategy",
    "choose_two_select_order",
    "rank_estimates",
    "Optimizer",
]


class SelectJoinStrategy(str, Enum):
    """Physical strategies for a kNN-select on the inner relation of a kNN-join."""

    BASELINE = "baseline"
    COUNTING = "counting"
    BLOCK_MARKING = "block_marking"


def choose_select_join_strategy(
    outer_index: SpatialIndex | None,
    dense_points_per_block: float = 24.0,
    stats: IndexStats | None = None,
) -> SelectJoinStrategy:
    """Pick Counting or Block-Marking from the outer relation's density.

    The decision statistic is the mean number of points per non-empty outer
    block: above ``dense_points_per_block`` the per-block preprocessing of
    Block-Marking amortizes well (whole blocks are pruned); below it the
    Counting algorithm's per-tuple check is cheaper overall.  This mirrors the
    crossover shown in Figures 20–21.

    ``stats`` lets callers (the engine's statistics cache, or anything else
    that already computed them) avoid the O(n) recomputation; with stats
    supplied, ``outer_index`` may be ``None`` — important for the sharded
    engine, whose relations have per-shard indexes but never a monolithic
    one.
    """
    if stats is None:
        if outer_index is None:
            raise InvalidParameterError(
                "choose_select_join_strategy needs an index or precomputed stats"
            )
        stats = IndexStats.from_index(outer_index)
    if stats.mean_points_per_nonempty_block >= dense_points_per_block:
        return SelectJoinStrategy.BLOCK_MARKING
    return SelectJoinStrategy.COUNTING


def rank_estimates(estimates: Mapping[str, CostEstimate]) -> str:
    """The cheapest strategy name, with a *pinned* deterministic tie-break.

    Equal totals are broken by the lexicographically smaller strategy name —
    never by mapping iteration order or float comparison incidentals — so
    repeated plans of the same query always land on the same strategy (and
    the plan cache never oscillates between equally-priced entries).
    """
    if not estimates:
        raise InvalidParameterError("rank_estimates needs at least one estimate")
    return min(estimates.items(), key=lambda item: (item[1].total, item[0]))[0]


def choose_two_select_order(k1: int, k2: int) -> tuple[int, int]:
    """Return the (first, second) predicate indices (0/1) for two kNN-selects.

    The predicate with the smaller k is evaluated first; its neighborhood then
    bounds the locality of the larger-k predicate (Procedure 5).
    """
    return (0, 1) if k1 <= k2 else (1, 0)


@dataclass
class Optimizer:
    """Facade bundling the per-query-class decisions with a cost model.

    The cost model is exposed for explanation purposes (``explain_*`` methods
    return both the chosen strategy and the estimates that justified it).
    """

    cost_model: CostModel | None = None
    dense_points_per_block: float = 24.0

    def __post_init__(self) -> None:
        if self.cost_model is None:
            self.cost_model = CostModel()

    # ------------------------------------------------------------------
    # Section 3: select (inner) + join
    # ------------------------------------------------------------------
    def select_join_strategy(
        self,
        outer_index: SpatialIndex | None,
        stats: IndexStats | None = None,
        profiles: Mapping[str, "StrategyProfile"] | None = None,
    ) -> SelectJoinStrategy:
        """Strategy for a kNN-select on the inner relation of a kNN-join.

        With warm calibration ``profiles`` (see
        :class:`~repro.planner.calibrate.CalibrationStore`) the choice is the
        cheapest observation-blended estimate; cold, it is the paper's
        density heuristic.
        """
        return self.explain_select_join(outer_index, stats, profiles)["strategy"]  # type: ignore[return-value]

    def explain_select_join(
        self,
        outer_index: SpatialIndex | None,
        stats: IndexStats | None = None,
        profiles: Mapping[str, "StrategyProfile"] | None = None,
    ) -> dict[str, object]:
        """Chosen strategy plus the cost estimates for every alternative.

        The outer relation's block statistics are computed once and threaded
        through every estimate instead of once per call site; with ``stats``
        supplied the index is never touched (and may be ``None``), so
        callers holding cached statistics never trigger an index build.

        When ``profiles`` contain at least one warm strategy profile, the
        estimates are observation-blended
        (:meth:`CostModel.calibrated_select_join`) and the strategy is the
        cheapest of them under :func:`rank_estimates` — feedback-driven
        re-ranking.  With no warm profile the static density heuristic of
        :func:`choose_select_join_strategy` decides, exactly as before
        calibration existed.  The returned mapping carries a ``"calibrated"``
        flag so EXPLAIN can say which path ran.
        """
        assert self.cost_model is not None
        if stats is None:
            if outer_index is None:
                raise InvalidParameterError(
                    "explain_select_join needs an index or precomputed stats"
                )
            stats = IndexStats.from_index(outer_index)
        estimates, calibrated = self.cost_model.calibrated_select_join(stats, profiles)
        if calibrated:
            strategy = SelectJoinStrategy(rank_estimates(estimates))
        else:
            strategy = choose_select_join_strategy(
                outer_index, self.dense_points_per_block, stats
            )
        return {"strategy": strategy, "estimates": estimates, "calibrated": calibrated}

    # ------------------------------------------------------------------
    # Section 4.1: unchained joins
    # ------------------------------------------------------------------
    def unchained_first_join(
        self,
        a_index: SpatialIndex | None,
        c_index: SpatialIndex | None,
        a_stats: IndexStats | None = None,
        c_stats: IndexStats | None = None,
    ) -> str:
        """``"A"`` or ``"C"``: which outer relation's join to evaluate first.

        Each index is consulted only when the matching statistics are not
        supplied, so stats-holding callers may pass ``None`` indexes.
        """
        if a_stats is None:
            if a_index is None:
                raise InvalidParameterError(
                    "unchained_first_join needs an A index or precomputed stats"
                )
            a_stats = IndexStats.from_index(a_index)
        if c_stats is None:
            if c_index is None:
                raise InvalidParameterError(
                    "unchained_first_join needs a C index or precomputed stats"
                )
            c_stats = IndexStats.from_index(c_index)
        return "C" if c_stats.clustering_ratio > a_stats.clustering_ratio else "A"

    # ------------------------------------------------------------------
    # Section 5: two selects
    # ------------------------------------------------------------------
    def two_select_order(self, k1: int, k2: int) -> tuple[int, int]:
        """Evaluation order of two kNN-select predicates (smaller k first)."""
        return choose_two_select_order(k1, k2)

    # ------------------------------------------------------------------
    # Sharded execution — beyond the paper (repro.shard)
    # ------------------------------------------------------------------
    def choose_shard_count(
        self,
        stats: IndexStats,
        max_workers: int | None = None,
        min_points_per_shard: int = 1024,
        max_shards: int = 64,
    ) -> int:
        """Pick a shard count for a relation from its statistics.

        Candidate counts are powers of two that keep at least
        ``min_points_per_shard`` points per shard (tiny shards pay more in
        dispatch/merge coordination than their parallelism earns); among
        them, the :meth:`CostModel.sharded_fanout` estimate of the dominant
        per-point-kNN work picks the cheapest.  With ``max_workers=1`` this
        degenerates to a single shard — the cost model charges coordination
        but credits no parallelism.
        """
        assert self.cost_model is not None
        return min(
            self.explain_shard_count(
                stats, max_workers, min_points_per_shard, max_shards
            )["estimates"].items(),
            key=lambda item: (item[1].total, item[0]),
        )[0]

    def explain_shard_count(
        self,
        stats: IndexStats,
        max_workers: int | None = None,
        min_points_per_shard: int = 1024,
        max_shards: int = 64,
    ) -> dict[str, object]:
        """Shard-count candidates and the fanout estimates that rank them.

        Returns ``{"candidates": (...), "estimates": {count: CostEstimate}}``;
        :meth:`choose_shard_count` picks the cheapest entry.
        """
        assert self.cost_model is not None
        candidates = [1]
        count = 2
        while count <= max_shards and stats.num_points // count >= min_points_per_shard:
            candidates.append(count)
            count *= 2
        base = self.cost_model.baseline_select_join(stats.num_points)
        estimates = {
            c: self.cost_model.sharded_fanout(base, c, max_workers) for c in candidates
        }
        return {"candidates": tuple(candidates), "estimates": estimates}
