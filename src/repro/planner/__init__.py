"""Query planning for two-kNN-predicate queries.

The planner mirrors the paper's reasoning:

* :mod:`repro.planner.plan` — a small logical-plan algebra (relations,
  kNN-selects, kNN-joins, intersections) used to describe QEPs explicitly.
* :mod:`repro.planner.rules` — the validity rules of Sections 1, 3, 4 and 5:
  which push-downs and orderings preserve the query answer and which do not.
* :mod:`repro.planner.cost` — a coarse cost model that counts the expensive
  unit of work (neighborhood computations) each strategy would perform.
* :mod:`repro.planner.optimizer` — picks the physical algorithm for each of
  the paper's query classes (Counting vs Block-Marking, unchained join order,
  chained-join caching, 2-kNN-select ordering).
* :mod:`repro.planner.calibrate` — feedback-driven cost calibration: the
  engines record each execution's observed work, and warm profiles re-rank
  the strategies with observation-blended estimates (see ``docs/planner.md``).
"""

from repro.planner.plan import (
    PlanNode,
    RelationNode,
    KnnSelectNode,
    KnnJoinNode,
    IntersectNode,
    IntersectOnInnerNode,
    explain,
)
from repro.planner.rules import (
    can_push_select_below_outer,
    can_push_select_below_inner,
    chained_plans_equivalent,
    unchained_requires_independent_joins,
    two_selects_require_independent_evaluation,
    validate_plan,
)
from repro.planner.cost import CostModel, CostEstimate
from repro.planner.calibrate import (
    CalibrationStore,
    Observation,
    StrategyProfile,
    observed_cost,
)
from repro.planner.optimizer import (
    SelectJoinStrategy,
    choose_select_join_strategy,
    choose_two_select_order,
    rank_estimates,
    Optimizer,
)

__all__ = [
    "PlanNode",
    "RelationNode",
    "KnnSelectNode",
    "KnnJoinNode",
    "IntersectNode",
    "IntersectOnInnerNode",
    "explain",
    "can_push_select_below_outer",
    "can_push_select_below_inner",
    "chained_plans_equivalent",
    "unchained_requires_independent_joins",
    "two_selects_require_independent_evaluation",
    "validate_plan",
    "CostModel",
    "CostEstimate",
    "CalibrationStore",
    "Observation",
    "StrategyProfile",
    "observed_cost",
    "SelectJoinStrategy",
    "choose_select_join_strategy",
    "choose_two_select_order",
    "rank_estimates",
    "Optimizer",
]
