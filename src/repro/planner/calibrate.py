"""Feedback-driven cost calibration: learn observed costs, correct the model.

The static :class:`~repro.planner.cost.CostModel` ranks strategies with
hard-coded constants (``prune_selectivity``, ``block_check_cost``,
``tuple_check_cost``) chosen to be safely pessimistic.  A long-lived engine,
however, *observes* every execution: how many neighborhoods were actually
computed, how many candidate tuples or blocks the preprocessing phases
touched, how long the whole plan took.  This module closes that loop:

* executors summarize each run as an :class:`Observation` (abstract work
  units in the cost model's own currency, plus wall-clock);
* a :class:`CalibrationStore` folds observations into per-strategy
  :class:`StrategyProfile` s — exponentially weighted moving averages keyed
  by the query's *calibration key* (its plan-cache signature minus the
  forced-strategy component, i.e. relations + index kinds + bucketed k);
* the cost model's ``calibrated_select_join`` path and the optimizer's
  calibrated re-ranking consume warm profiles, falling back to the static
  constants while cold.

Observed costs are expressed in the same abstract units as the estimates
(one unit = one neighborhood computation), so estimated-vs-observed
comparisons — the engine's misprediction check and the Explain feedback
block — are unit-consistent by construction.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.core.stats import PruningStats
from repro.exceptions import InvalidParameterError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.planner.cost import CostModel

__all__ = [
    "Observation",
    "StrategyProfile",
    "CalibrationStore",
    "observed_cost",
]

#: A calibration key: the plan-relevant query shape *without* the forced
#: strategy (so forced-strategy executions warm the same profiles the
#: ``auto`` planner later consumes).  See :meth:`repro.query.query.Query.calibration_key`.
CalibrationKey = tuple

#: Strategies whose dominant overhead is a per-tuple scan (the Counting
#: algorithm's MAXDIST check over every outer point).
_PER_TUPLE_STRATEGIES = frozenset({"counting"})

#: Strategies whose dominant overhead is a per-block preprocessing check
#: (one block-center neighborhood computation per examined block).
_PER_BLOCK_STRATEGIES = frozenset(
    {"block_marking", "unchained-block-marking", "range-inner-block-marking"}
)

#: Strategies whose work is a windowed block *scan* — no neighborhoods at
#: all (or almost none), just cheap per-block intersection tests.  Charged
#: at ``tuple_check_cost`` per examined block so their observed cost never
#: collapses to zero (a zero EWMA would blend a zero estimate into every
#: re-plan, wrecking the misprediction ratio).
_BLOCK_SCAN_STRATEGIES = frozenset(
    {"range-select", "range-intersection", "outer-range-pushdown"}
)


def observed_cost(
    strategy: str, stats: PruningStats | None, cost_model: "CostModel"
) -> float | None:
    """The abstract cost one execution actually paid, in estimate units.

    Uses the same currency as :class:`~repro.planner.cost.CostEstimate`:
    neighborhood computations, plus the strategy's characteristic overhead —
    per-tuple checks for Counting (charged at ``tuple_check_cost``),
    per-block preprocessing (one center neighborhood each, charged at
    ``block_check_cost``) for the Block-Marking family, and cheap windowed
    block tests (charged at ``tuple_check_cost``) for the range scans.
    Other strategies are charged their neighborhood computations only.

    Returns ``None`` when no counters were collected (nothing to learn from).
    """
    if stats is None:
        return None
    name = strategy.removeprefix("sharded:")
    total = float(stats.neighborhoods_computed)
    if name in _PER_TUPLE_STRATEGIES:
        total += stats.points_considered * cost_model.tuple_check_cost
    if name in _PER_BLOCK_STRATEGIES:
        total += stats.blocks_examined * cost_model.block_check_cost
    if name in _BLOCK_SCAN_STRATEGIES:
        total += stats.blocks_examined * cost_model.tuple_check_cost
    return total


@dataclass(frozen=True, slots=True)
class Observation:
    """One executed plan, summarized for the calibration store.

    Attributes
    ----------
    strategy:
        The executed physical strategy (the plan's ``strategy`` string).
    observed_total:
        Abstract cost actually paid, from :func:`observed_cost`.
    wall_seconds:
        Wall-clock duration of the execution (informational; ranking uses
        the abstract units).
    estimated_total:
        The estimate the plan was served with (``None`` when unknown).
    neighborhoods:
        Neighborhood computations performed.
    points_considered:
        Outer points the strategy looked at (survivors + pruned).
    blocks_examined:
        Blocks touched by a preprocessing phase.
    """

    strategy: str
    observed_total: float
    wall_seconds: float = 0.0
    estimated_total: float | None = None
    neighborhoods: int = 0
    points_considered: int = 0
    blocks_examined: int = 0

    @property
    def selectivity(self) -> float | None:
        """Observed survivor fraction (``None`` when nothing was considered)."""
        if self.points_considered == 0:
            return None
        return self.neighborhoods / self.points_considered


@dataclass(frozen=True, slots=True)
class StrategyProfile:
    """EWMA summary of every observation of one strategy under one key.

    ``selectivity``, ``blocks_examined`` and ``observed_total`` are
    exponentially weighted moving averages, so a drifting workload (data
    mutations, changing k) is tracked instead of averaged away.
    """

    strategy: str
    observations: int = 0
    observed_total: float = 0.0
    selectivity: float | None = None
    points_considered: float = 0.0
    blocks_examined: float = 0.0
    wall_seconds: float = 0.0
    estimated_total: float | None = None

    def warm(self, min_observations: int) -> bool:
        """Whether enough executions were observed to trust this profile."""
        return self.observations >= min_observations

    def absorb(self, obs: Observation, alpha: float) -> "StrategyProfile":
        """Fold one observation in (EWMA with weight ``alpha`` on the new value)."""
        if self.observations == 0:
            return StrategyProfile(
                strategy=self.strategy,
                observations=1,
                observed_total=obs.observed_total,
                selectivity=obs.selectivity,
                points_considered=float(obs.points_considered),
                blocks_examined=float(obs.blocks_examined),
                wall_seconds=obs.wall_seconds,
                estimated_total=obs.estimated_total,
            )

        def ewma(old: float, new: float) -> float:
            return (1.0 - alpha) * old + alpha * new

        selectivity = self.selectivity
        if obs.selectivity is not None:
            selectivity = (
                obs.selectivity
                if selectivity is None
                else ewma(selectivity, obs.selectivity)
            )
        return replace(
            self,
            observations=self.observations + 1,
            observed_total=ewma(self.observed_total, obs.observed_total),
            selectivity=selectivity,
            points_considered=ewma(self.points_considered, float(obs.points_considered)),
            blocks_examined=ewma(self.blocks_examined, float(obs.blocks_examined)),
            wall_seconds=ewma(self.wall_seconds, obs.wall_seconds),
            estimated_total=obs.estimated_total,
        )


class CalibrationStore:
    """Thread-safe per-(query shape, strategy) observation store.

    Parameters
    ----------
    alpha:
        EWMA weight of the newest observation (higher adapts faster).
    min_observations:
        How many observations a profile needs before the optimizer trusts it
        over the static constants (the cold-start fallback threshold).
    """

    def __init__(self, alpha: float = 0.3, min_observations: int = 1) -> None:
        if not 0.0 < alpha <= 1.0:
            raise InvalidParameterError("alpha must be in (0, 1]")
        if min_observations < 1:
            raise InvalidParameterError("min_observations must be at least 1")
        self.alpha = alpha
        self.min_observations = min_observations
        self._profiles: dict[CalibrationKey, dict[str, StrategyProfile]] = {}
        self._counts: dict[CalibrationKey, int] = {}
        self._lock = threading.Lock()
        self.observations = 0

    def record(self, key: CalibrationKey, obs: Observation) -> StrategyProfile:
        """Fold ``obs`` into the profile for ``(key, obs.strategy)``."""
        name = obs.strategy.removeprefix("sharded:")
        with self._lock:
            by_strategy = self._profiles.setdefault(key, {})
            profile = by_strategy.get(name) or StrategyProfile(strategy=name)
            profile = profile.absorb(obs, self.alpha)
            by_strategy[name] = profile
            self._counts[key] = self._counts.get(key, 0) + 1
            self.observations += 1
            return profile

    def profiles(self, key: CalibrationKey) -> dict[str, StrategyProfile]:
        """Snapshot of the per-strategy profiles recorded under ``key``."""
        with self._lock:
            return dict(self._profiles.get(key, ()))

    def profile(self, key: CalibrationKey, strategy: str) -> StrategyProfile | None:
        """The profile for one strategy under ``key``, or ``None``."""
        with self._lock:
            by_strategy = self._profiles.get(key)
            if by_strategy is None:
                return None
            return by_strategy.get(strategy.removeprefix("sharded:"))

    def count(self, key: CalibrationKey) -> int:
        """Total observations recorded under ``key`` (all strategies)."""
        with self._lock:
            return self._counts.get(key, 0)

    def keys(self) -> list[CalibrationKey]:
        """The calibration keys with at least one observation."""
        with self._lock:
            return list(self._profiles)

    def invalidate_relation(self, name: str) -> int:
        """Drop every key whose shape references relation ``name``.

        Calibration normally *survives* mutations (the EWMA adapts, and
        observed selectivities drift slowly with the data), so the engines do
        not call this on every insert; it exists for owners that replace a
        relation wholesale and want a clean cold start.
        """
        with self._lock:
            doomed = [key for key in self._profiles if _mentions(key, name)]
            for key in doomed:
                del self._profiles[key]
                self._counts.pop(key, None)
            return len(doomed)

    def clear(self) -> None:
        """Drop every profile (the global observation counter is kept)."""
        with self._lock:
            self._profiles.clear()
            self._counts.clear()

    def metrics(self) -> dict[str, object]:
        """Counters describing the store's contents."""
        with self._lock:
            return {
                "keys": len(self._profiles),
                "observations": self.observations,
                "profiles": sum(len(v) for v in self._profiles.values()),
            }

    # ------------------------------------------------------------------
    # Persistence (repro.durable warm restarts)
    # ------------------------------------------------------------------
    def to_state(self) -> dict[str, object]:
        """Snapshot the store as a JSON-able dict (see :meth:`from_state`).

        Calibration keys are nested tuples of strings and ints; they are
        emitted as nested lists (JSON has no tuples) and re-tuplified on
        load, so a profile learned before a restart is found under exactly
        the same key after it.
        """
        with self._lock:
            return {
                "alpha": self.alpha,
                "min_observations": self.min_observations,
                "observations": self.observations,
                "profiles": [
                    {
                        "key": _key_to_json(key),
                        "count": self._counts.get(key, 0),
                        "strategies": [
                            {
                                "strategy": p.strategy,
                                "observations": p.observations,
                                "observed_total": p.observed_total,
                                "selectivity": p.selectivity,
                                "points_considered": p.points_considered,
                                "blocks_examined": p.blocks_examined,
                                "wall_seconds": p.wall_seconds,
                                "estimated_total": p.estimated_total,
                            }
                            for p in by_strategy.values()
                        ],
                    }
                    for key, by_strategy in self._profiles.items()
                ],
            }

    @classmethod
    def from_state(cls, state: dict[str, object]) -> "CalibrationStore":
        """Rebuild a store from a :meth:`to_state` snapshot.

        Raises :class:`InvalidParameterError` (a ``ValueError``) when the
        snapshot is structurally invalid, so a corrupted state file surfaces
        at open instead of as silently cold profiles.
        """
        try:
            store = cls(
                alpha=float(state["alpha"]),  # type: ignore[arg-type]
                min_observations=int(state["min_observations"]),  # type: ignore[arg-type]
            )
            for entry in state["profiles"]:  # type: ignore[union-attr]
                key = _key_from_json(entry["key"])
                store._counts[key] = int(entry["count"])
                store._profiles[key] = {
                    p["strategy"]: StrategyProfile(
                        strategy=p["strategy"],
                        observations=int(p["observations"]),
                        observed_total=float(p["observed_total"]),
                        selectivity=(
                            None if p["selectivity"] is None else float(p["selectivity"])
                        ),
                        points_considered=float(p["points_considered"]),
                        blocks_examined=float(p["blocks_examined"]),
                        wall_seconds=float(p["wall_seconds"]),
                        estimated_total=(
                            None
                            if p["estimated_total"] is None
                            else float(p["estimated_total"])
                        ),
                    )
                    for p in entry["strategies"]
                }
            store.observations = int(state.get("observations", 0))  # type: ignore[arg-type]
        except (KeyError, TypeError, AttributeError) as exc:
            raise InvalidParameterError(
                f"invalid calibration state snapshot: {exc!r}"
            ) from exc
        return store

    def __len__(self) -> int:
        return len(self._profiles)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CalibrationStore(keys={len(self._profiles)}, "
            f"observations={self.observations}, alpha={self.alpha})"
        )


def _key_to_json(key: object) -> object:
    """Render a nested-tuple calibration key as nested JSON lists."""
    if isinstance(key, tuple):
        return [_key_to_json(part) for part in key]
    return key


def _key_from_json(key: object) -> object:
    """Re-tuplify a :func:`_key_to_json` rendering (lists become tuples)."""
    if isinstance(key, list):
        return tuple(_key_from_json(part) for part in key)
    return key


def _mentions(key: CalibrationKey, name: str) -> bool:
    """Whether a (nested-tuple) calibration key references relation ``name``."""
    for part in key if isinstance(key, tuple) else (key,):
        if isinstance(part, tuple):
            if _mentions(part, name):
                return True
        elif part == name:
            return True
    return False
