"""The ``Neighborhood`` result type returned by every kNN computation.

A neighborhood is the answer of ``getkNN(p, k)``: the ``k`` points nearest to
the query point, ordered by ``(distance, pid)`` so that ties are resolved
deterministically.  The class exposes exactly the accessors the paper's
pseudocode uses: ``nearest``, ``farthest``, membership tests, intersection and
"farthest from another point" (needed by the 2-kNN-select algorithm).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.geometry.distance import distances_to_point
from repro.geometry.point import Point, PointArray

__all__ = ["Neighborhood"]


class Neighborhood:
    """The k nearest neighbors of a query point.

    Parameters
    ----------
    center:
        The query point whose neighborhood this is.
    k:
        The requested number of neighbors.  The neighborhood may contain fewer
        points when the dataset itself has fewer than ``k`` points.
    members:
        The neighbor points, in ascending ``(distance, pid)`` order.
    distances:
        The distance of each member from ``center`` (same order).
    """

    __slots__ = ("center", "k", "_members", "_distances", "_pid_set", "_coords")

    def __init__(
        self,
        center: Point,
        k: int,
        members: Sequence[Point],
        distances: Sequence[float],
    ) -> None:
        if k <= 0:
            raise InvalidParameterError(f"k must be positive, got {k}")
        if len(members) != len(distances):
            raise InvalidParameterError("members and distances must have equal length")
        self.center = center
        self.k = int(k)
        self._members: tuple[Point, ...] = tuple(members)
        self._distances: tuple[float, ...] = tuple(float(d) for d in distances)
        self._pid_set = frozenset(p.pid for p in self._members)
        self._coords: PointArray | None = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_candidates(cls, center: Point, k: int, candidates: Iterable[Point]) -> "Neighborhood":
        """Build the neighborhood by ranking ``candidates`` around ``center``.

        The candidates are ranked by ``(distance, pid)`` and the top ``k`` are
        kept.  This is the common final step of both the locality-based and
        the brute-force kNN searches.
        """
        ranked = sorted(
            ((center.distance_to(p), p.pid, p) for p in candidates),
            key=lambda t: (t[0], t[1]),
        )[: max(k, 0)]
        return cls(center, k, [p for _, __, p in ranked], [d for d, __, ___ in ranked])

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def points(self) -> tuple[Point, ...]:
        """The neighbors in ascending distance order."""
        return self._members

    @property
    def distances(self) -> tuple[float, ...]:
        """Distances of the neighbors from :attr:`center` (ascending)."""
        return self._distances

    @property
    def is_full(self) -> bool:
        """True when the neighborhood actually holds ``k`` points."""
        return len(self._members) >= self.k

    @property
    def nearest(self) -> Point:
        """The nearest neighbor (the paper's ``nbr.nearest``)."""
        if not self._members:
            raise InvalidParameterError("empty neighborhood has no nearest member")
        return self._members[0]

    @property
    def farthest(self) -> Point:
        """The farthest of the k neighbors (the paper's ``nbr.farthest``)."""
        if not self._members:
            raise InvalidParameterError("empty neighborhood has no farthest member")
        return self._members[-1]

    @property
    def nearest_distance(self) -> float:
        """Distance from the center to the nearest neighbor."""
        if not self._distances:
            raise InvalidParameterError("empty neighborhood has no nearest member")
        return self._distances[0]

    @property
    def farthest_distance(self) -> float:
        """Distance from the center to the farthest neighbor."""
        if not self._distances:
            raise InvalidParameterError("empty neighborhood has no farthest member")
        return self._distances[-1]

    def __len__(self) -> int:
        return len(self._members)

    def __iter__(self) -> Iterator[Point]:
        return iter(self._members)

    def __contains__(self, point: Point) -> bool:
        return point.pid in self._pid_set

    def contains_pid(self, pid: int) -> bool:
        """Membership test by point identifier."""
        return pid in self._pid_set

    @property
    def pids(self) -> frozenset[int]:
        """The identifiers of the member points."""
        return self._pid_set

    # ------------------------------------------------------------------
    # Queries relative to *other* points (used by the algorithms)
    # ------------------------------------------------------------------
    @property
    def coords(self) -> PointArray:
        """Member coordinates as an ``(n, 2)`` array (lazily built)."""
        if self._coords is None:
            if self._members:
                self._coords = np.array([(p.x, p.y) for p in self._members], dtype=np.float64)
            else:
                self._coords = np.empty((0, 2), dtype=np.float64)
        return self._coords

    def distance_to_nearest_member(self, q: Point) -> float:
        """Distance from ``q`` to the member closest to ``q``.

        This is the Counting algorithm's *search threshold*: the distance from
        an outer point ``e1`` to the nearest point in the neighborhood of the
        select's focal point.
        """
        if not self._members:
            raise InvalidParameterError("empty neighborhood")
        return float(distances_to_point(self.coords, q).min())

    def distance_to_farthest_member(self, q: Point) -> float:
        """Distance from ``q`` to the member farthest from ``q``.

        This is the 2-kNN-select algorithm's search threshold (the paper's
        ``nbr1.farthestTof2``).
        """
        if not self._members:
            raise InvalidParameterError("empty neighborhood")
        return float(distances_to_point(self.coords, q).max())

    def farthest_member_from(self, q: Point) -> Point:
        """The member that is farthest from ``q``."""
        if not self._members:
            raise InvalidParameterError("empty neighborhood")
        dists = distances_to_point(self.coords, q)
        return self._members[int(dists.argmax())]

    # ------------------------------------------------------------------
    # Set operations
    # ------------------------------------------------------------------
    def intersection(self, other: "Neighborhood") -> list[Point]:
        """The paper's ``intersect(P, Q)``: members common to both neighborhoods.

        Points are matched by ``pid`` and returned in this neighborhood's
        distance order.
        """
        other_pids = other._pid_set
        return [p for p in self._members if p.pid in other_pids]

    def intersection_pids(self, other: "Neighborhood") -> frozenset[int]:
        """Identifiers common to both neighborhoods."""
        return self._pid_set & other._pid_set

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Neighborhood(center={self.center!r}, k={self.k}, size={len(self._members)})"
        )
