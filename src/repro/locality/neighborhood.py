"""The ``Neighborhood`` result type returned by every kNN computation.

A neighborhood is the answer of ``getkNN(p, k)``: the ``k`` points nearest to
the query point, ordered by ``(distance, pid)`` so that ties are resolved
deterministically.  The class exposes exactly the accessors the paper's
pseudocode uses: ``nearest``, ``farthest``, membership tests, intersection and
"farthest from another point" (needed by the 2-kNN-select algorithm).

Since the columnar refactor a neighborhood is **lazy**: the kNN kernels build
it from a :class:`~repro.storage.pointstore.PointStore` plus a row-index array
and the already-computed distance array (:meth:`Neighborhood.from_rows`), and
:class:`~repro.geometry.point.Point` objects are materialized only when a
caller actually asks for them (the result boundary).  Algorithms that only
need distances, pids or coordinates — thresholds, intersections, merges —
read the arrays directly and never touch point objects.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.geometry.distance import distances_to_point
from repro.geometry.point import Point, PointArray
from repro.storage.pointstore import PointStore

__all__ = ["Neighborhood"]


class Neighborhood:
    """The k nearest neighbors of a query point.

    Parameters
    ----------
    center:
        The query point whose neighborhood this is.
    k:
        The requested number of neighbors.  The neighborhood may contain fewer
        points when the dataset itself has fewer than ``k`` points.
    members:
        The neighbor points, in ascending ``(distance, pid)`` order.
    distances:
        The distance of each member from ``center`` (same order).
    """

    __slots__ = (
        "center",
        "k",
        "_members",
        "_distances",
        "_dist_arr",
        "_pid_arr",
        "_pid_set",
        "_coords",
        "_store",
        "_rows",
    )

    def __init__(
        self,
        center: Point,
        k: int,
        members: Sequence[Point],
        distances: Sequence[float],
    ) -> None:
        if k <= 0:
            raise InvalidParameterError(f"k must be positive, got {k}")
        if len(members) != len(distances):
            raise InvalidParameterError("members and distances must have equal length")
        self.center = center
        self.k = int(k)
        self._members: tuple[Point, ...] | None = tuple(members)
        self._distances: tuple[float, ...] | None = None
        self._dist_arr: np.ndarray = np.asarray(distances, dtype=np.float64)
        self._pid_arr: np.ndarray | None = None
        self._pid_set: frozenset[int] | None = None
        self._coords: PointArray | None = None
        self._store: PointStore | None = None
        self._rows: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(
        cls,
        center: Point,
        k: int,
        store: PointStore,
        rows: np.ndarray,
        distances: np.ndarray,
    ) -> "Neighborhood":
        """Build a lazy neighborhood from store rows (the columnar kNN path).

        ``rows`` are store row indices in ascending ``(distance, pid)`` order
        and ``distances`` their (already computed) distances from ``center``.
        No point objects are created until a member accessor is used.
        """
        if k <= 0:
            raise InvalidParameterError(f"k must be positive, got {k}")
        nbr = cls.__new__(cls)
        nbr.center = center
        nbr.k = int(k)
        nbr._members = None
        nbr._distances = None
        nbr._dist_arr = np.ascontiguousarray(distances, dtype=np.float64)
        nbr._pid_arr = None
        nbr._pid_set = None
        nbr._coords = None
        nbr._store = store
        nbr._rows = np.ascontiguousarray(rows)
        return nbr

    @classmethod
    def from_candidates(cls, center: Point, k: int, candidates: Iterable[Point]) -> "Neighborhood":
        """Build the neighborhood by ranking ``candidates`` around ``center``.

        The candidates are ranked by ``(distance, pid)`` and the top ``k`` are
        kept.  This is the object-path reference ranking (also the seed
        implementation's final step); the columnar kernels in
        :mod:`repro.locality.knn` produce identical neighborhoods.
        """
        ranked = sorted(
            ((center.distance_to(p), p.pid, p) for p in candidates),
            key=lambda t: (t[0], t[1]),
        )[: max(k, 0)]
        return cls(center, k, [p for _, __, p in ranked], [d for d, __, ___ in ranked])

    def __reduce__(self):
        """Pickle in eager form (drop the store reference).

        Lazy neighborhoods reference their relation's whole store; results
        shipped across process boundaries (the shard worker pool) must not
        drag the store along, so pickling materializes the members first.
        """
        return (
            _rebuild_neighborhood,
            (self.center, self.k, self.points, self.distances),
        )

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def points(self) -> tuple[Point, ...]:
        """The neighbors in ascending distance order (materialized lazily)."""
        if self._members is None:
            assert self._store is not None and self._rows is not None
            self._members = tuple(self._store.materialize(self._rows))
        return self._members

    @property
    def distances(self) -> tuple[float, ...]:
        """Distances of the neighbors from :attr:`center` (ascending)."""
        if self._distances is None:
            self._distances = tuple(float(d) for d in self._dist_arr)
        return self._distances

    @property
    def distance_array(self) -> np.ndarray:
        """Member distances as a float64 array (no materialization)."""
        return self._dist_arr

    @property
    def pid_array(self) -> np.ndarray:
        """Member pids as an int64 array (no materialization)."""
        if self._pid_arr is None:
            if self._store is not None and self._rows is not None:
                self._pid_arr = self._store.pids[self._rows]
            else:
                members = self._members or ()
                self._pid_arr = np.fromiter(
                    (p.pid for p in members), dtype=np.int64, count=len(members)
                )
        return self._pid_arr

    @property
    def is_full(self) -> bool:
        """True when the neighborhood actually holds ``k`` points."""
        return len(self._dist_arr) >= self.k

    @property
    def nearest(self) -> Point:
        """The nearest neighbor (the paper's ``nbr.nearest``)."""
        if not len(self._dist_arr):
            raise InvalidParameterError("empty neighborhood has no nearest member")
        return self._member_at(0)

    @property
    def farthest(self) -> Point:
        """The farthest of the k neighbors (the paper's ``nbr.farthest``)."""
        if not len(self._dist_arr):
            raise InvalidParameterError("empty neighborhood has no farthest member")
        return self._member_at(len(self._dist_arr) - 1)

    def _member_at(self, i: int) -> Point:
        """One member point, materializing only that row when still lazy."""
        if self._members is not None:
            return self._members[i]
        assert self._store is not None and self._rows is not None
        return self._store.point_at(int(self._rows[i]))

    @property
    def nearest_distance(self) -> float:
        """Distance from the center to the nearest neighbor."""
        if not len(self._dist_arr):
            raise InvalidParameterError("empty neighborhood has no nearest member")
        return float(self._dist_arr[0])

    @property
    def farthest_distance(self) -> float:
        """Distance from the center to the farthest neighbor."""
        if not len(self._dist_arr):
            raise InvalidParameterError("empty neighborhood has no farthest member")
        return float(self._dist_arr[-1])

    def __len__(self) -> int:
        return len(self._dist_arr)

    def __iter__(self) -> Iterator[Point]:
        return iter(self.points)

    def __contains__(self, point: Point) -> bool:
        return point.pid in self.pids

    def contains_pid(self, pid: int) -> bool:
        """Membership test by point identifier."""
        return pid in self.pids

    @property
    def pids(self) -> frozenset[int]:
        """The identifiers of the member points."""
        if self._pid_set is None:
            self._pid_set = frozenset(self.pid_array.tolist())
        return self._pid_set

    # ------------------------------------------------------------------
    # Queries relative to *other* points (used by the algorithms)
    # ------------------------------------------------------------------
    @property
    def coords(self) -> PointArray:
        """Member coordinates as an ``(n, 2)`` array (lazily gathered)."""
        if self._coords is None:
            if self._store is not None and self._rows is not None:
                self._coords = self._store.coords(self._rows)
            elif self._members:
                self._coords = np.array(
                    [(p.x, p.y) for p in self._members], dtype=np.float64
                )
            else:
                self._coords = np.empty((0, 2), dtype=np.float64)
        return self._coords

    def distance_to_nearest_member(self, q: Point) -> float:
        """Distance from ``q`` to the member closest to ``q``.

        This is the Counting algorithm's *search threshold*: the distance from
        an outer point ``e1`` to the nearest point in the neighborhood of the
        select's focal point.
        """
        if not len(self._dist_arr):
            raise InvalidParameterError("empty neighborhood")
        return float(distances_to_point(self.coords, q).min())

    def distance_to_farthest_member(self, q: Point) -> float:
        """Distance from ``q`` to the member farthest from ``q``.

        This is the 2-kNN-select algorithm's search threshold (the paper's
        ``nbr1.farthestTof2``).
        """
        if not len(self._dist_arr):
            raise InvalidParameterError("empty neighborhood")
        return float(distances_to_point(self.coords, q).max())

    def farthest_member_from(self, q: Point) -> Point:
        """The member that is farthest from ``q``."""
        if not len(self._dist_arr):
            raise InvalidParameterError("empty neighborhood")
        dists = distances_to_point(self.coords, q)
        return self._member_at(int(dists.argmax()))

    # ------------------------------------------------------------------
    # Set operations
    # ------------------------------------------------------------------
    def intersection(self, other: "Neighborhood") -> list[Point]:
        """The paper's ``intersect(P, Q)``: members common to both neighborhoods.

        Points are matched by ``pid`` via one vectorized ``isin`` over the pid
        columns and returned in this neighborhood's distance order; only the
        surviving members are materialized.
        """
        if not len(self._dist_arr) or not len(other._dist_arr):
            return []
        hits = np.nonzero(np.isin(self.pid_array, other.pid_array))[0]
        if not len(hits):
            return []
        if self._members is not None:
            return [self._members[i] for i in hits]
        assert self._store is not None and self._rows is not None
        return self._store.materialize(self._rows[hits])

    def intersection_pids(self, other: "Neighborhood") -> frozenset[int]:
        """Identifiers common to both neighborhoods."""
        return self.pids & other.pids

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Neighborhood(center={self.center!r}, k={self.k}, size={len(self._dist_arr)})"
        )


def _rebuild_neighborhood(
    center: Point, k: int, members: tuple[Point, ...], distances: tuple[float, ...]
) -> Neighborhood:
    """Unpickle helper: rebuild an eager neighborhood (see ``__reduce__``)."""
    return Neighborhood(center, k, members, distances)
