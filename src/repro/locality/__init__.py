"""Neighborhood (kNN) computation via the locality algorithm of [15].

Definitions 1 and 2 of the paper:

* the **neighborhood** of a point ``p`` is the set of its ``k`` nearest
  neighboring points;
* the **locality** of ``p`` is a set of index blocks inside which the
  neighborhood of ``p`` is guaranteed to exist.

The library computes neighborhoods by first building the minimal locality
(Sankaranarayanan, Samet, Varshney; Computers & Graphics 2007) and then
scanning only the points in the locality's blocks.
"""

from repro.locality.neighborhood import Neighborhood
from repro.locality.knn import (
    Locality,
    build_locality,
    get_knn,
    neighborhood_from_blocks,
    neighborhood_from_blocks_object,
)
from repro.locality.batch import get_knn_batch
from repro.locality.brute import brute_force_knn

__all__ = [
    "Neighborhood",
    "Locality",
    "build_locality",
    "get_knn",
    "get_knn_batch",
    "neighborhood_from_blocks",
    "neighborhood_from_blocks_object",
    "brute_force_knn",
]
