"""Locality-based kNN search (the paper's ``getkNN`` primitive).

The locality algorithm of Sankaranarayanan, Samet and Varshney [15] builds the
minimal set of index blocks guaranteed to contain the k nearest neighbors of a
query point, and only then looks at actual points:

1. Scan blocks in increasing **MAXDIST** order from the query point, summing
   the per-block point counts, until the running count reaches ``k``.  Record
   ``M``, the largest MAXDIST seen so far.  At this moment at least ``k``
   points are known to lie within distance ``M`` of the query point, so no
   block farther than ``M`` (in MINDIST terms) can contribute a neighbor.
2. The locality is the set of blocks whose **MINDIST** from the query point is
   at most ``M``.
3. The neighborhood is computed by ranking the points of the locality blocks.

``get_knn`` is the single kNN entry point used by every operator and algorithm
in the library.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import EmptyDatasetError, InvalidParameterError
from repro.geometry.point import Point
from repro.index.base import SpatialIndex
from repro.index.block import Block
from repro.locality.neighborhood import Neighborhood

__all__ = ["Locality", "build_locality", "get_knn", "neighborhood_from_blocks"]


@dataclass(frozen=True, slots=True)
class Locality:
    """The locality of a query point: blocks guaranteed to hold its kNN.

    Attributes
    ----------
    center:
        The query point.
    k:
        The neighborhood size the locality was built for.
    blocks:
        The locality blocks.
    maxdist_bound:
        The bound ``M`` from the MAXDIST phase: at least ``k`` points lie
        within distance ``M`` of ``center`` (``inf`` when the index holds
        fewer than ``k`` points).
    """

    center: Point
    k: int
    blocks: tuple[Block, ...]
    maxdist_bound: float

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    @property
    def num_points(self) -> int:
        return sum(b.count for b in self.blocks)


def build_locality(index: SpatialIndex, p: Point, k: int) -> Locality:
    """Build the minimal locality of ``p`` for a ``k``-neighborhood.

    Follows [15]: a MAXDIST-order scan determines the bound ``M``; the locality
    is every block whose MINDIST from ``p`` does not exceed ``M``.  Empty
    blocks are excluded (they cannot contribute neighbors).
    """
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    if index.num_points == 0:
        raise EmptyDatasetError("cannot build a locality over an empty index")

    blocks = index.blocks
    counts = index.block_counts
    maxdists = index.maxdists(p)
    mindists = index.mindists(p)

    # Phase 1: MAXDIST order, accumulate counts until we have k points.
    order = np.lexsort((np.arange(len(blocks)), maxdists))
    running = 0
    bound = float("inf")
    for i in order:
        if counts[i] == 0:
            continue
        running += int(counts[i])
        if running >= k:
            bound = float(maxdists[i])
            break

    # Phase 2: the locality is every non-empty block with MINDIST <= bound.
    if np.isinf(bound):
        selected = [b for b, c in zip(blocks, counts) if c > 0]
    else:
        mask = (mindists <= bound) & (counts > 0)
        selected = [blocks[i] for i in np.nonzero(mask)[0]]
    return Locality(center=p, k=k, blocks=tuple(selected), maxdist_bound=bound)


def neighborhood_from_blocks(
    p: Point,
    k: int,
    blocks: Sequence[Block],
) -> Neighborhood:
    """Rank the points of ``blocks`` around ``p`` and keep the nearest ``k``.

    This is the final step of ``getkNN`` and is also used directly by the
    2-kNN-select algorithm, which computes a neighborhood from a *restricted*
    locality (Procedure 5).
    """
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    candidate_blocks = [b for b in blocks if b.count > 0]
    if not candidate_blocks:
        return Neighborhood(p, k, [], [])

    coords = np.concatenate([b.coords for b in candidate_blocks], axis=0)
    points: list[Point] = []
    for b in candidate_blocks:
        points.extend(b.points)
    diff = coords - np.array([p.x, p.y], dtype=np.float64)
    dists = np.hypot(diff[:, 0], diff[:, 1])
    pids = np.fromiter((pt.pid for pt in points), dtype=np.int64, count=len(points))

    if len(points) > k:
        # Partial selection first, then an exact (distance, pid) sort of the head.
        head = k_extended(k, dists)
        if head < len(points):
            idx = np.argpartition(dists, head - 1)[:head]
        else:
            idx = np.arange(len(points))
        idx = idx[np.lexsort((pids[idx], dists[idx]))][:k]
    else:
        idx = np.lexsort((pids, dists))
    members = [points[i] for i in idx]
    member_dists = [float(dists[i]) for i in idx]
    return Neighborhood(p, k, members, member_dists)


def k_extended(k: int, dists: np.ndarray) -> int:
    """Number of head candidates to fully sort after ``argpartition``.

    ``argpartition`` guarantees the ``k`` smallest distances occupy the first
    ``k`` slots but leaves ties straddling the boundary in arbitrary order.  To
    keep the deterministic ``(distance, pid)`` tie-break exact we widen the head
    to include every candidate whose distance equals the k-th smallest one.
    """
    if len(dists) <= k:
        return len(dists)
    kth = np.partition(dists, k - 1)[k - 1]
    return int((dists <= kth).sum())


def get_knn(index: SpatialIndex, p: Point, k: int) -> Neighborhood:
    """Return the ``k`` nearest neighbors of ``p`` among the points of ``index``.

    This is the paper's ``getkNN(p, k)``.  The locality is built first; the
    neighborhood is then computed only from the locality's blocks.
    """
    locality = build_locality(index, p, k)
    return neighborhood_from_blocks(p, k, locality.blocks)
