"""Locality-based kNN search (the paper's ``getkNN`` primitive).

The locality algorithm of Sankaranarayanan, Samet and Varshney [15] builds the
minimal set of index blocks guaranteed to contain the k nearest neighbors of a
query point, and only then looks at actual points:

1. Scan blocks in increasing **MAXDIST** order from the query point, summing
   the per-block point counts, until the running count reaches ``k``.  Record
   ``M``, the largest MAXDIST seen so far.  At this moment at least ``k``
   points are known to lie within distance ``M`` of the query point, so no
   block farther than ``M`` (in MINDIST terms) can contribute a neighbor.
2. The locality is the set of blocks whose **MINDIST** from the query point is
   at most ``M``.
3. The neighborhood is computed by ranking the points of the locality blocks.

``get_knn`` is the single kNN entry point used by every operator and algorithm
in the library.

Ranking is columnar: the locality blocks' ``int32`` member-row arrays are
concatenated and distance + ``(distance, pid)`` ranking run as vectorized
kernels over the store's columns; the winning rows feed a *lazy*
:class:`Neighborhood` and no :class:`Point` object is created here.
:func:`neighborhood_from_blocks_object` keeps the seed's object-path ranking
as the parity oracle (and as the "seed representation" baseline of the
figure-29 columnar-speedup benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro import kernels
from repro.exceptions import EmptyDatasetError, InvalidParameterError
from repro.geometry.point import Point
from repro.index.base import SpatialIndex
from repro.index.block import Block
from repro.locality.neighborhood import Neighborhood
from repro.storage.pointstore import PointStore

__all__ = [
    "Locality",
    "build_locality",
    "get_knn",
    "neighborhood_from_blocks",
    "neighborhood_from_blocks_object",
    "maxdist_phase_bound",
    "rank_rows",
]


@dataclass(frozen=True, slots=True)
class Locality:
    """The locality of a query point: blocks guaranteed to hold its kNN.

    Attributes
    ----------
    center:
        The query point.
    k:
        The neighborhood size the locality was built for.
    blocks:
        The locality blocks.
    maxdist_bound:
        The bound ``M`` from the MAXDIST phase: at least ``k`` points lie
        within distance ``M`` of ``center`` (``inf`` when the index holds
        fewer than ``k`` points).
    """

    center: Point
    k: int
    blocks: tuple[Block, ...]
    maxdist_bound: float

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    @property
    def num_points(self) -> int:
        return sum(b.count for b in self.blocks)


def maxdist_phase_bound(counts: np.ndarray, maxdists: np.ndarray, k: int) -> float:
    """The MAXDIST-phase bound ``M``: smallest prefix of the MAXDIST ordering
    whose blocks hold at least ``k`` points.

    Equivalent to scanning blocks in stable MAXDIST order and accumulating
    counts until ``k`` is reached (the crossing block cannot be empty, so
    skipping empty blocks changes nothing), but runs as one cumsum instead of
    a Python loop.
    """
    order = np.lexsort((np.arange(len(maxdists)), maxdists))
    running = np.cumsum(counts[order])
    pos = int(np.searchsorted(running, k, side="left"))
    if pos >= len(order):
        return float("inf")
    return float(maxdists[order[pos]])


def build_locality(index: SpatialIndex, p: Point, k: int) -> Locality:
    """Build the minimal locality of ``p`` for a ``k``-neighborhood.

    Follows [15]: a MAXDIST-order scan determines the bound ``M``; the locality
    is every block whose MINDIST from ``p`` does not exceed ``M``.  Empty
    blocks are excluded (they cannot contribute neighbors).
    """
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    if index.num_points == 0:
        raise EmptyDatasetError("cannot build a locality over an empty index")

    blocks = index.blocks
    counts = index.block_counts
    maxdists = index.maxdists(p)
    mindists = index.mindists(p)

    # Phase 1: MAXDIST order, accumulate counts until we have k points.
    bound = maxdist_phase_bound(counts, maxdists, k)

    # Phase 2: the locality is every non-empty block with MINDIST <= bound.
    if np.isinf(bound):
        selected = [b for b, c in zip(blocks, counts) if c > 0]
    else:
        mask = (mindists <= bound) & (counts > 0)
        selected = [blocks[i] for i in np.nonzero(mask)[0]]
    return Locality(center=p, k=k, blocks=tuple(selected), maxdist_bound=bound)


def neighborhood_from_blocks(
    p: Point,
    k: int,
    blocks: Sequence[Block],
) -> Neighborhood:
    """Rank the points of ``blocks`` around ``p`` and keep the nearest ``k``.

    This is the final step of ``getkNN`` and is also used directly by the
    2-kNN-select algorithm, which computes a neighborhood from a *restricted*
    locality (Procedure 5).

    The blocks' member-row arrays are concatenated and ranked columnar-ly;
    the result is a lazy neighborhood over the shared store.  Blocks backed
    by different stores (ad-hoc block lists) fall back to the object path.
    """
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    candidate_blocks = [b for b in blocks if b.count > 0]
    if not candidate_blocks:
        return Neighborhood(p, k, [], [])

    store = candidate_blocks[0].store
    if any(b.store is not store for b in candidate_blocks[1:]):
        return neighborhood_from_blocks_object(p, k, candidate_blocks)

    if len(candidate_blocks) == 1:
        rows = candidate_blocks[0].member_ids
    else:
        rows = np.concatenate([b.member_ids for b in candidate_blocks])
    return rank_rows(p, k, store, rows)


def rank_rows(
    p: Point,
    k: int,
    store: "PointStore",
    rows: np.ndarray,
) -> Neighborhood:
    """Exact ``(distance, pid)`` top-k over candidate store rows.

    Delegates to the active :mod:`repro.kernels` backend's ``knn_head``
    kernel: a *squared*-distance prefilter finds the k-th boundary (widened
    by :data:`repro.kernels.HEAD_SLACK` relative slack), and only the head —
    k plus boundary ties — gets the exact ``hypot`` distances and the final
    ``(distance, pid)`` ranking, so the result is identical to fully sorting
    all candidates by true distance regardless of backend.
    """
    sel, dists = kernels.knn_head(store.xs, store.ys, store.pids, rows, p.x, p.y, k)
    return Neighborhood.from_rows(p, k, store, sel, dists)


def neighborhood_from_blocks_object(
    p: Point,
    k: int,
    blocks: Sequence[Block],
) -> Neighborhood:
    """The seed's object-path ranking, kept as the parity oracle.

    Iterates :class:`Point` objects and gathers pids per object — exactly the
    pre-columnar implementation.  Used by the parity property tests (the
    columnar path must return byte-identical ``(distance, pid)`` results) and
    as the baseline series of the figure-29 columnar-speedup workload.
    """
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    candidate_blocks = [b for b in blocks if b.count > 0]
    if not candidate_blocks:
        return Neighborhood(p, k, [], [])

    coords = np.concatenate([b.coords for b in candidate_blocks], axis=0)
    points: list[Point] = []
    for b in candidate_blocks:
        points.extend(b.points)
    diff = coords - np.array([p.x, p.y], dtype=np.float64)
    dists = np.hypot(diff[:, 0], diff[:, 1])
    pids = np.fromiter((pt.pid for pt in points), dtype=np.int64, count=len(points))

    if len(points) > k:
        head = k_extended(k, dists)
        if head < len(points):
            idx = np.argpartition(dists, head - 1)[:head]
        else:
            idx = np.arange(len(points))
        idx = idx[np.lexsort((pids[idx], dists[idx]))][:k]
    else:
        idx = np.lexsort((pids, dists))
    members = [points[i] for i in idx]
    member_dists = [float(dists[i]) for i in idx]
    return Neighborhood(p, k, members, member_dists)


def k_extended(k: int, dists: np.ndarray) -> int:
    """Number of head candidates to fully sort after ``argpartition``.

    ``argpartition`` guarantees the ``k`` smallest distances occupy the first
    ``k`` slots but leaves ties straddling the boundary in arbitrary order.  To
    keep the deterministic ``(distance, pid)`` tie-break exact we widen the head
    to include every candidate whose distance equals the k-th smallest one.
    """
    if len(dists) <= k:
        return len(dists)
    kth = np.partition(dists, k - 1)[k - 1]
    return int((dists <= kth).sum())


def get_knn(index: SpatialIndex, p: Point, k: int) -> Neighborhood:
    """Return the ``k`` nearest neighbors of ``p`` among the points of ``index``.

    This is the paper's ``getkNN(p, k)``.  The locality is built first; the
    neighborhood is then computed only from the locality's blocks.
    """
    locality = build_locality(index, p, k)
    return neighborhood_from_blocks(p, k, locality.blocks)
