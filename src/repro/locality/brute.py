"""Brute-force kNN reference implementation.

Used as the ground truth in tests (the locality-based ``get_knn`` must return
exactly the same neighborhood) and as a fallback for tiny datasets where
building an index would be overkill.
"""

from __future__ import annotations

from typing import Iterable

from repro.exceptions import InvalidParameterError
from repro.geometry.point import Point
from repro.locality.neighborhood import Neighborhood

__all__ = ["brute_force_knn"]


def brute_force_knn(points: Iterable[Point], p: Point, k: int) -> Neighborhood:
    """Return the ``k`` nearest neighbors of ``p`` by scanning every point.

    Ties are broken by ``(distance, pid)`` exactly as in the locality-based
    search, so the two implementations are interchangeable.
    """
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    return Neighborhood.from_candidates(p, k, points)
