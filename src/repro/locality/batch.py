"""Batched locality-based kNN: many query points against one index.

The columnar backbone makes the per-query locality phase batchable: MINDIST
and MAXDIST from *every* query point to *every* block are two chunked matrix
kernels over the index's block-bound table, the MAXDIST-phase bound of every
query comes from one row-wise argsort + cumsum, and only the final per-query
ranking (over each query's own candidate rows) remains a loop — one
:func:`~repro.locality.knn.rank_rows` call per query.

The block phase works in **squared-distance** space.  That is sound: the
clamped per-axis gaps behind MINDIST are computed with correctly-rounded
(hence monotone) subtractions, and ``x*x + y*y`` composes correctly-rounded
multiplications and an addition, all monotone — so the computed squared
MINDIST of a block never exceeds the computed squared distance to any point
inside it, which is the only invariant the locality guarantee needs.  Any
ULP-level difference from the scalar (hypot) path can only shift *which
superset of blocks* is scanned, never the exact ``(distance, pid)`` top-k
ranked from it; ``get_knn_batch`` therefore returns neighborhoods identical
to per-point :func:`~repro.locality.knn.get_knn`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro import kernels
from repro.exceptions import EmptyDatasetError, InvalidParameterError
from repro.geometry.point import Point
from repro.index.base import SpatialIndex
from repro.locality.knn import get_knn, rank_rows
from repro.locality.neighborhood import Neighborhood

__all__ = ["get_knn_batch"]

#: Query rows per chunk; bounds each (chunk x num_blocks) matrix to a few MB.
_BATCH_CHUNK = 256


def get_knn_batch(
    index: SpatialIndex,
    queries: Sequence[Point] | np.ndarray,
    k: int,
) -> list[Neighborhood]:
    """The k-neighborhood of every query point, batched over the block phase.

    ``queries`` is a sequence of points or an ``(n, 2)`` coordinate array (the
    latter never materializes query point objects; each result neighborhood's
    center is then an anonymous ``pid == -1`` point).  Returns one
    :class:`Neighborhood` per query, in input order — each identical to
    ``get_knn(index, q, k)``.
    """
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    if index.num_points == 0:
        raise EmptyDatasetError("cannot run a kNN batch over an empty index")

    if isinstance(queries, np.ndarray):
        coords = np.asarray(queries, dtype=np.float64)
        if coords.ndim != 2 or coords.shape[1] != 2:
            raise InvalidParameterError(
                f"expected an (n, 2) query array, got shape {coords.shape}"
            )
        points: list[Point] | None = None
    else:
        points = list(queries)
        coords = np.array([(q.x, q.y) for q in points], dtype=np.float64)
    if not len(coords):
        return []

    store = index.store
    blocks = index.blocks
    if store is None:
        # Heterogeneous block stores: no shared columns to batch over.
        qs = points if points is not None else [Point(float(x), float(y)) for x, y in coords]
        return [get_knn(index, q, k) for q in qs]

    bounds = index.block_bounds
    bxmin, bymin, bxmax, bymax = bounds.T
    counts = index.block_counts
    nonempty = counts > 0
    members = [b.member_ids for b in blocks]

    out: list[Neighborhood] = []
    for start in range(0, len(coords), _BATCH_CHUNK):
        cx = coords[start : start + _BATCH_CHUNK, 0]
        cy = coords[start : start + _BATCH_CHUNK, 1]
        # Squared MINDIST/MAXDIST matrices via the active kernel backend.
        mind2, maxd2 = kernels.block_matrices(cx, cy, bxmin, bymin, bxmax, bymax)

        # MAXDIST phase for the whole chunk: row-wise cumsum of block counts
        # in squared-MAXDIST order; the bound is where the prefix reaches k.
        order = np.argsort(maxd2, axis=1)
        running = np.cumsum(np.take(counts, order), axis=1)
        pos = (running < k).sum(axis=1)
        exhausted = pos >= order.shape[1]  # fewer than k indexed points
        pos_clamped = np.minimum(pos, order.shape[1] - 1)
        bound2 = np.take_along_axis(
            maxd2, order[np.arange(len(order)), pos_clamped][:, None], axis=1
        )[:, 0]
        bound2[exhausted] = np.inf

        locality = (mind2 <= bound2[:, None]) & nonempty[None, :]
        for row in range(len(locality)):
            selected = np.nonzero(locality[row])[0]
            if len(selected) == 1:
                rows = members[selected[0]]
            else:
                rows = np.concatenate([members[i] for i in selected])
            q = (
                points[start + row]
                if points is not None
                else Point(float(coords[start + row, 0]), float(coords[start + row, 1]))
            )
            out.append(rank_rows(q, k, store, rows))
    return out
