"""Kernel backend dispatch: numpy reference vs optional compiled kernels.

The engine's distance-math hot paths (locality ranking, batched block
matrices, cross-shard merge, stream guard membership) call the wrapper
functions in this module instead of inlining numpy.  Each wrapper forwards
to the *active backend*'s implementation and bumps a per-kernel dispatch
counter labeled with the backend name, so traces and metric snapshots show
which path actually ran.

Backend selection:

- ``REPRO_KERNELS=auto`` (the default): use ``numba`` when importable, else
  the pure-numpy reference.  Tier-1 environments without numba silently get
  numpy — no optional dependency is ever imported at package import time
  unless it is about to be used.
- ``REPRO_KERNELS=numpy`` / ``REPRO_KERNELS=numba``: force a backend;
  forcing an unavailable backend raises at first import, which is the
  desired loud failure in CI matrix legs.
- :func:`set_backend` / :func:`use_backend` swap backends at runtime (the
  calibration-reconvergence tests hot-swap mid-session); every switch is
  process-local and takes effect for subsequent kernel calls immediately.
- :func:`register_backend` adds third-party kernel tables; a factory is
  only invoked when its backend is activated or probed, so registration is
  free.

All backends must be *exact* drop-ins: the parity property suite ranks the
same datasets through every available backend and requires identical
``(distance, pid)`` results.  See ``docs/kernels.md``.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Callable, Iterator, Mapping

from repro.kernels import numba_backend, numpy_backend
from repro.obs import hub
from repro.obs.metrics import Counter, MetricsRegistry

__all__ = [
    "KERNEL_NAMES",
    "available_backends",
    "backend",
    "ball_mask",
    "block_matrices",
    "counter_deltas",
    "counter_values",
    "dispatch_registry",
    "knn_head",
    "merge_counts",
    "merge_topk",
    "point_block_maxdists",
    "point_block_mindists",
    "register_backend",
    "set_backend",
    "use_backend",
    "window_mask",
]

#: The seven kernels every backend must implement.
KERNEL_NAMES = (
    "knn_head",
    "block_matrices",
    "point_block_mindists",
    "point_block_maxdists",
    "merge_topk",
    "window_mask",
    "ball_mask",
)

#: Environment variable naming the backend to activate at import time.
_ENV_VAR = "REPRO_KERNELS"

_REGISTRY = MetricsRegistry("kernels")
hub.register(_REGISTRY)

_lock = threading.Lock()
_factories: dict[str, Callable[[], Mapping[str, Callable]]] = {
    "numpy": numpy_backend.make_backend,
    "numba": numba_backend.make_backend,
}
_backend_name = "numpy"
_impls: Mapping[str, Callable] = numpy_backend.make_backend()
_counters: dict[str, Counter] = {}


def dispatch_registry() -> MetricsRegistry:
    """The hub-registered metrics registry holding the dispatch counters.

    Counters are named ``kernel_dispatch_total`` and labeled
    ``{kernel=<name>, backend=<active backend>}``; they are pre-resolved at
    backend activation so the per-call cost is one attribute addition.
    """
    return _REGISTRY


def counter_values() -> dict[tuple, float]:
    """Current dispatch-counter values keyed by ``(name, labels)``.

    Snapshot this before a unit of work, then :func:`counter_deltas` after,
    to attribute kernel dispatches to that work — the worker-telemetry
    capture path does exactly this around each shard task.
    """
    return {(c.name, c.labels): c.value for c in _REGISTRY.counters()}


def counter_deltas(before: Mapping[tuple, float]) -> list[dict]:
    """Positive dispatch-counter increases since a :func:`counter_values` call.

    Each delta is ``{"name", "labels": {...}, "delta"}`` — a picklable,
    JSON-able shape shipped from process workers back to the coordinator.
    """
    deltas = []
    for counter in _REGISTRY.counters():
        delta = counter.value - before.get((counter.name, counter.labels), 0.0)
        if delta > 0:
            deltas.append(
                {"name": counter.name, "labels": dict(counter.labels), "delta": delta}
            )
    return deltas


def merge_counts(deltas: list[dict]) -> None:
    """Fold worker-reported :func:`counter_deltas` into this process's registry.

    The coordinator calls this for telemetry shipped from *other* processes
    only — serial/thread backends already incremented the live registry, so
    merging their deltas would double-count.
    """
    for delta in deltas:
        _REGISTRY.counter(delta["name"], **delta["labels"]).add(delta["delta"])


def _resolve_counters(name: str) -> dict[str, Counter]:
    return {
        kernel: _REGISTRY.counter("kernel_dispatch_total", kernel=kernel, backend=name)
        for kernel in KERNEL_NAMES
    }


def _activate(name: str) -> None:
    global _backend_name, _impls, _counters
    factory = _factories.get(name)
    if factory is None:
        raise ValueError(
            f"unknown kernel backend {name!r}; registered: {sorted(_factories)}"
        )
    impls = factory()
    missing = [k for k in KERNEL_NAMES if k not in impls]
    if missing:
        raise ValueError(f"backend {name!r} is missing kernels: {missing}")
    counters = _resolve_counters(name)
    _impls = impls
    _counters = counters
    _backend_name = name


def backend() -> str:
    """Name of the active kernel backend (``"numpy"``, ``"numba"``, ...)."""
    return _backend_name


def set_backend(name: str) -> str:
    """Activate the named backend for all subsequent kernel calls.

    Resolves ``"auto"`` to numba-when-importable (else numpy).  Raises
    ``ValueError`` for unregistered names and propagates the backend
    factory's error (e.g. ``ImportError``) when a forced backend cannot
    load.  Returns the previously active backend's name so callers can
    restore it.
    """
    with _lock:
        previous = _backend_name
        if name == "auto":
            try:
                _activate("numba")
            except Exception:
                _activate("numpy")
        else:
            _activate(name)
        return previous


@contextmanager
def use_backend(name: str) -> Iterator[None]:
    """Context manager: activate ``name``, restore the previous backend on exit."""
    previous = set_backend(name)
    try:
        yield
    finally:
        set_backend(previous)


def register_backend(name: str, factory: Callable[[], Mapping[str, Callable]]) -> None:
    """Register a kernel-table factory under ``name``.

    ``factory`` is called (lazily) when the backend is activated or probed
    and must return a mapping with every kernel in :data:`KERNEL_NAMES`.
    Re-registering a name replaces the factory (the shadow-backend tests use
    this to wrap the numpy table).
    """
    with _lock:
        _factories[name] = factory


def available_backends() -> list[str]:
    """Names of registered backends that can actually activate here.

    A backend counts as available only when its factory loads *and* its
    table covers every kernel in :data:`KERNEL_NAMES` — a partial table
    would raise at :func:`set_backend` time, so it is not available.
    """
    out = []
    for name, factory in sorted(_factories.items()):
        try:
            impls = factory()
        except Exception:
            continue
        if all(k in impls for k in KERNEL_NAMES):
            out.append(name)
    return out


def knn_head(xs, ys, pids, rows, px, py, k):
    """Exact ``(distance, pid)`` top-k over candidate store rows.

    Returns ``(selected_rows, distances)`` sorted by ``(distance, pid)``,
    at most ``k`` long; ``xs``/``ys``/``pids`` are full store columns and
    ``rows`` indexes the candidates.
    """
    _counters["knn_head"].inc()
    return _impls["knn_head"](xs, ys, pids, rows, px, py, k)


def block_matrices(cx, cy, bxmin, bymin, bxmax, bymax):
    """Squared MINDIST/MAXDIST matrices from ``(q,)`` queries to ``(b,)`` blocks."""
    _counters["block_matrices"].inc()
    return _impls["block_matrices"](cx, cy, bxmin, bymin, bxmax, bymax)


def point_block_mindists(px, py, bxmin, bymin, bxmax, bymax):
    """True (``hypot``) MINDIST from one point to every block rectangle."""
    _counters["point_block_mindists"].inc()
    return _impls["point_block_mindists"](px, py, bxmin, bymin, bxmax, bymax)


def point_block_maxdists(px, py, bxmin, bymin, bxmax, bymax):
    """True (``hypot``) MAXDIST from one point to every block rectangle."""
    _counters["point_block_maxdists"].inc()
    return _impls["point_block_maxdists"](px, py, bxmin, bymin, bxmax, bymax)


def merge_topk(dists, pids, k):
    """Indices of the first ``k`` rows in global ``(distance, pid)`` order."""
    _counters["merge_topk"].inc()
    return _impls["merge_topk"](dists, pids, k)


def window_mask(xs, ys, xmin, ymin, xmax, ymax):
    """Boolean mask of the coordinates inside the closed rectangle."""
    _counters["window_mask"].inc()
    return _impls["window_mask"](xs, ys, xmin, ymin, xmax, ymax)


def ball_mask(dx, dy, bound2):
    """Boolean mask ``dx*dx + dy*dy <= bound2`` (scalar or broadcast bound)."""
    _counters["ball_mask"].inc()
    return _impls["ball_mask"](dx, dy, bound2)


# Activate the environment-selected backend at import time so the first
# kernel call already runs the right implementation.
set_backend(os.environ.get(_ENV_VAR, "auto") or "auto")
