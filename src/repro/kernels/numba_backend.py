"""Optional numba-compiled kernels (JIT, nopython mode).

Loaded lazily by :mod:`repro.kernels.dispatch` only when ``numba`` is
importable — the library never imports (let alone requires) numba at package
import time, so Tier-1 environments stay numpy-only.  Every kernel here is a
loop-level re-statement of the :mod:`repro.kernels.numpy_backend` reference
and must pass the same parity property tests.

Implementation notes for parity:

- ``np.lexsort`` is unavailable in nopython mode, so the ``(distance, pid)``
  order is a stable mergesort by distance with equal-distance runs re-sorted
  by pid (insertion sort; ``(distance, pid)`` pairs are unique per store, so
  no third key is needed).
- Scalar ``np.hypot`` (libm) is used instead of ``math.hypot`` — CPython's
  ``math.hypot`` is a *different*, correctly-rounded algorithm, while numba
  lowers both spellings to libm; ``np.hypot`` keeps the compiled results
  bit-identical to the vectorized numpy reference.
- The k-th squared distance comes from ``np.partition`` (supported in
  nopython mode), mirroring the reference's ``argpartition`` boundary.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from repro.kernels.numpy_backend import HEAD_SLACK

__all__ = ["make_backend"]


def make_backend() -> Mapping[str, Callable]:
    """Build the numba kernel table; raises ``ImportError`` if numba is absent.

    Compilation is lazy (first call per signature), so activating this
    backend is cheap and the JIT cost lands on the first kernel invocation.
    """
    from numba import njit  # deferred: numba is strictly optional

    @njit(cache=False)
    def _order_by_dist_pid(dists, pids):
        order = np.argsort(dists, kind="mergesort")
        n = order.shape[0]
        i = 0
        while i < n:
            j = i + 1
            while j < n and dists[order[j]] == dists[order[i]]:
                j += 1
            if j - i > 1:
                for a in range(i + 1, j):
                    key = order[a]
                    kp = pids[key]
                    b = a - 1
                    while b >= i and pids[order[b]] > kp:
                        order[b + 1] = order[b]
                        b -= 1
                    order[b + 1] = key
            i = j
        return order

    @njit(cache=False)
    def _knn_head_jit(xs, ys, pids, rows, px, py, k, slack):
        n = rows.shape[0]
        dx = np.empty(n, np.float64)
        dy = np.empty(n, np.float64)
        for i in range(n):
            r = rows[i]
            dx[i] = xs[r] - px
            dy[i] = ys[r] - py
        if n > k:
            d2 = np.empty(n, np.float64)
            for i in range(n):
                d2[i] = dx[i] * dx[i] + dy[i] * dy[i]
            kth2 = np.partition(d2, k - 1)[k - 1]
            limit = kth2 * (1.0 + slack)
            h = 0
            for i in range(n):
                if d2[i] <= limit:
                    h += 1
            head = np.empty(h, np.int64)
            j = 0
            for i in range(n):
                if d2[i] <= limit:
                    head[j] = i
                    j += 1
            hd = np.empty(h, np.float64)
            hp = np.empty(h, np.int64)
            for i in range(h):
                t = head[i]
                hd[i] = np.hypot(dx[t], dy[t])
                hp[i] = pids[rows[t]]
            order = _order_by_dist_pid(hd, hp)
            m = k if k < h else h
            sel = np.empty(m, np.int64)
            out_d = np.empty(m, np.float64)
            for i in range(m):
                t = head[order[i]]
                sel[i] = rows[t]
                out_d[i] = hd[order[i]]
            return sel, out_d
        dists = np.empty(n, np.float64)
        hp = np.empty(n, np.int64)
        for i in range(n):
            dists[i] = np.hypot(dx[i], dy[i])
            hp[i] = pids[rows[i]]
        order = _order_by_dist_pid(dists, hp)
        sel = np.empty(n, np.int64)
        out_d = np.empty(n, np.float64)
        for i in range(n):
            sel[i] = rows[order[i]]
            out_d[i] = dists[order[i]]
        return sel, out_d

    def knn_head(xs, ys, pids, rows, px, py, k):
        rows64 = np.ascontiguousarray(rows, dtype=np.int64)
        return _knn_head_jit(
            np.ascontiguousarray(xs, dtype=np.float64),
            np.ascontiguousarray(ys, dtype=np.float64),
            np.ascontiguousarray(pids, dtype=np.int64),
            rows64,
            float(px),
            float(py),
            int(k),
            HEAD_SLACK,
        )

    @njit(cache=False)
    def _block_matrices_jit(cx, cy, bxmin, bymin, bxmax, bymax):
        q = cx.shape[0]
        b = bxmin.shape[0]
        mind2 = np.empty((q, b), np.float64)
        maxd2 = np.empty((q, b), np.float64)
        for i in range(q):
            x = cx[i]
            y = cy[i]
            for j in range(b):
                ax = bxmin[j] - x
                bx = x - bxmax[j]
                ay = bymin[j] - y
                by = y - bymax[j]
                min_dx = max(0.0, max(ax, bx))
                min_dy = max(0.0, max(ay, by))
                max_dx = max(abs(ax), abs(bx))
                max_dy = max(abs(ay), abs(by))
                mind2[i, j] = min_dx * min_dx + min_dy * min_dy
                maxd2[i, j] = max_dx * max_dx + max_dy * max_dy
        return mind2, maxd2

    def block_matrices(cx, cy, bxmin, bymin, bxmax, bymax):
        return _block_matrices_jit(
            np.ascontiguousarray(cx, dtype=np.float64),
            np.ascontiguousarray(cy, dtype=np.float64),
            np.ascontiguousarray(bxmin, dtype=np.float64),
            np.ascontiguousarray(bymin, dtype=np.float64),
            np.ascontiguousarray(bxmax, dtype=np.float64),
            np.ascontiguousarray(bymax, dtype=np.float64),
        )

    @njit(cache=False)
    def _point_block_mindists_jit(px, py, bxmin, bymin, bxmax, bymax):
        b = bxmin.shape[0]
        out = np.empty(b, np.float64)
        for j in range(b):
            dx = max(0.0, max(bxmin[j] - px, px - bxmax[j]))
            dy = max(0.0, max(bymin[j] - py, py - bymax[j]))
            out[j] = np.hypot(dx, dy)
        return out

    def point_block_mindists(px, py, bxmin, bymin, bxmax, bymax):
        return _point_block_mindists_jit(
            float(px),
            float(py),
            np.ascontiguousarray(bxmin, dtype=np.float64),
            np.ascontiguousarray(bymin, dtype=np.float64),
            np.ascontiguousarray(bxmax, dtype=np.float64),
            np.ascontiguousarray(bymax, dtype=np.float64),
        )

    @njit(cache=False)
    def _point_block_maxdists_jit(px, py, bxmin, bymin, bxmax, bymax):
        b = bxmin.shape[0]
        out = np.empty(b, np.float64)
        for j in range(b):
            dx = max(abs(px - bxmin[j]), abs(px - bxmax[j]))
            dy = max(abs(py - bymin[j]), abs(py - bymax[j]))
            out[j] = np.hypot(dx, dy)
        return out

    def point_block_maxdists(px, py, bxmin, bymin, bxmax, bymax):
        return _point_block_maxdists_jit(
            float(px),
            float(py),
            np.ascontiguousarray(bxmin, dtype=np.float64),
            np.ascontiguousarray(bymin, dtype=np.float64),
            np.ascontiguousarray(bxmax, dtype=np.float64),
            np.ascontiguousarray(bymax, dtype=np.float64),
        )

    @njit(cache=False)
    def _merge_topk_jit(dists, pids, k):
        order = _order_by_dist_pid(dists, pids)
        m = k if k < order.shape[0] else order.shape[0]
        return order[:m]

    def merge_topk(dists, pids, k):
        return _merge_topk_jit(
            np.ascontiguousarray(dists, dtype=np.float64),
            np.ascontiguousarray(pids, dtype=np.int64),
            int(k),
        )

    @njit(cache=False)
    def _window_mask_jit(xs, ys, xmin, ymin, xmax, ymax):
        n = xs.shape[0]
        out = np.empty(n, np.bool_)
        for i in range(n):
            out[i] = xmin <= xs[i] <= xmax and ymin <= ys[i] <= ymax
        return out

    def window_mask(xs, ys, xmin, ymin, xmax, ymax):
        return _window_mask_jit(
            np.ascontiguousarray(xs, dtype=np.float64),
            np.ascontiguousarray(ys, dtype=np.float64),
            float(xmin),
            float(ymin),
            float(xmax),
            float(ymax),
        )

    @njit(cache=False)
    def _ball_mask_jit(dx, dy, bound2):
        n = dx.shape[0]
        out = np.empty(n, np.bool_)
        for i in range(n):
            out[i] = dx[i] * dx[i] + dy[i] * dy[i] <= bound2[i]
        return out

    def ball_mask(dx, dy, bound2):
        dxa = np.asarray(dx, dtype=np.float64)
        dya = np.asarray(dy, dtype=np.float64)
        b2a = np.asarray(bound2, dtype=np.float64)
        shape = np.broadcast_shapes(dxa.shape, dya.shape, b2a.shape)
        flat = _ball_mask_jit(
            np.ascontiguousarray(np.broadcast_to(dxa, shape)).ravel(),
            np.ascontiguousarray(np.broadcast_to(dya, shape)).ravel(),
            np.ascontiguousarray(np.broadcast_to(b2a, shape)).ravel(),
        )
        return flat.reshape(shape)

    return {
        "knn_head": knn_head,
        "block_matrices": block_matrices,
        "point_block_mindists": point_block_mindists,
        "point_block_maxdists": point_block_maxdists,
        "merge_topk": merge_topk,
        "window_mask": window_mask,
        "ball_mask": ball_mask,
    }
