"""Pure-numpy reference kernels — the library's correctness oracle.

These are the exact vectorized implementations the hot paths ran before the
kernel tier existed, extracted verbatim so every alternative backend (numba,
future cffi) can be parity-tested against them.  The dispatch layer
(:mod:`repro.kernels.dispatch`) falls back to this backend whenever no
compiled backend is importable, so Tier-1 stays numpy-only.

Numerical contracts that parity tests rely on:

- ``knn_head`` prefilters on *squared* distances, widens the k-th boundary by
  :data:`HEAD_SLACK` relative slack, and ranks only the head by exact
  ``np.hypot`` distance with ``(distance, pid)`` lexicographic tie-break —
  identical to fully sorting all candidates by true distance.
- ``block_matrices`` works in squared-distance space with correctly-rounded
  (hence monotone) clamped per-axis gaps; ``point_block_mindists`` /
  ``point_block_maxdists`` return true (``hypot``) distances.
- ``merge_topk`` is ``np.lexsort((pids, dists))[:k]`` — the library-wide
  deterministic ``(distance, pid)`` order.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

__all__ = ["HEAD_SLACK", "make_backend"]

#: Relative slack widening the squared-distance prefilter boundary.  Squared
#: distances carry at most ~3 ulp of relative rounding error and hypot ~1, so
#: orderings of the two metrics can only disagree within ~1e-15 relative —
#: 1e-13 keeps every possible true-distance boundary tie in the head with two
#: orders of magnitude to spare, while still discarding essentially all of
#: the tail.
HEAD_SLACK = 1e-13


def _knn_head(
    xs: np.ndarray,
    ys: np.ndarray,
    pids: np.ndarray,
    rows: np.ndarray,
    px: float,
    py: float,
    k: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Exact ``(distance, pid)`` top-k over candidate store rows.

    Returns ``(selected_rows, distances)`` sorted by ``(distance, pid)``,
    at most ``k`` long.  ``xs``/``ys``/``pids`` are full store columns;
    ``rows`` indexes the candidates.
    """
    dx = xs[rows] - px
    dy = ys[rows] - py
    n = len(rows)
    if n > k:
        d2 = dx * dx + dy * dy
        ap = np.argpartition(d2, k - 1)
        kth2 = d2[ap[k - 1]]
        head = np.nonzero(d2 <= kth2 * (1.0 + HEAD_SLACK))[0]
        dists = np.hypot(dx[head], dy[head])
        order = np.lexsort((pids[rows[head]], dists))[:k]
        return rows[head[order]], dists[order]
    dists = np.hypot(dx, dy)
    idx = np.lexsort((pids[rows], dists))
    return rows[idx], dists[idx]


def _block_matrices(
    cx: np.ndarray,
    cy: np.ndarray,
    bxmin: np.ndarray,
    bymin: np.ndarray,
    bxmax: np.ndarray,
    bymax: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Squared MINDIST and MAXDIST from every query point to every block.

    ``cx``/``cy`` are ``(q,)`` query coordinates, the block bounds ``(b,)``
    arrays; both results are ``(q, b)`` float64 matrices.
    """
    ax = bxmin[None, :] - cx[:, None]
    bx = cx[:, None] - bxmax[None, :]
    ay = bymin[None, :] - cy[:, None]
    by = cy[:, None] - bymax[None, :]
    min_dx = np.maximum(0.0, np.maximum(ax, bx))
    min_dy = np.maximum(0.0, np.maximum(ay, by))
    max_dx = np.maximum(np.abs(ax), np.abs(bx))
    max_dy = np.maximum(np.abs(ay), np.abs(by))
    mind2 = min_dx * min_dx + min_dy * min_dy
    maxd2 = max_dx * max_dx + max_dy * max_dy
    return mind2, maxd2


def _point_block_mindists(
    px: float,
    py: float,
    bxmin: np.ndarray,
    bymin: np.ndarray,
    bxmax: np.ndarray,
    bymax: np.ndarray,
) -> np.ndarray:
    """True (``hypot``) MINDIST from one point to every block rectangle."""
    dx = np.maximum(0.0, np.maximum(bxmin - px, px - bxmax))
    dy = np.maximum(0.0, np.maximum(bymin - py, py - bymax))
    return np.hypot(dx, dy)


def _point_block_maxdists(
    px: float,
    py: float,
    bxmin: np.ndarray,
    bymin: np.ndarray,
    bxmax: np.ndarray,
    bymax: np.ndarray,
) -> np.ndarray:
    """True (``hypot``) MAXDIST from one point to every block rectangle."""
    dx = np.maximum(np.abs(px - bxmin), np.abs(px - bxmax))
    dy = np.maximum(np.abs(py - bymin), np.abs(py - bymax))
    return np.hypot(dx, dy)


def _merge_topk(dists: np.ndarray, pids: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` first rows in ``(distance, pid)`` order.

    The cross-shard merge: partial ``(distance, pid)`` columns are stacked by
    the caller and this returns the (stable) global top-k permutation.
    """
    return np.lexsort((pids, dists))[:k]


def _window_mask(
    xs: np.ndarray,
    ys: np.ndarray,
    xmin: float,
    ymin: float,
    xmax: float,
    ymax: float,
) -> np.ndarray:
    """Boolean mask of the coordinates inside the closed rectangle."""
    return (xs >= xmin) & (xs <= xmax) & (ys >= ymin) & (ys <= ymax)


def _ball_mask(dx: np.ndarray, dy: np.ndarray, bound2) -> np.ndarray:
    """Boolean mask ``dx*dx + dy*dy <= bound2`` (closed ball, squared radius).

    ``bound2`` may be a scalar or an array broadcastable against ``dx`` —
    the stream guard-region membership test uses per-row squared bounds.
    """
    return dx * dx + dy * dy <= bound2


def make_backend() -> Mapping[str, Callable]:
    """Build the kernel table for the pure-numpy reference backend."""
    return {
        "knn_head": _knn_head,
        "block_matrices": _block_matrices,
        "point_block_mindists": _point_block_mindists,
        "point_block_maxdists": _point_block_maxdists,
        "merge_topk": _merge_topk,
        "window_mask": _window_mask,
        "ball_mask": _ball_mask,
    }
