"""repro.kernels — the raw-speed kernel tier.

The distance-math inner loops of the engine stack (locality kNN ranking,
batched MINDIST/MAXDIST block matrices, the cross-shard ``(distance, pid)``
merge, stream guard-region membership) live here behind a backend dispatch
layer:

- :mod:`repro.kernels.numpy_backend` — the pure-numpy reference, always
  available, and the correctness oracle every other backend is parity-tested
  against.
- :mod:`repro.kernels.numba_backend` — JIT-compiled loops, loaded only when
  ``numba`` is importable (strictly optional; Tier-1 stays numpy-only).
- :mod:`repro.kernels.dispatch` — backend selection (``REPRO_KERNELS`` env
  var, :func:`set_backend` / :func:`use_backend` for runtime hot-swap) and
  per-kernel ``kernel_dispatch_total`` counters labeled by backend.

See ``docs/kernels.md`` for dispatch rules, the shared-memory segment
lifecycle the kernels feed on, and the parity-testing policy.
"""

from repro.kernels.dispatch import (
    KERNEL_NAMES,
    available_backends,
    backend,
    ball_mask,
    block_matrices,
    dispatch_registry,
    knn_head,
    merge_topk,
    point_block_maxdists,
    point_block_mindists,
    register_backend,
    set_backend,
    use_backend,
    window_mask,
)
from repro.kernels.numpy_backend import HEAD_SLACK

__all__ = [
    "HEAD_SLACK",
    "KERNEL_NAMES",
    "available_backends",
    "backend",
    "ball_mask",
    "block_matrices",
    "dispatch_registry",
    "knn_head",
    "merge_topk",
    "point_block_maxdists",
    "point_block_mindists",
    "register_backend",
    "set_backend",
    "use_backend",
    "window_mask",
]
