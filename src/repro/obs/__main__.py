"""Command line entry point: ``python -m repro.obs --dump``.

Runs a small self-contained demonstration workload — an instrumented
:class:`~repro.engine.session.SpatialEngine` wrapped by a
:class:`~repro.stream.engine.StreamEngine`, serving point/join queries while
update batches stream in — and prints the resulting metrics:

* ``--dump`` (default): the process-global JSON snapshot
  (:func:`repro.obs.hub.global_snapshot`);
* ``--prometheus``: Prometheus text-format exposition instead;
* ``--validate``: run :func:`repro.obs.export.validate_snapshot` over every
  registry snapshot and exit non-zero on schema errors;
* ``--queries`` / ``--points`` / ``--seed``: workload knobs.

This is a demonstration and a smoke check, not a benchmark —
``scripts/obs_smoke.py`` measures the instrumentation overhead bound.
"""

from __future__ import annotations

import argparse
import json
import random
import sys

from repro.geometry.point import Point
from repro.obs import Observability, hub, validate_snapshot
from repro.query.predicates import KnnJoin, KnnSelect
from repro.query.query import Query


def _run_demo(points: int, queries: int, seed: int) -> Observability:
    """Exercise an engine + stream stack; returns its observability bundle."""
    # Imported here so ``--help`` stays fast and dependency-light.
    from repro.engine.session import SpatialEngine
    from repro.stream.engine import StreamEngine

    rng = random.Random(seed)
    obs = Observability(name="demo")
    engine = SpatialEngine(obs=obs)
    coords = lambda n: [(rng.uniform(0, 100), rng.uniform(0, 100)) for _ in range(n)]
    engine.register(name="cafes", points=coords(points))
    engine.register(name="offices", points=coords(points))

    stream = StreamEngine(engine)
    stream.subscribe(
        Query(KnnSelect(relation="cafes", focal=Point(50.0, 50.0), k=5))
    )
    for i in range(queries):
        focal = Point(rng.uniform(0, 100), rng.uniform(0, 100))
        engine.run(Query(KnnSelect(relation="cafes", focal=focal, k=5)))
        if i % 5 == 0:
            engine.run(
                Query(
                    KnnSelect(relation="offices", focal=focal, k=3),
                    KnnJoin(outer="offices", inner="cafes", k=3),
                )
            )
        if i % 10 == 0:
            stream.stream("cafes").insert(
                (rng.uniform(0, 100), rng.uniform(0, 100))
            ).flush()
    stream.close()
    return obs


def main(argv: list[str] | None = None) -> int:
    """CLI driver; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Run a demonstration workload and dump its metrics.",
    )
    parser.add_argument(
        "--dump", action="store_true", help="print the global JSON snapshot (default)"
    )
    parser.add_argument(
        "--prometheus", action="store_true", help="print Prometheus text instead of JSON"
    )
    parser.add_argument(
        "--validate", action="store_true", help="schema-check every registry snapshot"
    )
    parser.add_argument("--points", type=int, default=500, help="points per relation")
    parser.add_argument("--queries", type=int, default=40, help="queries to run")
    parser.add_argument("--seed", type=int, default=0, help="workload RNG seed")
    args = parser.parse_args(argv)

    _run_demo(points=args.points, queries=args.queries, seed=args.seed)

    if args.validate:
        errors: list[str] = []
        for registry in hub.registries():
            errors.extend(validate_snapshot(registry.snapshot()))
        if errors:
            for error in errors:
                print(f"invalid snapshot: {error}", file=sys.stderr)
            return 1
        print(f"{len(hub.registries())} registry snapshot(s) valid", file=sys.stderr)
    if args.prometheus:
        sys.stdout.write(hub.global_prometheus())
    if args.dump or not (args.prometheus or args.validate):
        json.dump(hub.global_snapshot(), sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
