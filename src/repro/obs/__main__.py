"""Command line entry point: ``python -m repro.obs --dump``.

Runs a small self-contained demonstration workload — an instrumented
:class:`~repro.engine.session.SpatialEngine` wrapped by a
:class:`~repro.stream.engine.StreamEngine`, serving point/join queries while
update batches stream in — and prints the resulting metrics:

* ``--dump`` (default): the process-global JSON snapshot
  (:func:`repro.obs.hub.global_snapshot`);
* ``--prometheus``: Prometheus text-format exposition instead;
* ``--validate``: run :func:`repro.obs.export.validate_snapshot` over every
  registry snapshot and exit non-zero on schema errors;
* ``--slow``: dump the demo's slow-query log (the demo runs with a zero
  latency threshold, so every query is recorded);
* ``--diff A.json B.json``: print the counter/histogram delta between two
  exported JSON snapshots (no demo workload runs);
* ``--queries`` / ``--points`` / ``--seed``: workload knobs.

This is a demonstration and a smoke check, not a benchmark —
``scripts/obs_smoke.py`` measures the instrumentation overhead bound.
"""

from __future__ import annotations

import argparse
import json
import random
import sys

from repro.geometry.point import Point
from repro.obs import Observability, hub, validate_snapshot
from repro.query.predicates import KnnJoin, KnnSelect
from repro.query.query import Query


def _run_demo(
    points: int, queries: int, seed: int, slow_threshold: float | None = None
) -> Observability:
    """Exercise an engine + stream stack; returns its observability bundle.

    ``slow_threshold`` overrides the bundle's slow-query latency threshold
    (``--slow`` passes ``0.0`` so every demo query lands in the log).
    """
    # Imported here so ``--help`` stays fast and dependency-light.
    from repro.engine.session import SpatialEngine
    from repro.stream.engine import StreamEngine

    rng = random.Random(seed)
    obs = Observability(name="demo")
    if slow_threshold is not None:
        obs.slow.threshold_seconds = slow_threshold
    engine = SpatialEngine(obs=obs)
    coords = lambda n: [(rng.uniform(0, 100), rng.uniform(0, 100)) for _ in range(n)]
    engine.register(name="cafes", points=coords(points))
    engine.register(name="offices", points=coords(points))

    stream = StreamEngine(engine)
    stream.subscribe(
        Query(KnnSelect(relation="cafes", focal=Point(50.0, 50.0), k=5))
    )
    for i in range(queries):
        focal = Point(rng.uniform(0, 100), rng.uniform(0, 100))
        engine.run(Query(KnnSelect(relation="cafes", focal=focal, k=5)))
        if i % 5 == 0:
            engine.run(
                Query(
                    KnnSelect(relation="offices", focal=focal, k=3),
                    KnnJoin(outer="offices", inner="cafes", k=3),
                )
            )
        if i % 10 == 0:
            stream.stream("cafes").insert(
                (rng.uniform(0, 100), rng.uniform(0, 100))
            ).flush()
    stream.close()
    return obs


def _snapshot_registries(payload: object, where: str) -> list[dict]:
    """Normalize an exported snapshot file to a list of registry snapshots.

    Accepts the three shapes the tooling writes: a global snapshot
    (``{"registries": [...]}``, e.g. ``OBS_SNAPSHOT.json``), a bare list of
    registry snapshots, or one registry snapshot dict.
    """
    if isinstance(payload, dict) and isinstance(payload.get("registries"), list):
        return [r for r in payload["registries"] if isinstance(r, dict)]
    if isinstance(payload, list):
        return [r for r in payload if isinstance(r, dict)]
    if isinstance(payload, dict):
        return [payload]
    raise ValueError(f"{where}: unrecognized snapshot shape ({type(payload).__name__})")


def _index_samples(registries: list[dict]) -> tuple[dict, dict]:
    """Key counters and histograms by (registry, name, sorted labels)."""
    counters: dict[tuple, float] = {}
    histograms: dict[tuple, dict] = {}
    for snap in registries:
        registry = str(snap.get("registry", ""))
        for item in snap.get("counters", []):
            key = (registry, item["name"], tuple(sorted(item.get("labels", {}).items())))
            counters[key] = counters.get(key, 0.0) + float(item["value"])
        for item in snap.get("histograms", []):
            key = (registry, item["name"], tuple(sorted(item.get("labels", {}).items())))
            histograms[key] = {
                "count": int(item.get("count", 0)),
                "sum": float(item.get("sum", 0.0)),
            }
    return counters, histograms


def snapshot_diff(before: object, after: object) -> dict[str, list[dict]]:
    """The sample-by-sample delta between two exported snapshot payloads.

    Returns ``{"counters": [...], "histograms": [...]}`` where each entry
    carries the registry, metric name, labels and the ``after - before``
    delta (counters: value; histograms: count and sum).  Samples present in
    only one snapshot diff against zero; zero-delta samples are omitted.
    """
    counters_a, hists_a = _index_samples(_snapshot_registries(before, "before"))
    counters_b, hists_b = _index_samples(_snapshot_registries(after, "after"))
    counter_rows = []
    for key in sorted(set(counters_a) | set(counters_b)):
        delta = counters_b.get(key, 0.0) - counters_a.get(key, 0.0)
        if delta:
            registry, name, labels = key
            counter_rows.append(
                {
                    "registry": registry,
                    "name": name,
                    "labels": dict(labels),
                    "delta": delta,
                }
            )
    hist_rows = []
    empty = {"count": 0, "sum": 0.0}
    for key in sorted(set(hists_a) | set(hists_b)):
        a, b = hists_a.get(key, empty), hists_b.get(key, empty)
        count_delta = b["count"] - a["count"]
        sum_delta = b["sum"] - a["sum"]
        if count_delta or sum_delta:
            registry, name, labels = key
            hist_rows.append(
                {
                    "registry": registry,
                    "name": name,
                    "labels": dict(labels),
                    "count_delta": count_delta,
                    "sum_delta": sum_delta,
                }
            )
    return {"counters": counter_rows, "histograms": hist_rows}


def main(argv: list[str] | None = None) -> int:
    """CLI driver; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Run a demonstration workload and dump its metrics.",
    )
    parser.add_argument(
        "--dump", action="store_true", help="print the global JSON snapshot (default)"
    )
    parser.add_argument(
        "--prometheus", action="store_true", help="print Prometheus text instead of JSON"
    )
    parser.add_argument(
        "--validate", action="store_true", help="schema-check every registry snapshot"
    )
    parser.add_argument(
        "--slow",
        action="store_true",
        help="print the demo slow-query log (demo runs with a zero threshold)",
    )
    parser.add_argument(
        "--diff",
        nargs=2,
        metavar=("BEFORE", "AFTER"),
        help="print the counter/histogram delta between two snapshot JSON files",
    )
    parser.add_argument("--points", type=int, default=500, help="points per relation")
    parser.add_argument("--queries", type=int, default=40, help="queries to run")
    parser.add_argument("--seed", type=int, default=0, help="workload RNG seed")
    args = parser.parse_args(argv)

    if args.diff:
        before_path, after_path = args.diff
        with open(before_path, "r", encoding="utf-8") as handle:
            before = json.load(handle)
        with open(after_path, "r", encoding="utf-8") as handle:
            after = json.load(handle)
        try:
            diff = snapshot_diff(before, after)
        except ValueError as error:
            print(f"--diff: {error}", file=sys.stderr)
            return 1
        json.dump(diff, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
        return 0

    obs = _run_demo(
        points=args.points,
        queries=args.queries,
        seed=args.seed,
        slow_threshold=0.0 if args.slow else None,
    )

    if args.validate:
        errors: list[str] = []
        for registry in hub.registries():
            errors.extend(validate_snapshot(registry.snapshot()))
        errors.extend(validate_snapshot(obs.snapshot()))
        if errors:
            for error in errors:
                print(f"invalid snapshot: {error}", file=sys.stderr)
            return 1
        print(f"{len(hub.registries())} registry snapshot(s) valid", file=sys.stderr)
    if args.slow:
        json.dump(obs.slow.records(), sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    if args.prometheus:
        sys.stdout.write(hub.global_prometheus())
    if args.dump or not (args.prometheus or args.validate or args.slow):
        json.dump(hub.global_snapshot(), sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
