"""``repro.obs`` — unified metrics, tracing and profiling for the engine stack.

One dependency-light observability substrate shared by every engine layer
(:class:`~repro.engine.session.SpatialEngine`,
:class:`~repro.shard.engine.ShardedEngine`,
:class:`~repro.stream.engine.StreamEngine` and the planner's calibration
loop):

* **Metrics** — :class:`~repro.obs.metrics.MetricsRegistry` with counters,
  gauges and fixed-bucket histograms; exported as Prometheus text or JSON
  snapshots (:mod:`repro.obs.export`), aggregated process-wide by the hub
  (:mod:`repro.obs.hub`).
* **Tracing** — :class:`~repro.obs.trace.Tracer` spans opened around the
  plan / execute / shard-fan-out / stream-maintain / calibrate phases,
  collected into ring-buffered :class:`~repro.obs.trace.Trace` records
  retrievable from the engines and summarized into EXPLAIN output.
* **Events** — :class:`~repro.obs.events.EventLog`, a structured ring of
  rare significant occurrences (plan demotions, stale-shard retries, guard
  violations, index repairs vs rebuilds).

The three are bundled into an :class:`Observability` object, created per
engine by default (and auto-registered with the process-global hub) or
injected explicitly.  :meth:`Observability.disabled` yields a no-op bundle:
the engines run the identical code path with near-zero overhead, which CI
measures and bounds (``scripts/obs_smoke.py``).

Command line: ``python -m repro.obs --dump`` runs a demonstration workload
and prints the Prometheus / JSON snapshots.

See ``docs/observability.md`` for the metric catalog and span taxonomy.
"""

from __future__ import annotations

from repro.obs import hub
from repro.obs.events import NULL_EVENTS, Event, EventLog
from repro.obs.export import prometheus_text, registry_snapshot, validate_snapshot
from repro.obs.flight import (
    NULL_SLOW_LOG,
    FlightRecorder,
    ResourceUsage,
    SlowQueryLog,
    TaskCounters,
    capture_task_counters,
    record_usage,
    task_counters,
)
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    NULL_REGISTRY,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.trace import NULL_TRACER, Span, Trace, Tracer

__all__ = [
    "Observability",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "SIZE_BUCKETS",
    "Tracer",
    "Span",
    "Trace",
    "NULL_TRACER",
    "EventLog",
    "Event",
    "NULL_EVENTS",
    "FlightRecorder",
    "ResourceUsage",
    "SlowQueryLog",
    "TaskCounters",
    "NULL_SLOW_LOG",
    "capture_task_counters",
    "record_usage",
    "task_counters",
    "prometheus_text",
    "registry_snapshot",
    "validate_snapshot",
    "hub",
]


class Observability:
    """One engine's observability bundle: registry + tracer + event log.

    Parameters
    ----------
    name:
        Registry name (``engine``, ``sharded-engine``, ...); carried as the
        ``registry`` label by global exports.
    registry / tracer / events:
        Explicit components; fresh defaults are created when omitted.
    trace_capacity / event_capacity:
        Ring-buffer sizes of the default tracer / event log.
    slow:
        Explicit :class:`~repro.obs.flight.SlowQueryLog`; a fresh one is
        created from the threshold/capacity parameters when omitted.
    slow_query_threshold / slow_query_capacity:
        Latency threshold (seconds) and ring size of the default slow log.
    register_global:
        Add the registry to the process-global hub (the default; disabled
        bundles never register).
    """

    __slots__ = ("name", "registry", "tracer", "events", "slow")

    def __init__(
        self,
        name: str = "engine",
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        events: EventLog | None = None,
        trace_capacity: int = 256,
        event_capacity: int = 512,
        slow: SlowQueryLog | None = None,
        slow_query_threshold: float = 0.25,
        slow_query_capacity: int = 128,
        register_global: bool = True,
    ) -> None:
        #: Bundle name (also the default registry's name).
        self.name = name
        #: The metrics registry.
        self.registry = registry if registry is not None else MetricsRegistry(name)
        #: The span tracer.
        self.tracer = tracer if tracer is not None else Tracer(capacity=trace_capacity)
        #: The structured event log.
        self.events = events if events is not None else EventLog(capacity=event_capacity)
        #: The slow-query log (threshold-exceeding query forensics).
        self.slow = (
            slow
            if slow is not None
            else SlowQueryLog(
                threshold_seconds=slow_query_threshold, capacity=slow_query_capacity
            )
        )
        if register_global and self.registry.enabled:
            hub.register(self.registry)

    @classmethod
    def disabled(cls) -> "Observability":
        """A no-op bundle: null registry, tracer, event log and slow log.

        Engines constructed with it run the identical instrumentation code
        path, but every increment, span and event vanishes — the baseline
        side of the CI overhead bound.
        """
        return cls(
            name="disabled",
            registry=NULL_REGISTRY,
            tracer=NULL_TRACER,
            events=NULL_EVENTS,
            slow=NULL_SLOW_LOG,
            register_global=False,
        )

    @property
    def enabled(self) -> bool:
        """Whether the bundle records anything (``False`` for :meth:`disabled`)."""
        return self.registry.enabled

    def snapshot(self) -> dict[str, object]:
        """JSON-able snapshot of the bundle's registry (+ slow-query ring).

        The ``slow_queries`` section is only present when the bundle's slow
        log has records, keeping the schema backward compatible with
        snapshots taken before the flight tier existed.
        """
        snapshot = registry_snapshot(self.registry)
        slow = self.slow.records()
        if slow:
            snapshot["slow_queries"] = slow
        return snapshot

    def prometheus(self) -> str:
        """Prometheus text-format exposition of the bundle's registry."""
        return prometheus_text(self.registry)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Observability({self.name!r}, enabled={self.enabled})"
