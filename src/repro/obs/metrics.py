"""Metric primitives: counters, gauges, fixed-bucket histograms, registries.

The instruments are deliberately dependency-light and cheap enough to leave
on in production serving loops:

* a :class:`Counter` increment is one attribute addition (no lock — the same
  tolerance to rare lost updates under free-threading the engines' previous
  ad-hoc ``int`` counters had);
* a :class:`Gauge` either stores a value or pulls it from a callback at
  snapshot time (so cache sizes and pool widths cost nothing per operation);
* a :class:`Histogram` observation is one bisect into a fixed bucket list.

A :class:`MetricsRegistry` names and owns instruments (keyed on
``(name, labels)``), producing JSON-able snapshots and Prometheus-style text
through :mod:`repro.obs.export`.  The :data:`NULL_REGISTRY` implements the
same surface as no-ops: engines constructed with a disabled
:class:`~repro.obs.Observability` run the identical code path with near-zero
instrumentation cost — the overhead bound CI enforces (see
``scripts/obs_smoke.py``).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Callable, Iterable, Mapping

from repro.exceptions import InvalidParameterError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "LATENCY_BUCKETS",
    "SIZE_BUCKETS",
]

#: Default latency buckets (seconds): 100µs .. 10s, roughly log-spaced.
LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: Default size buckets (rows / items): 1 .. 100k, roughly log-spaced.
SIZE_BUCKETS: tuple[float, ...] = (
    1.0,
    2.0,
    5.0,
    10.0,
    25.0,
    50.0,
    100.0,
    250.0,
    500.0,
    1_000.0,
    2_500.0,
    5_000.0,
    10_000.0,
    25_000.0,
    100_000.0,
)

Labels = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, object] | None) -> Labels:
    """Canonical (sorted, stringified) label tuple used as part of a metric key."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count (with one documented exception).

    Counters may be constructed standalone (the plan/statistics caches do,
    so they work registry-less) or obtained from a
    :meth:`MetricsRegistry.counter`.  :meth:`add` accepts negative amounts
    solely for the plan cache's hit-recount bookkeeping — exporters still
    treat the metric as a counter.
    """

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Mapping[str, object] | None = None) -> None:
        #: Metric name (Prometheus-style, e.g. ``engine_queries_total``).
        self.name = name
        #: Canonical label pairs attached to every sample of this counter.
        self.labels: Labels = _label_key(labels)
        #: Current count.
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Increment the counter (by 1 unless given)."""
        self.value += amount

    def add(self, amount: float) -> None:
        """Add ``amount`` (may be negative — see the class docstring)."""
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A point-in-time value: set directly or pulled from a callback.

    With ``fn`` the gauge is *collected*: reading :attr:`value` calls the
    function, so registering ``lambda: len(cache)`` costs nothing per cache
    operation and is always current at snapshot time.
    """

    __slots__ = ("name", "labels", "_value", "fn")

    def __init__(
        self,
        name: str,
        labels: Mapping[str, object] | None = None,
        fn: Callable[[], float] | None = None,
    ) -> None:
        #: Metric name.
        self.name = name
        #: Canonical label pairs.
        self.labels: Labels = _label_key(labels)
        self._value: float = 0.0
        #: Optional collection callback (overrides the stored value).
        self.fn = fn

    def set(self, value: float) -> None:
        """Store ``value`` (ignored while a collection callback is set)."""
        self._value = float(value)

    @property
    def value(self) -> float:
        """The current value (callback result when one is attached)."""
        if self.fn is not None:
            try:
                return float(self.fn())
            except Exception:
                return float("nan")
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Gauge({self.name!r}, value={self.value})"


class Histogram:
    """Fixed-bucket histogram with cumulative-count export and quantiles.

    ``buckets`` are the finite upper bounds; an implicit ``+Inf`` bucket
    catches the overflow.  :meth:`observe` is one ``bisect`` plus two
    additions — cheap enough for per-query latency tracking.
    """

    __slots__ = ("name", "labels", "buckets", "counts", "count", "sum", "min", "max")

    def __init__(
        self,
        name: str,
        buckets: Iterable[float] = LATENCY_BUCKETS,
        labels: Mapping[str, object] | None = None,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise InvalidParameterError("histogram buckets must be strictly increasing")
        #: Metric name.
        self.name = name
        #: Canonical label pairs.
        self.labels: Labels = _label_key(labels)
        #: Finite bucket upper bounds (ascending).
        self.buckets = bounds
        #: Per-bucket observation counts (last slot is the +Inf overflow).
        self.counts = [0] * (len(bounds) + 1)
        #: Total observations.
        self.count = 0
        #: Sum of observed values.
        self.sum = 0.0
        #: Smallest observed value (``None`` before the first observation).
        self.min: float | None = None
        #: Largest observed value (``None`` before the first observation).
        self.max: float | None = None

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def quantile(self, q: float) -> float | None:
        """Estimate the ``q``-quantile (0..1) by linear bucket interpolation.

        Returns ``None`` with no observations.  Values landing in the +Inf
        overflow bucket are reported at the observed maximum.
        """
        if not 0.0 <= q <= 1.0:
            raise InvalidParameterError("quantile q must be in [0, 1]")
        if self.count == 0:
            return None
        target = q * self.count
        cumulative = 0
        lower = self.min if self.min is not None else 0.0
        for bound, bucket_count in zip(self.buckets, self.counts):
            if cumulative + bucket_count >= target:
                cap = self.max if self.max is not None else bound
                if bucket_count == 0:
                    return min(bound, cap)
                frac = (target - cumulative) / bucket_count
                return min(lower + frac * (bound - lower), cap)
            cumulative += bucket_count
            lower = bound
        return self.max

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Histogram({self.name!r}, count={self.count}, sum={self.sum:.4f})"


class MetricsRegistry:
    """Named collection of metric instruments with get-or-create semantics.

    Instruments are keyed on ``(name, labels)``: asking twice for the same
    key returns the same object, so engine layers sharing one registry (the
    sharded engine and its wrapped planning engine, a stream engine and the
    engine it maintains) accumulate into one coherent snapshot.
    """

    def __init__(self, name: str = "default") -> None:
        #: Registry name, carried as a ``registry`` label by global exports.
        self.name = name
        self._counters: dict[tuple[str, Labels], Counter] = {}
        self._gauges: dict[tuple[str, Labels], Gauge] = {}
        self._histograms: dict[tuple[str, Labels], Histogram] = {}
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        """Whether this registry records anything (``False`` only for the null)."""
        return True

    def counter(self, name: str, **labels: object) -> Counter:
        """Get or create the counter called ``name`` with the given labels."""
        key = (name, _label_key(labels))
        with self._lock:
            existing = self._counters.get(key)
            if existing is None:
                existing = self._counters[key] = Counter(name, labels)
            return existing

    def gauge(
        self, name: str, fn: Callable[[], float] | None = None, **labels: object
    ) -> Gauge:
        """Get or create a gauge; a given ``fn`` (re)binds its collection callback."""
        key = (name, _label_key(labels))
        with self._lock:
            existing = self._gauges.get(key)
            if existing is None:
                existing = self._gauges[key] = Gauge(name, labels, fn=fn)
            elif fn is not None:
                existing.fn = fn
            return existing

    def histogram(
        self, name: str, buckets: Iterable[float] = LATENCY_BUCKETS, **labels: object
    ) -> Histogram:
        """Get or create the histogram called ``name`` with the given labels."""
        key = (name, _label_key(labels))
        with self._lock:
            existing = self._histograms.get(key)
            if existing is None:
                existing = self._histograms[key] = Histogram(name, buckets, labels)
            return existing

    def counters(self) -> tuple[Counter, ...]:
        """Every registered counter, sorted by (name, labels)."""
        with self._lock:
            return tuple(self._counters[k] for k in sorted(self._counters))

    def gauges(self) -> tuple[Gauge, ...]:
        """Every registered gauge, sorted by (name, labels)."""
        with self._lock:
            return tuple(self._gauges[k] for k in sorted(self._gauges))

    def histograms(self) -> tuple[Histogram, ...]:
        """Every registered histogram, sorted by (name, labels)."""
        with self._lock:
            return tuple(self._histograms[k] for k in sorted(self._histograms))

    def snapshot(self) -> dict[str, object]:
        """A JSON-able snapshot of every instrument (see ``docs/observability.md``)."""
        from repro.obs.export import registry_snapshot

        return registry_snapshot(self)

    def prometheus(self, **extra_labels: object) -> str:
        """Prometheus text-format exposition of every instrument."""
        from repro.obs.export import prometheus_text

        return prometheus_text(self, **extra_labels)

    def __len__(self) -> int:
        with self._lock:
            return len(self._counters) + len(self._gauges) + len(self._histograms)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MetricsRegistry({self.name!r}, instruments={len(self)})"


class _NullCounter(Counter):
    """Counter whose increments vanish (shared by every null-registry metric)."""

    __slots__ = ()

    def inc(self, amount: float = 1) -> None:
        """Discard the increment."""

    def add(self, amount: float) -> None:
        """Discard the addition."""


class _NullGauge(Gauge):
    """Gauge that stays at zero."""

    __slots__ = ()

    def set(self, value: float) -> None:
        """Discard the value."""


class _NullHistogram(Histogram):
    """Histogram that records nothing."""

    __slots__ = ()

    def observe(self, value: float) -> None:
        """Discard the observation."""


class NullRegistry(MetricsRegistry):
    """A no-op registry: every instrument it hands out discards its input.

    Injected via :meth:`repro.obs.Observability.disabled` to measure (and
    bound) instrumentation overhead — the engines run the identical code
    path, so instrumented-vs-baseline comparisons isolate the cost of the
    real instruments.
    """

    def __init__(self) -> None:
        super().__init__(name="null")
        self._counter = _NullCounter("null")
        self._gauge = _NullGauge("null")
        self._histogram = _NullHistogram("null")

    @property
    def enabled(self) -> bool:
        """Always ``False``: nothing is recorded."""
        return False

    def counter(self, name: str, **labels: object) -> Counter:
        """The shared no-op counter."""
        return self._counter

    def gauge(
        self, name: str, fn: Callable[[], float] | None = None, **labels: object
    ) -> Gauge:
        """The shared no-op gauge (the callback is dropped)."""
        return self._gauge

    def histogram(
        self, name: str, buckets: Iterable[float] = LATENCY_BUCKETS, **labels: object
    ) -> Histogram:
        """The shared no-op histogram."""
        return self._histogram

    def counters(self) -> tuple[Counter, ...]:
        """Always empty."""
        return ()

    def gauges(self) -> tuple[Gauge, ...]:
        """Always empty."""
        return ()

    def histograms(self) -> tuple[Histogram, ...]:
        """Always empty."""
        return ()


#: Shared no-op registry (see :class:`NullRegistry`).
NULL_REGISTRY = NullRegistry()
