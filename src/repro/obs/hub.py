"""The process-global metrics hub: one place to scrape every live registry.

Engines default to their own :class:`~repro.obs.metrics.MetricsRegistry`
(so per-engine counters stay independent — two engines never share a
``engine_queries_total``), and every default registry auto-registers here.
The hub therefore gives process-wide visibility "for free": a service
embedding several engines dumps them all with one :func:`global_snapshot` /
:func:`global_prometheus` call, which is what ``python -m repro.obs --dump``
exposes on the command line.

Registries are held through weak references: an engine going out of scope
takes its registry out of the hub — a long-running process creating and
discarding engines does not leak metrics.
"""

from __future__ import annotations

import threading
import weakref

from repro.obs.export import prometheus_text, registry_snapshot
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "register",
    "unregister",
    "registries",
    "global_snapshot",
    "global_prometheus",
]

_LOCK = threading.Lock()
_REGISTRIES: "weakref.WeakSet[MetricsRegistry]" = weakref.WeakSet()


def register(registry: MetricsRegistry) -> MetricsRegistry:
    """Add ``registry`` to the hub (weakly held); returns it for chaining."""
    with _LOCK:
        _REGISTRIES.add(registry)
    return registry


def unregister(registry: MetricsRegistry) -> None:
    """Remove ``registry`` from the hub (no-op when absent)."""
    with _LOCK:
        _REGISTRIES.discard(registry)


def registries() -> tuple[MetricsRegistry, ...]:
    """The currently live hub registries, in stable (name, id) order."""
    with _LOCK:
        live = list(_REGISTRIES)
    return tuple(sorted(live, key=lambda r: (r.name, id(r))))


def global_snapshot() -> dict[str, object]:
    """One JSON-able snapshot covering every live registry."""
    return {
        "registries": [registry_snapshot(r) for r in registries()],
    }


def global_prometheus() -> str:
    """Prometheus text covering every live registry (``registry=<name>`` label)."""
    return "".join(prometheus_text(r, registry=r.name) for r in registries())
