"""Exporters: Prometheus text format, JSON snapshots, and snapshot validation.

Two wire formats over one :class:`~repro.obs.metrics.MetricsRegistry`:

* :func:`prometheus_text` — the Prometheus exposition format (``# TYPE``
  headers, cumulative ``_bucket{le=...}`` histogram samples), suitable for a
  ``/metrics`` endpoint or a textfile collector;
* :func:`registry_snapshot` — a JSON-able dict (schema below), what
  ``engine.metrics_snapshot()`` and ``python -m repro.obs --dump`` return.

Snapshot schema (checked by :func:`validate_snapshot`, which CI's obs smoke
job runs against real workload dumps)::

    {
      "registry": str,
      "counters":   [{"name": str, "labels": {str: str}, "value": number}],
      "gauges":     [{"name": str, "labels": {str: str}, "value": number}],
      "histograms": [{"name": str, "labels": {str: str},
                      "buckets": [number...],   # finite upper bounds, ascending
                      "counts": [int...],       # len(buckets) + 1 (+Inf overflow)
                      "count": int, "sum": number,
                      "min": number|null, "max": number|null}],
      # optional — present when the bundle's slow-query log has records:
      "slow_queries": [{"signature": str, "query_class": str, "strategy": str,
                        "wall_seconds": number, "threshold_seconds": number,
                        "resources": {str: number}|null, "explain": str,
                        "trace_summary": [str...], "timestamp": number}],
    }
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "prometheus_text",
    "registry_snapshot",
    "validate_snapshot",
]


def _labels_text(labels, extra: Mapping[str, object]) -> str:
    """Render a Prometheus label block (empty string when there are no labels)."""
    pairs = list(labels) + sorted((str(k), str(v)) for k, v in extra.items())
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape(v)}"' for k, v in pairs)
    return "{" + inner + "}"


def _escape(value: str) -> str:
    """Escape a Prometheus label value."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _num(value: float) -> str:
    """Render a sample value (integers without a trailing ``.0``)."""
    if isinstance(value, float) and value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def prometheus_text(registry: MetricsRegistry, /, **extra_labels: object) -> str:
    """Prometheus text-format exposition of every instrument in ``registry``.

    ``extra_labels`` are appended to every sample — the global hub passes
    ``registry=<name>`` so samples from different engines stay separable
    (the first parameter is positional-only precisely so that label name
    stays available).
    """
    lines: list[str] = []
    seen_types: set[str] = set()

    def header(name: str, kind: str) -> None:
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for counter in registry.counters():
        header(counter.name, "counter")
        lines.append(
            f"{counter.name}{_labels_text(counter.labels, extra_labels)} {_num(counter.value)}"
        )
    for gauge in registry.gauges():
        header(gauge.name, "gauge")
        value = gauge.value
        rendered = "NaN" if isinstance(value, float) and math.isnan(value) else _num(value)
        lines.append(f"{gauge.name}{_labels_text(gauge.labels, extra_labels)} {rendered}")
    for hist in registry.histograms():
        header(hist.name, "histogram")
        cumulative = 0
        for bound, count in zip(
            tuple(hist.buckets) + (float("inf"),), hist.counts
        ):
            cumulative += count
            le = "+Inf" if math.isinf(bound) else _num(bound)
            labels = _labels_text(hist.labels + (("le", le),), extra_labels)
            lines.append(f"{hist.name}_bucket{labels} {cumulative}")
        base = _labels_text(hist.labels, extra_labels)
        lines.append(f"{hist.name}_sum{base} {_num(hist.sum)}")
        lines.append(f"{hist.name}_count{base} {hist.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def registry_snapshot(registry: MetricsRegistry) -> dict[str, object]:
    """A JSON-able snapshot of ``registry`` (schema in the module docstring)."""
    return {
        "registry": registry.name,
        "counters": [
            {"name": c.name, "labels": dict(c.labels), "value": c.value}
            for c in registry.counters()
        ],
        "gauges": [
            {"name": g.name, "labels": dict(g.labels), "value": g.value}
            for g in registry.gauges()
        ],
        "histograms": [
            {
                "name": h.name,
                "labels": dict(h.labels),
                "buckets": list(h.buckets),
                "counts": list(h.counts),
                "count": h.count,
                "sum": h.sum,
                "min": h.min,
                "max": h.max,
            }
            for h in registry.histograms()
        ],
    }


def _check_number(value: object, where: str, errors: list[str], allow_none: bool = False) -> None:
    if value is None and allow_none:
        return
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        errors.append(f"{where}: expected a number, got {type(value).__name__}")
    elif isinstance(value, float) and math.isnan(value):
        errors.append(f"{where}: NaN is not a valid sample value")


def validate_snapshot(snapshot: object) -> list[str]:
    """Validate a :func:`registry_snapshot` dict; returns a list of problems.

    An empty list means the snapshot conforms to the documented schema.
    Used by CI's obs smoke job against real workload dumps and by consumers
    loading persisted snapshots.
    """
    errors: list[str] = []
    if not isinstance(snapshot, dict):
        return [f"snapshot: expected a dict, got {type(snapshot).__name__}"]
    if not isinstance(snapshot.get("registry"), str):
        errors.append("snapshot.registry: expected a string")
    for section in ("counters", "gauges", "histograms"):
        items = snapshot.get(section)
        if not isinstance(items, list):
            errors.append(f"snapshot.{section}: expected a list")
            continue
        for i, item in enumerate(items):
            where = f"snapshot.{section}[{i}]"
            if not isinstance(item, dict):
                errors.append(f"{where}: expected a dict")
                continue
            if not isinstance(item.get("name"), str) or not item.get("name"):
                errors.append(f"{where}.name: expected a non-empty string")
            labels = item.get("labels")
            if not isinstance(labels, dict) or any(
                not isinstance(k, str) or not isinstance(v, str)
                for k, v in (labels.items() if isinstance(labels, dict) else ())
            ):
                errors.append(f"{where}.labels: expected a str->str dict")
            if section in ("counters", "gauges"):
                _check_number(item.get("value"), f"{where}.value", errors)
                if section == "counters" and isinstance(item.get("value"), (int, float)):
                    if item["value"] < 0:
                        errors.append(f"{where}.value: counter must be non-negative")
            else:
                buckets = item.get("buckets")
                counts = item.get("counts")
                if not isinstance(buckets, list) or any(
                    not isinstance(b, (int, float)) or isinstance(b, bool) for b in buckets
                ):
                    errors.append(f"{where}.buckets: expected a list of numbers")
                elif any(b2 <= b1 for b1, b2 in zip(buckets, buckets[1:])):
                    errors.append(f"{where}.buckets: bounds must be strictly increasing")
                if not isinstance(counts, list) or any(
                    not isinstance(c, int) or isinstance(c, bool) or c < 0 for c in counts
                ):
                    errors.append(f"{where}.counts: expected a list of non-negative ints")
                elif isinstance(buckets, list) and len(counts) != len(buckets) + 1:
                    errors.append(
                        f"{where}.counts: expected len(buckets)+1 entries "
                        f"({len(buckets) + 1}), got {len(counts)}"
                    )
                _check_number(item.get("count"), f"{where}.count", errors)
                _check_number(item.get("sum"), f"{where}.sum", errors)
                _check_number(item.get("min"), f"{where}.min", errors, allow_none=True)
                _check_number(item.get("max"), f"{where}.max", errors, allow_none=True)
                if (
                    isinstance(counts, list)
                    and all(isinstance(c, int) and not isinstance(c, bool) for c in counts)
                    and isinstance(item.get("count"), int)
                    and sum(counts) != item["count"]
                ):
                    errors.append(f"{where}.count: does not equal the bucket-count sum")
    if "slow_queries" in snapshot:
        slow = snapshot["slow_queries"]
        if not isinstance(slow, list):
            errors.append("snapshot.slow_queries: expected a list")
        else:
            for i, record in enumerate(slow):
                where = f"snapshot.slow_queries[{i}]"
                if not isinstance(record, dict):
                    errors.append(f"{where}: expected a dict")
                    continue
                for key in ("signature", "query_class", "strategy"):
                    if not isinstance(record.get(key), str):
                        errors.append(f"{where}.{key}: expected a string")
                _check_number(record.get("wall_seconds"), f"{where}.wall_seconds", errors)
                resources = record.get("resources")
                if resources is not None:
                    if not isinstance(resources, dict):
                        errors.append(f"{where}.resources: expected a dict or null")
                    else:
                        for key, value in resources.items():
                            _check_number(value, f"{where}.resources.{key}", errors)
                summary = record.get("trace_summary")
                if not isinstance(summary, list) or any(
                    not isinstance(line, str) for line in summary
                ):
                    errors.append(f"{where}.trace_summary: expected a list of strings")
    return errors
