"""Per-query resource accounting, slow-query log, and crash flight recorder.

Three cross-process observability primitives live here, all
dependency-light (this module must not import engine/shard/stream code —
those layers import *it*):

- :class:`ResourceUsage` — the per-query resource record (wall time, rows
  scanned, candidates pruned, kernel dispatches, shards touched, shared-
  memory bytes attached) attached to every ``Explain`` and root span and
  aggregated per query signature in the registry.
- :class:`TaskCounters` + :func:`capture_task_counters` — a thread-local
  capture context the shard execution path reports scan/prune/attach
  counts into.  When no capture is active the reporting cost is a single
  ``getattr`` returning ``None``, so the disabled-instrumentation budget
  is unaffected.
- :class:`SlowQueryLog` — a bounded ring of structured records for queries
  exceeding a configurable latency threshold, exposed via
  ``engine.slow_queries()`` and ``python -m repro.obs --slow``.
- :class:`FlightRecorder` — serializes the most recent traces, events and
  a metrics snapshot to a ``flight_record.json`` for post-crash forensics;
  ``DurableEngine`` persists one on checkpoints, recovery, and crash-point
  trips.

See ``docs/observability.md`` for the record formats.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = [
    "FlightRecorder",
    "NULL_SLOW_LOG",
    "ResourceUsage",
    "SlowQueryLog",
    "TaskCounters",
    "capture_task_counters",
    "record_usage",
    "task_counters",
]


@dataclass
class ResourceUsage:
    """Resources one query consumed, end to end.

    Sharded runs sum the per-shard worker counters (rows scanned,
    candidates pruned, shm bytes attached) with the coordinator's own
    kernel-dispatch delta; unsharded runs report the coordinator numbers
    alone with ``shards_touched == 0``.
    """

    wall_seconds: float = 0.0
    rows_scanned: int = 0
    candidates_pruned: int = 0
    kernel_dispatches: int = 0
    shards_touched: int = 0
    shm_bytes_attached: int = 0

    def to_dict(self) -> dict[str, Any]:
        """JSON-able mapping with one key per field."""
        return {
            "wall_seconds": self.wall_seconds,
            "rows_scanned": self.rows_scanned,
            "candidates_pruned": self.candidates_pruned,
            "kernel_dispatches": self.kernel_dispatches,
            "shards_touched": self.shards_touched,
            "shm_bytes_attached": self.shm_bytes_attached,
        }

    def add(self, other: "ResourceUsage") -> None:
        """Accumulate ``other`` into this record (wall times sum too)."""
        self.wall_seconds += other.wall_seconds
        self.rows_scanned += other.rows_scanned
        self.candidates_pruned += other.candidates_pruned
        self.kernel_dispatches += other.kernel_dispatches
        self.shards_touched += other.shards_touched
        self.shm_bytes_attached += other.shm_bytes_attached

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ResourceUsage":
        """Rebuild a record from :meth:`to_dict` output (unknown keys ignored)."""
        return cls(
            wall_seconds=float(data.get("wall_seconds", 0.0)),
            rows_scanned=int(data.get("rows_scanned", 0)),
            candidates_pruned=int(data.get("candidates_pruned", 0)),
            kernel_dispatches=int(data.get("kernel_dispatches", 0)),
            shards_touched=int(data.get("shards_touched", 0)),
            shm_bytes_attached=int(data.get("shm_bytes_attached", 0)),
        )


def record_usage(registry: Any, signature: str, usage: ResourceUsage) -> None:
    """Aggregate one query's resources per signature into ``registry``.

    Emits the ``query_resource_*_total{signature=}`` counter family (one
    series per query signature) so operators can attribute fleet resource
    consumption to query shapes.  ``registry`` is duck-typed (anything with
    ``counter(name, **labels)``) to keep this module dependency-light.
    """
    registry.counter("query_resource_queries_total", signature=signature).inc()
    registry.counter("query_resource_wall_seconds_total", signature=signature).add(
        usage.wall_seconds
    )
    registry.counter("query_resource_rows_scanned_total", signature=signature).inc(
        usage.rows_scanned
    )
    registry.counter("query_resource_candidates_pruned_total", signature=signature).inc(
        usage.candidates_pruned
    )
    registry.counter("query_resource_kernel_dispatches_total", signature=signature).inc(
        usage.kernel_dispatches
    )
    registry.counter("query_resource_shards_touched_total", signature=signature).inc(
        usage.shards_touched
    )
    registry.counter("query_resource_shm_bytes_attached_total", signature=signature).inc(
        usage.shm_bytes_attached
    )


@dataclass
class TaskCounters:
    """Mutable per-task resource counters the shard execution path fills in."""

    rows_scanned: int = 0
    candidates_pruned: int = 0
    shm_bytes_attached: int = 0


_ACTIVE = threading.local()


def task_counters() -> TaskCounters | None:
    """The capture context active on this thread, or ``None``.

    Hot-path call sites guard their counting with this — one attribute
    lookup when capture is off.
    """
    return getattr(_ACTIVE, "counters", None)


@contextmanager
def capture_task_counters(counters: TaskCounters) -> Iterator[TaskCounters]:
    """Make ``counters`` the active capture context for this thread.

    Thread-local (not process-global) because the thread pool backend runs
    shard tasks concurrently in one process; nesting restores the outer
    context on exit.
    """
    previous = getattr(_ACTIVE, "counters", None)
    _ACTIVE.counters = counters
    try:
        yield counters
    finally:
        _ACTIVE.counters = previous


@dataclass
class SlowQueryLog:
    """Bounded ring of structured records for threshold-exceeding queries.

    Each record carries the query signature, chosen strategy, rendered
    ``Explain``, stitched trace summary and :class:`ResourceUsage` — the
    forensic bundle an operator wants when a query misses its latency
    budget.  ``threshold_seconds`` is mutable at runtime; callers should
    pre-check :meth:`would_record` so the expensive explain/trace
    rendering only happens for queries that will actually be logged.
    """

    threshold_seconds: float = 0.25
    capacity: int = 128
    enabled: bool = True
    _records: list[dict[str, Any]] = field(default_factory=list, repr=False)
    _recorded: int = field(default=0, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def would_record(self, wall_seconds: float) -> bool:
        """Cheap pre-check: would a query of this wall time be logged?"""
        return self.enabled and wall_seconds >= self.threshold_seconds

    def record(
        self,
        *,
        signature: str,
        query_class: str,
        strategy: str,
        wall_seconds: float,
        resources: ResourceUsage | None = None,
        explain: str = "",
        trace_summary: tuple[str, ...] = (),
    ) -> None:
        """Append one structured record (oldest entries fall off the ring)."""
        if not self.enabled:
            return
        entry = {
            "signature": signature,
            "query_class": query_class,
            "strategy": strategy,
            "wall_seconds": wall_seconds,
            "threshold_seconds": self.threshold_seconds,
            "resources": resources.to_dict() if resources is not None else None,
            "explain": explain,
            "trace_summary": list(trace_summary),
            "timestamp": time.time(),
        }
        with self._lock:
            self._records.append(entry)
            self._recorded += 1
            overflow = len(self._records) - self.capacity
            if overflow > 0:
                del self._records[:overflow]

    def records(self, n: int | None = None) -> list[dict[str, Any]]:
        """The most recent ``n`` records (all retained records by default)."""
        with self._lock:
            records = list(self._records)
        return records if n is None else records[-n:]

    @property
    def recorded(self) -> int:
        """Lifetime count of records, including ones the ring dropped."""
        return self._recorded

    def clear(self) -> None:
        """Drop every retained record (lifetime count is preserved)."""
        with self._lock:
            del self._records[:]


class _NullSlowLog(SlowQueryLog):
    """Shared no-op slow log used by ``Observability.disabled()``."""

    def __init__(self) -> None:
        super().__init__(threshold_seconds=float("inf"), capacity=0, enabled=False)

    def would_record(self, wall_seconds: float) -> bool:
        """Always ``False`` — nothing is ever slow enough to log."""
        return False

    def record(self, **_kwargs: Any) -> None:  # type: ignore[override]
        """Discard the record."""


#: Shared no-op slow log handed out by ``Observability.disabled()``.
NULL_SLOW_LOG = _NullSlowLog()


class FlightRecorder:
    """Persists a bounded forensic snapshot of an ``Observability`` bundle.

    The recorder does not duplicate any runtime state — the bundle's
    tracer, event log and registry already ring-buffer the recent past —
    so attaching one costs nothing on the query path.  :meth:`persist`
    serializes the last ``capacity`` traces and events, a full metrics
    snapshot, the slow-query ring, and any :meth:`mark` annotations into
    one JSON file via an atomic rename, so a crash mid-write can never
    leave a torn record behind.
    """

    def __init__(self, obs: Any, capacity: int = 64) -> None:
        self.obs = obs
        self.capacity = capacity
        self._marks: list[dict[str, Any]] = []

    def mark(self, label: str, **attributes: Any) -> None:
        """Append a small annotation carried in every subsequent record."""
        self._marks.append({"label": label, "attributes": dict(attributes)})
        overflow = len(self._marks) - self.capacity
        if overflow > 0:
            del self._marks[:overflow]

    def snapshot(self, reason: str, error: str | None = None) -> dict[str, Any]:
        """The flight-record payload as a dict (what :meth:`persist` writes)."""
        traces = [t.to_dict() for t in self.obs.tracer.recent(self.capacity)]
        events = [e.to_dict() for e in self.obs.events.events(n=self.capacity)]
        slow = getattr(self.obs, "slow", None)
        return {
            "reason": reason,
            "error": error,
            "pid": os.getpid(),
            "timestamp": time.time(),
            "traces": traces,
            "events": events,
            "metrics": self.obs.snapshot(),
            "slow_queries": slow.records() if slow is not None else [],
            "marks": list(self._marks),
        }

    def persist(self, path: Any, reason: str, error: str | None = None) -> None:
        """Atomically write the flight record to ``path`` (tmp + rename)."""
        payload = self.snapshot(reason, error=error)
        path = os.fspath(path)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, default=repr)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
