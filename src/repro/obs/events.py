"""Structured event log: rare-but-significant engine occurrences, ring-buffered.

Counters say *how often*; the event log says *what exactly happened*:

=====================  =========================================================
kind                   emitted when
=====================  =========================================================
``plan_demotion``      a mispredicted plan is evicted for re-planning
``stale_plan_rejected``  a version-stamp mismatch rejects a cached plan
``stale_shard_retry``  sharded execution raced a mutation and retried
``guard_violation``    a standing query's guard forced a full re-execution
``index_repair``       a mutation was absorbed by localized index repair
``index_rebuild``      a mutation (or registration) paid a full index build
``subscription_stale`` an out-of-band mutation staled a standing query
=====================  =========================================================

Events carry a wall-clock timestamp, a monotonically increasing sequence
number and free-form attributes.  The log is a bounded ring (old events fall
off) guarded by one small lock — emission is cheap enough to leave on, and
these events are orders of magnitude rarer than queries.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.exceptions import InvalidParameterError

__all__ = ["Event", "EventLog", "NULL_EVENTS"]


@dataclass(frozen=True, slots=True)
class Event:
    """One structured occurrence: a kind, a timestamp and attributes."""

    #: Event kind (see the module docstring's table).
    kind: str
    #: Monotonically increasing per-log sequence number.
    seq: int
    #: Wall-clock timestamp (``time.time()``).
    timestamp: float
    #: Free-form attributes (relation, strategy, subscription id, ...).
    attributes: dict = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        """JSON-able representation."""
        return {
            "kind": self.kind,
            "seq": self.seq,
            "timestamp": self.timestamp,
            "attributes": dict(sorted(self.attributes.items())),
        }


class EventLog:
    """Thread-safe bounded ring of :class:`Event` records."""

    def __init__(self, capacity: int = 512) -> None:
        if capacity <= 0:
            raise InvalidParameterError("event log capacity must be positive")
        #: Maximum retained events.
        self.capacity = capacity
        #: Events emitted over the log's lifetime (retained or not).
        self.emitted = 0
        self._ring: deque[Event] = deque(maxlen=capacity)
        self._counts: dict[str, int] = {}
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        """Whether this log records anything (``False`` only for the null)."""
        return True

    def emit(self, kind: str, **attributes: object) -> Event | None:
        """Append one event; returns it (``None`` from a disabled log)."""
        with self._lock:
            event = Event(kind, self.emitted, time.time(), dict(attributes))
            self._ring.append(event)
            self.emitted += 1
            self._counts[kind] = self._counts.get(kind, 0) + 1
            return event

    def events(self, kind: str | None = None, n: int | None = None) -> tuple[Event, ...]:
        """Retained events, oldest first, optionally filtered by kind/limited."""
        with self._lock:
            out = tuple(e for e in self._ring if kind is None or e.kind == kind)
        return out if n is None else out[-n:]

    def counts(self) -> dict[str, int]:
        """Lifetime emission counts per kind (survives ring-buffer falloff)."""
        with self._lock:
            return dict(sorted(self._counts.items()))

    def clear(self) -> None:
        """Drop retained events (lifetime counts are kept)."""
        with self._lock:
            self._ring.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EventLog(retained={len(self)}, emitted={self.emitted})"


class _NullEventLog(EventLog):
    """A disabled event log: emissions vanish."""

    @property
    def enabled(self) -> bool:
        """Always ``False``: nothing is recorded."""
        return False

    def emit(self, kind: str, **attributes: object) -> Event | None:
        """Discard the event."""
        return None


#: Shared disabled event log (see :class:`_NullEventLog`).
NULL_EVENTS = _NullEventLog()
