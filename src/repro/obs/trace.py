"""Hierarchical tracing: spans around engine phases, ring-buffered traces.

A :class:`Span` measures one phase of work (``plan``, ``execute``,
``shard-fan-out``, ``stream-maintain``, ``calibrate``, ...).  Spans nest via
a per-thread stack kept by the :class:`Tracer`: opening a span while another
is active makes it a child, so one ``engine.run`` produces a small tree

.. code-block:: text

    query [strategy=counting, observed_cost=12.0]
      plan
      execute
      calibrate

When a *root* span closes, the tracer wraps it in a :class:`Trace` and
appends it to a bounded ring buffer — the engine's recent execution history,
retrievable with ``engine.traces()`` and summarized into
:meth:`repro.engine.explain.Explain.render`'s ``trace`` block.

Instrumentation is always-on but cheap: a span costs two ``perf_counter``
calls, one allocation and two list operations.  The :data:`NULL_TRACER`
(used by :meth:`repro.obs.Observability.disabled`) hands out a shared no-op
span so the disabled path allocates nothing.
"""

from __future__ import annotations

import threading
from collections import deque
from time import perf_counter
from typing import Iterator

from repro.exceptions import InvalidParameterError

__all__ = ["Span", "Trace", "Tracer", "NULL_TRACER"]


class Span:
    """One timed phase of work, possibly with children and attributes.

    Use as a context manager (obtained from :meth:`Tracer.span`); the span
    is placed in the tree on ``__enter__`` and its duration fixed on
    ``__exit__``.  An exception propagating through the span marks it with
    an ``error`` attribute (and is re-raised).
    """

    __slots__ = ("name", "attributes", "children", "started", "duration", "_tracer")

    #: Real spans record; the null span reports ``False`` here.
    enabled = True

    def __init__(self, tracer: "Tracer | None", name: str, attributes: dict) -> None:
        #: Phase name (``query``, ``plan``, ``execute``, ...).
        self.name = name
        #: Attribute mapping (query signature, strategy, observed cost, ...).
        self.attributes = attributes
        #: Child spans, in open order.
        self.children: list[Span] = []
        #: ``perf_counter`` timestamp at ``__enter__`` (``None`` before).
        self.started: float | None = None
        #: Duration in seconds, fixed at ``__exit__`` (``None`` while open).
        self.duration: float | None = None
        self._tracer = tracer

    def annotate(self, **attributes: object) -> "Span":
        """Attach (or overwrite) attributes; returns the span for chaining."""
        self.attributes.update(attributes)
        return self

    def __enter__(self) -> "Span":
        tracer = self._tracer
        if tracer is not None:
            stack = tracer._stack()
            if stack:
                stack[-1].children.append(self)
            stack.append(self)
        self.started = perf_counter()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.duration = perf_counter() - (self.started or 0.0)
        if exc_type is not None:
            self.attributes["error"] = getattr(exc_type, "__name__", str(exc_type))
        tracer = self._tracer
        if tracer is not None:
            stack = tracer._stack()
            if stack and stack[-1] is self:
                stack.pop()
            if not stack:
                tracer._record(self)

    def walk(self, depth: int = 0) -> Iterator[tuple[int, "Span"]]:
        """Yield ``(depth, span)`` over the subtree in depth-first order."""
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)

    def find(self, name: str) -> "Span | None":
        """The first span called ``name`` in this subtree (depth-first)."""
        for _, span in self.walk():
            if span.name == name:
                return span
        return None

    def to_dict(self) -> dict[str, object]:
        """JSON-able representation of the subtree."""
        return {
            "name": self.name,
            "duration_ms": None if self.duration is None else self.duration * 1000.0,
            "attributes": {k: _jsonable(v) for k, v in sorted(self.attributes.items())},
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        """Rebuild a detached span subtree from :meth:`to_dict` output.

        The result has no tracer (it is never re-recorded); the coordinator
        grafts worker-captured subtrees under its own open spans with this
        — the distributed-trace stitching path (see ``docs/observability.md``).
        """
        span = cls(None, str(data.get("name", "span")), dict(data.get("attributes") or {}))
        duration_ms = data.get("duration_ms")
        span.duration = None if duration_ms is None else float(duration_ms) / 1000.0
        span.children = [cls.from_dict(child) for child in data.get("children") or []]
        return span

    def graft(self, child: "Span") -> "Span":
        """Append a detached subtree as a child; returns the grafted child."""
        self.children.append(child)
        return child

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        ms = "?" if self.duration is None else f"{self.duration * 1000.0:.2f}ms"
        return f"Span({self.name!r}, {ms}, children={len(self.children)})"


def _jsonable(value: object) -> object:
    """Coerce an attribute value to something JSON-serializable (recursively)."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return repr(value)


class _NullSpan(Span):
    """Shared do-nothing span handed out by a disabled tracer."""

    __slots__ = ()
    enabled = False

    def __init__(self) -> None:
        super().__init__(None, "null", {})

    def annotate(self, **attributes: object) -> "Span":
        """Discard the attributes."""
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        return None


class Trace:
    """One completed root span — a query's (or push's) phase tree.

    Thin wrapper adding summary helpers; the structure lives in
    :attr:`root`.
    """

    __slots__ = ("root",)

    def __init__(self, root: Span) -> None:
        #: The completed root span.
        self.root = root

    @property
    def name(self) -> str:
        """The root span's phase name."""
        return self.root.name

    @property
    def duration(self) -> float:
        """Total duration in seconds (0.0 if the root never closed)."""
        return self.root.duration or 0.0

    def walk(self) -> Iterator[tuple[int, Span]]:
        """Yield ``(depth, span)`` over the whole tree in depth-first order."""
        return self.root.walk()

    def find(self, name: str) -> Span | None:
        """The first span called ``name``, or ``None``."""
        return self.root.find(name)

    def phases(self) -> tuple[str, ...]:
        """Every phase name in the tree, depth-first."""
        return tuple(span.name for _, span in self.walk())

    def summary_lines(self) -> tuple[str, ...]:
        """Stable indented one-line-per-span summary (for EXPLAIN rendering)."""
        lines = []
        for depth, span in self.walk():
            ms = 0.0 if span.duration is None else span.duration * 1000.0
            attrs = ""
            if span.attributes:
                inner = ", ".join(
                    f"{k}={_jsonable(v)}" for k, v in sorted(span.attributes.items())
                )
                attrs = f" [{inner}]"
            lines.append(f"{'  ' * depth}{span.name} {ms:.3f}ms{attrs}")
        return tuple(lines)

    def to_dict(self) -> dict[str, object]:
        """JSON-able representation of the trace."""
        return self.root.to_dict()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Trace({self.name!r}, {self.duration * 1000.0:.2f}ms, phases={len(self.phases())})"


class Tracer:
    """Factory for spans plus the ring buffer of completed root traces.

    Span nesting is tracked per thread (each ``run_many`` worker builds its
    own tree).  Completed roots go into a bounded ``deque`` — old traces
    fall off, so a long-lived engine's memory stays bounded.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise InvalidParameterError("tracer capacity must be positive")
        #: Maximum retained completed traces.
        self.capacity = capacity
        #: Completed root traces recorded over the tracer's lifetime.
        self.traces_recorded = 0
        self._ring: deque[Trace] = deque(maxlen=capacity)
        self._local = threading.local()
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        """Whether this tracer records spans (``False`` only for the null)."""
        return True

    def span(self, name: str, **attributes: object) -> Span:
        """A new span (context manager); nests under the thread's open span."""
        return Span(self, name, attributes)

    def current(self) -> Span | None:
        """The innermost open span on this thread, or ``None``."""
        stack = self._stack()
        return stack[-1] if stack else None

    def recent(self, n: int | None = None) -> tuple[Trace, ...]:
        """The most recent completed traces, oldest first (all by default)."""
        with self._lock:
            traces = tuple(self._ring)
        return traces if n is None else traces[-n:]

    def last(self) -> Trace | None:
        """The most recently completed trace, or ``None``."""
        with self._lock:
            return self._ring[-1] if self._ring else None

    def clear(self) -> None:
        """Drop the retained traces (the lifetime counter is kept)."""
        with self._lock:
            self._ring.clear()

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _record(self, root: Span) -> None:
        with self._lock:
            self._ring.append(Trace(root))
            self.traces_recorded += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tracer(retained={len(self)}, recorded={self.traces_recorded})"


class _NullTracer(Tracer):
    """A disabled tracer: every span is the shared no-op span."""

    def __init__(self) -> None:
        super().__init__(capacity=1)
        self._span = _NullSpan()

    @property
    def enabled(self) -> bool:
        """Always ``False``: nothing is recorded."""
        return False

    def span(self, name: str, **attributes: object) -> Span:
        """The shared no-op span (attributes are dropped)."""
        return self._span

    def recent(self, n: int | None = None) -> tuple[Trace, ...]:
        """Always empty."""
        return ()

    def last(self) -> Trace | None:
        """Always ``None``."""
        return None


#: Shared disabled tracer (see :class:`_NullTracer`).
NULL_TRACER = _NullTracer()
