"""The long-lived :class:`SpatialEngine`: register once, query many times.

``Query.run`` is a one-shot API: every call re-derives the physical strategy
and recomputes the index statistics behind it.  The engine amortizes both
across the lifetime of a serving process:

* **Datasets** are registered once by name; their indexes are built eagerly at
  registration so no query thread ever races a lazy index build.
* **Statistics** (`IndexStats`) are cached per dataset version in a
  :class:`~repro.engine.stats_cache.StatsCache`.
* **Plans** are cached in an LRU :class:`~repro.engine.plan_cache.PlanCache`
  keyed on the canonical query signature; a cache hit executes with zero
  statistics computations and zero strategy re-derivations.
* **Batches** run on a thread pool via :meth:`run_many`; chained-join queries
  in a batch share a B→C neighborhood cache.
* **Mutations** (:meth:`insert` / :meth:`remove`) maintain the index and
  invalidate exactly the cache entries the mutated relation could stale.

Typical usage::

    engine = SpatialEngine()
    engine.register(name="cafes", points=cafe_points)
    engine.register(name="offices", points=office_points)
    result = engine.run(Query(KnnSelect(relation="cafes", focal=home, k=5)))
    results = engine.run_many(queries)          # concurrent batch
    print(engine.explain(queries[0]).render())  # cached EXPLAIN
"""

from __future__ import annotations

import threading
from time import perf_counter
from typing import Callable, Iterable, Mapping, Sequence

from repro import kernels
from repro.engine.executor import ReadWriteLock, SharedNeighborhoodCaches, run_batch
from repro.kernels import dispatch
from repro.engine.explain import Explain
from repro.engine.plan_cache import CachedPlan, PlanCache
from repro.engine.stats_cache import StatsCache
from repro.exceptions import InvalidParameterError, UnsupportedQueryError
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.index.stats import IndexStats
from repro.obs import Observability
from repro.obs.events import Event
from repro.obs.flight import ResourceUsage, record_usage
from repro.obs.metrics import LATENCY_BUCKETS
from repro.obs.trace import Trace
from repro.planner.calibrate import CalibrationStore, Observation, observed_cost
from repro.planner.optimizer import Optimizer
from repro.planner.plan import PhysicalPlan
from repro.query.dataset import Dataset, IndexKind
from repro.query.predicates import KnnJoin
from repro.query.query import Query
from repro.query.results import QueryResult
from repro.storage.update import AppliedUpdate, UpdateBatch

__all__ = ["SpatialEngine"]


class SpatialEngine:
    """A registry of named datasets plus plan/statistics caches.

    Parameters
    ----------
    optimizer:
        The optimizer shared by every query the engine plans.  Queries run
        through the engine use this optimizer (their own ``optimizer``
        attribute only matters for standalone ``Query.run`` calls), so one
        configuration governs the whole plan cache.
    plan_cache_size:
        Maximum number of cached plans (LRU eviction beyond it).
    max_workers:
        Default thread-pool width for :meth:`run_many`.
    eager_build:
        Build each dataset's index (and warm its statistics) at registration
        time (the default).  The sharded engine registers its base datasets
        with ``eager_build=False`` because it executes against per-shard
        indexes and must not pay for — or hold memory for — the monolithic
        index.
    stats_compute:
        Optional override for how :class:`IndexStats` are produced on a
        statistics-cache miss (see :class:`StatsCache`).
    calibration:
        The engine's observation store
        (:class:`~repro.planner.calibrate.CalibrationStore`); a default one
        is created when omitted.  Every executed plan records its observed
        abstract cost here, and planning consults the warm profiles — the
        feedback loop described in ``docs/planner.md``.
    demotion_factor:
        Misprediction tolerance: when a plan's observed cost exceeds its
        estimate by more than this factor, the plan is demoted (evicted via
        :meth:`PlanCache.reject`) and the next execution re-plans against
        the freshly recorded observations.  ``float("inf")`` disables
        demotion (the calibration store still fills, and EXPLAIN still
        reports estimated-vs-observed).
    obs:
        The engine's observability bundle
        (:class:`~repro.obs.Observability`): metrics registry, span tracer
        and structured event log.  A fresh per-engine bundle is created when
        omitted (and auto-registered with the process-global hub); pass
        :meth:`Observability.disabled` for a no-op bundle, or share one
        bundle between cooperating engines (the sharded/stream wrappers do).
    """

    def __init__(
        self,
        optimizer: Optimizer | None = None,
        plan_cache_size: int = 256,
        max_workers: int | None = None,
        eager_build: bool = True,
        stats_compute: Callable[[Dataset], IndexStats] | None = None,
        calibration: CalibrationStore | None = None,
        demotion_factor: float = 3.0,
        obs: Observability | None = None,
    ) -> None:
        if demotion_factor <= 1.0:
            raise InvalidParameterError("demotion_factor must exceed 1.0")
        self.optimizer = optimizer or Optimizer()
        self.max_workers = max_workers
        self.eager_build = eager_build
        # Explicit None check: an empty store is falsy (len() == 0), and
        # `or` would silently replace a caller-supplied store.
        self.calibration = calibration if calibration is not None else CalibrationStore()
        self.demotion_factor = demotion_factor
        #: The observability bundle (registry + tracer + event log).
        self.obs = obs if obs is not None else Observability(name="engine")
        registry = self.obs.registry
        self._datasets: dict[str, Dataset] = {}
        self._stats_cache = StatsCache(compute=stats_compute, registry=registry)
        self._plan_cache = PlanCache(plan_cache_size, registry=registry)
        self._chained_caches = SharedNeighborhoodCaches()
        # Queries run under the read side, mutations under the write side, so
        # an insert/remove never swaps an index under an in-flight query.
        self._rw = ReadWriteLock()
        # Serializes per-entry feedback (EWMA + misprediction counters) fed
        # concurrently by run_many worker threads.
        self._feedback_lock = threading.Lock()
        self._mutation_listeners: list[Callable[[str], None]] = []
        self._queries = registry.counter("engine_queries_total")
        self._batches = registry.counter("engine_batches_total")
        self._mispredictions = registry.counter("engine_mispredictions_total")
        self._demotions = registry.counter("engine_demotions_total")
        self._calibration_observations = registry.counter(
            "engine_calibration_observations_total"
        )
        self._query_latency = registry.histogram(
            "engine_query_latency_seconds", LATENCY_BUCKETS
        )
        registry.gauge("engine_datasets", fn=lambda: len(self._datasets))

    @property
    def queries_executed(self) -> int:
        """Queries executed (view over ``engine_queries_total``)."""
        return int(self._queries.value)

    @property
    def batches_executed(self) -> int:
        """Batches executed via :meth:`run_many` (view over ``engine_batches_total``)."""
        return int(self._batches.value)

    @property
    def mispredictions(self) -> int:
        """Executions whose observed cost exceeded the estimate by more than
        ``demotion_factor`` (view over ``engine_mispredictions_total``)."""
        return int(self._mispredictions.value)

    @property
    def demotions(self) -> int:
        """Mispredicted plans actually evicted for re-planning (view over
        ``engine_demotions_total``)."""
        return int(self._demotions.value)

    # ------------------------------------------------------------------
    # Dataset registry
    # ------------------------------------------------------------------
    def register(
        self,
        dataset: Dataset | None = None,
        *,
        name: str | None = None,
        points: Iterable[Point | tuple[float, float]] | None = None,
        index_kind: IndexKind = "grid",
        bounds: Rect | None = None,
        **index_options: object,
    ) -> Dataset:
        """Register a relation, replacing any previous one of the same name.

        Either pass a ready-made :class:`Dataset`, or ``name=`` and
        ``points=`` (plus index options) to build one.  The index is built
        and the statistics cache warmed before the method returns, so the
        first query pays no hidden construction cost and concurrent readers
        never trigger a lazy build.
        """
        if dataset is None:
            if name is None or points is None:
                raise InvalidParameterError(
                    "register() needs a Dataset or both name= and points="
                )
            dataset = Dataset.from_points(
                name, points, index_kind=index_kind, bounds=bounds, **index_options
            )
        elif name is not None and name != dataset.name:
            raise InvalidParameterError(
                f"dataset is named {dataset.name!r} but name={name!r} was given"
            )
        with self._rw.write():
            if dataset.name in self._datasets:
                self._datasets[dataset.name].set_index_observer(None)
                self._invalidate(dataset.name)
            self._datasets[dataset.name] = dataset
            self._attach_index_observer(dataset)
            if self.eager_build:
                dataset.index  # build eagerly
                self._stats_cache.get(dataset)  # warm the statistics cache
        return dataset

    def unregister(self, name: str) -> None:
        """Remove a relation and every cache entry that touches it."""
        with self._rw.write():
            if name not in self._datasets:
                raise UnsupportedQueryError(f"no dataset registered as {name!r}")
            self._invalidate(name)
            self._datasets[name].set_index_observer(None)
            del self._datasets[name]

    def _attach_index_observer(self, dataset: Dataset) -> None:
        """Mirror the dataset's index activity into metrics and events.

        The observer closure captures this engine's instruments; it is
        dropped on :meth:`unregister` / re-registration (and excluded from
        pickling by :meth:`Dataset.__getstate__`, so fork/process shard
        pools never carry it across).
        """
        name = dataset.name
        rebuilds = self.obs.registry.counter("index_rebuilds_total", relation=name)
        repairs = self.obs.registry.counter("index_repairs_total", relation=name)
        events = self.obs.events

        def observer(kind: str) -> None:
            if kind == "repair":
                repairs.inc()
                events.emit("index_repair", relation=name)
            else:
                rebuilds.inc()
                events.emit("index_rebuild", relation=name)

        dataset.set_index_observer(observer)

    def dataset(self, name: str) -> Dataset:
        """The registered dataset called ``name``."""
        try:
            return self._datasets[name]
        except KeyError:
            raise UnsupportedQueryError(f"no dataset registered as {name!r}") from None

    @property
    def datasets(self) -> Mapping[str, Dataset]:
        """Read-only view of the registered relations (name → dataset)."""
        return dict(self._datasets)

    def __contains__(self, name: str) -> bool:
        return name in self._datasets

    def __len__(self) -> int:
        return len(self._datasets)

    # ------------------------------------------------------------------
    # Incremental updates
    # ------------------------------------------------------------------
    def insert(self, name: str, points: Iterable[Point | tuple[float, float]]) -> int:
        """Add points to a registered relation; maintains index and caches."""
        with self._rw.write():
            dataset = self.dataset(name)
            added = dataset.insert(points)
            if added:
                self._refresh(dataset)
        if added:
            self._notify_mutation(name)
        return added

    def remove(self, name: str, pids: Iterable[int]) -> int:
        """Remove points (by pid) from a registered relation."""
        with self._rw.write():
            dataset = self.dataset(name)
            removed = dataset.remove(pids)
            if removed:
                self._refresh(dataset)
        if removed:
            self._notify_mutation(name)
        return removed

    def move(self, name: str, moves: Iterable[tuple[int, float, float]]) -> int:
        """Relocate points of a registered relation; returns the number moved.

        ``moves`` are ``(pid, new_x, new_y)`` triples.  Like every other
        engine-routed mutation this maintains the index (via the localized
        repair fast path for small batches) and invalidates exactly the cache
        entries the relation could stale.
        """
        with self._rw.write():
            dataset = self.dataset(name)
            moved = dataset.move(moves)
            if moved:
                self._refresh(dataset)
        if moved:
            self._notify_mutation(name)
        return moved

    def apply_update(self, name: str, batch: UpdateBatch) -> AppliedUpdate:
        """Apply one insert/remove/move batch to a registered relation.

        The batched entry point of the streaming layer: one write-lock
        acquisition, one dataset version bump and one cache invalidation for
        the whole batch.  Returns the effective mutation (see
        :meth:`Dataset.apply_update`).
        """
        with self._rw.write():
            dataset = self.dataset(name)
            applied = dataset.apply_update(batch)
            if applied.size:
                self._refresh(dataset)
        if applied.size:
            self._notify_mutation(name)
        return applied

    def _refresh(self, dataset: Dataset) -> None:
        """After a mutation: drop stale cache entries, rebuild index + stats."""
        self._invalidate(dataset.name)
        if self.eager_build:
            dataset.index  # rebuild eagerly (keeps concurrent reads race-free)
            self._stats_cache.get(dataset)

    def add_mutation_listener(self, listener: Callable[[str], None]) -> None:
        """Register a callback fired after every engine-routed mutation.

        The listener receives the mutated relation's name, *outside* the
        engine's write lock (so it may issue queries).  This is the targeted
        invalidation hook the stream layer uses: a subscription registry
        listens here so that mutations performed directly through the engine
        — bypassing :meth:`repro.stream.StreamEngine.push` — mark the
        affected standing queries stale instead of silently serving results
        computed against dropped data.
        """
        self._mutation_listeners.append(listener)

    def remove_mutation_listener(self, listener: Callable[[str], None]) -> None:
        """Unregister a callback added with :meth:`add_mutation_listener`."""
        self._mutation_listeners.remove(listener)

    def _notify_mutation(self, name: str) -> None:
        for listener in tuple(self._mutation_listeners):
            listener(name)

    def invalidate(self, name: str) -> None:
        """Drop every cache entry touching relation ``name``.

        Queries served through :meth:`run` never need this — engine-routed
        mutations invalidate automatically.  It exists for owners that mutate
        a registered dataset out-of-band (e.g. the sharded engine, which
        routes mutations to per-shard datasets) and then need the plan,
        statistics and neighborhood caches dropped under the write lock.
        """
        with self._rw.write():
            self._invalidate(name)

    def _invalidate(self, name: str) -> None:
        self._stats_cache.invalidate(name)
        self._plan_cache.invalidate_relation(name)
        self._chained_caches.invalidate_relation(name)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def stats(self, name: str) -> IndexStats:
        """Cached block statistics of a registered relation."""
        with self._rw.read():
            return self._stats_cache.get(self.dataset(name))

    def _stats_provider(self, dataset: Dataset) -> IndexStats:
        return self._stats_cache.get(dataset)

    # ------------------------------------------------------------------
    # Planning / EXPLAIN
    # ------------------------------------------------------------------
    def plan(self, query: Query) -> PhysicalPlan:
        """The (cached) physical plan the engine would execute for ``query``."""
        with self._rw.read():
            return self._cached_plan(query).plan

    def explain(self, query: Query) -> Explain:
        """The (cached) EXPLAIN record for ``query``.

        Once the plan has executed at least once, the record carries the
        execution feedback — ``estimated_total`` vs the EWMA
        ``observed_total`` (and the ``cost feedback`` block in
        :meth:`Explain.render`).
        """
        with self._rw.read():
            return self._cached_plan(query).explain_with_feedback()

    def _cached_plan(self, query: Query) -> CachedPlan:
        signature = query.signature(self._datasets)
        entry = self._plan_cache.get(signature)
        if entry is not None and entry.versions == self._versions_of(entry.relations):
            return entry
        if entry is not None:
            # The entry was planned against a different dataset version: the
            # dataset was mutated without going through insert()/remove()
            # (which would have evicted it).  Never execute a plan derived
            # from stale statistics — drop everything the relation touched.
            self._plan_cache.reject(entry)
            self.obs.events.emit(
                "stale_plan_rejected",
                signature=str(signature),
                relations=",".join(sorted(entry.relations)),
            )
            for name in sorted(entry.relations):
                self._invalidate(name)
        # Stamp the versions BEFORE planning: an out-of-band mutation that
        # lands mid-planning then leaves a pre-mutation stamp on a (possibly
        # mixed) plan, which the next lookup rejects — fail-safe.  Stamping
        # after planning would bless stale statistics with a current stamp.
        versions = self._versions_of(query.relations())
        # Plan with this engine's optimizer, cached statistics and the
        # calibration store's observed profiles.
        planner = Query(
            *query.predicates,
            strategy=query.strategy,
            optimizer=self.optimizer,
            tree=query.tree,
        )
        plan = planner.plan(
            self._datasets,
            stats_provider=self._stats_provider,
            calibration=self.calibration,
        )
        if plan.query_class == "algebra":
            # Surface the rewrite outcome once per plan derivation (cache
            # hits skip straight past this, so the event stream mirrors the
            # optimizer's actual work).
            trail = plan.decisions.get("rule_trail", ())
            self.obs.events.emit(
                "algebra_rewrite",
                signature=str(signature),
                rules=",".join(trail) if trail else "",
                fired=len(trail),
            )
        entry = CachedPlan(
            signature=signature,
            plan=plan,
            explain=Explain.from_plan(plan, query.relations()),
            relations=query.relations(),
            versions=versions,
            estimated_total=plan.estimates.get(plan.strategy),
            calibration_key=Query.calibration_key_of(signature),
        )
        self._plan_cache.put(entry)
        return entry

    def _versions_of(self, relations: Iterable[str]) -> tuple[tuple[str, int], ...]:
        """Current ``(name, version)`` stamps of the given relations, sorted."""
        return tuple(
            (name, self._datasets[name].version)
            for name in sorted(relations)
            if name in self._datasets
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, query: Query) -> QueryResult:
        """Execute ``query`` against the registered relations.

        The first execution of a query shape derives and caches its plan;
        every later execution reuses it — no statistics recomputation, no
        strategy re-derivation.  Each execution's observed work feeds the
        calibration store, and a plan whose observed cost exceeds its
        estimate by more than :attr:`demotion_factor` is demoted — the next
        execution re-plans against the recorded observations.
        """
        tracer = self.obs.tracer
        capture = self.obs.enabled
        usage: ResourceUsage | None = None
        with tracer.span("query") as root:
            with self._rw.read():
                with tracer.span("plan"):
                    entry = self._cached_plan(query)
                root.annotate(
                    signature=str(entry.signature),
                    query_class=entry.plan.query_class,
                    strategy=entry.plan.strategy,
                    kernel_backend=kernels.backend(),
                )
                kernel_before = dispatch.counter_values() if capture else None
                started = perf_counter()
                with tracer.span("execute"):
                    result = query.run(
                        self._datasets,
                        plan=entry.plan,
                        chained_cache=self._chained_cache_for(query, entry.plan),
                    )
                wall = perf_counter() - started
            with tracer.span("calibrate"):
                observed = self._observe(entry, result, wall)
            if observed is not None:
                root.annotate(observed_cost=round(observed, 4))
            if capture:
                stats = result.stats
                usage = ResourceUsage(
                    wall_seconds=wall,
                    rows_scanned=stats.points_considered,
                    candidates_pruned=stats.points_pruned,
                    kernel_dispatches=int(
                        sum(d["delta"] for d in dispatch.counter_deltas(kernel_before))
                    ),
                )
                root.annotate(resources=usage.to_dict())
        if root.enabled:
            entry.last_trace = Trace(root)
        if usage is not None:
            entry.last_resources = usage
            record_usage(self.obs.registry, str(entry.signature), usage)
            slow = self.obs.slow
            if slow.would_record(wall):
                slow.record(
                    signature=str(entry.signature),
                    query_class=entry.plan.query_class,
                    strategy=entry.plan.strategy,
                    wall_seconds=wall,
                    resources=usage,
                    explain=entry.explain_with_feedback().render(),
                    trace_summary=Trace(root).summary_lines(),
                )
        self._queries.inc()
        self._query_latency.observe(wall)
        return result

    def plan_entry(self, query: Query) -> CachedPlan:
        """The (cached) plan-cache entry the engine would execute for ``query``.

        Like :meth:`plan`, but returns the whole entry.  External executors
        (the sharded engine) hold on to it across their own execution and
        hand it back to :meth:`record_execution` — one lookup per run, and
        the feedback lands on exactly the entry that produced the plan (a
        re-lookup could double-count cache hits, or race a mutation and
        record stale counters against a freshly re-planned entry).
        """
        with self._rw.read():
            return self._cached_plan(query)

    def record_execution(
        self, entry: CachedPlan, result: QueryResult, wall_seconds: float
    ) -> float | None:
        """Feed one externally executed result back into the calibration loop.

        The sharded engine executes plans itself (fan-out + merge) but plans
        through this engine's caches (:meth:`plan_entry`); it calls back here
        so its aggregated per-shard work counters warm the same profiles —
        and trip the same misprediction check — as locally executed plans.
        Returns the observed abstract cost (see :meth:`_observe`).
        """
        return self._observe(entry, result, wall_seconds)

    def _observe(
        self, entry: CachedPlan, result: QueryResult, wall: float
    ) -> float | None:
        """Record one execution's observed cost; demote a mispredicted plan.

        Returns the observed abstract cost (``None`` when the strategy has
        no observable cost or the plan carries no calibration key) so run
        paths can annotate their root span with it.
        """
        if result.node_costs:
            observed = self._record_node_costs(result, wall)
        else:
            observed = observed_cost(
                entry.plan.strategy, result.stats, self.optimizer.cost_model
            )
        if observed is None or entry.calibration_key is None:
            return None
        stats = result.stats
        profile = self.calibration.record(
            entry.calibration_key,
            Observation(
                strategy=entry.plan.strategy,
                observed_total=observed,
                wall_seconds=wall,
                estimated_total=entry.estimated_total,
                neighborhoods=stats.neighborhoods_computed,
                points_considered=stats.points_considered,
                blocks_examined=stats.blocks_examined,
            ),
        )
        self._calibration_observations.inc()
        # run_many feeds this from concurrent worker threads: the store
        # locks internally, but the entry's EWMA and the engine counters are
        # plain read-modify-writes — serialize them here.
        with self._feedback_lock:
            entry.record_observation(observed, alpha=self.calibration.alpha)
            estimated = entry.estimated_total
            if estimated is None or observed <= estimated * self.demotion_factor:
                return observed
            entry.mispredictions += 1
            self._mispredictions.inc()
            # Demote only when re-planning can actually change the outcome:
            # the plan must have strategy alternatives (single-strategy
            # classes re-derive the identical plan — estimates for those
            # converge through _blend_observed on natural re-plans instead),
            # and the executed strategy's profile must be warm so the re-plan
            # estimates it from observation.  And count a demotion only if
            # this call evicted the entry — a concurrent batch job may have
            # demoted the shared entry already.
            if len(entry.plan.estimates) > 1 and profile.warm(
                self.calibration.min_observations
            ):
                if self._plan_cache.reject(entry, recount=False):
                    self._demotions.inc()
                    self.obs.events.emit(
                        "plan_demotion",
                        signature=str(entry.signature),
                        strategy=entry.plan.strategy,
                        estimated=round(estimated, 4),
                        observed=round(observed, 4),
                        ratio=round(observed / estimated, 4),
                    )
            return observed

    def _record_node_costs(self, result: QueryResult, wall: float) -> float:
        """Record an algebra execution's per-operator work; return its total.

        Each ``(node signature, units)`` entry becomes one calibration
        observation under the node's own signature (strategy
        ``"algebra-node"``), so the compiler's next plan estimates that
        operator from its observed history.  The whole-plan observed cost is
        the converted sum — the same currency as the plan's estimate.
        """
        from repro.algebra.compile import NODE_PROFILE_STRATEGY, observed_node_cost

        cost_model = self.optimizer.cost_model
        total = 0.0
        for node_signature, units in result.node_costs:
            cost = observed_node_cost(node_signature, units, cost_model)
            total += cost
            self.calibration.record(
                node_signature,
                Observation(
                    strategy=NODE_PROFILE_STRATEGY,
                    observed_total=cost,
                    wall_seconds=wall,
                ),
            )
            self._calibration_observations.inc()
        return total

    def run_many(
        self,
        queries: Sequence[Query],
        max_workers: int | None = None,
    ) -> list[QueryResult]:
        """Execute a batch of queries, returning results in input order.

        Plans are resolved up front (sequentially — they are cache lookups
        after the first occurrence of each shape), then execution fans out on
        a thread pool.  Chained-join queries over the same relations share a
        B→C neighborhood cache, so later queries in the batch benefit from
        the neighborhoods computed by earlier ones.
        """
        with self._rw.read():
            entries = [self._cached_plan(q) for q in queries]

        tracer = self.obs.tracer

        def job(query: Query, entry: CachedPlan):
            def run() -> QueryResult:
                # Each job opens its own root span (span nesting is tracked
                # per thread, so every batch job yields a standalone trace).
                with tracer.span(
                    "query",
                    signature=str(entry.signature),
                    query_class=entry.plan.query_class,
                    strategy=entry.plan.strategy,
                    batched=True,
                ) as root:
                    # Each job holds the read side for its whole execution,
                    # so a concurrent mutation waits for the batch to drain.
                    with self._rw.read():
                        started = perf_counter()
                        with tracer.span("execute"):
                            result = query.run(
                                self._datasets,
                                plan=entry.plan,
                                chained_cache=self._chained_cache_for(query, entry.plan),
                            )
                        wall = perf_counter() - started
                    # Calibration is fed per job (the store is thread-safe),
                    # so a mispredicted shape is demoted after its first
                    # batch, not after the workload's.
                    with tracer.span("calibrate"):
                        observed = self._observe(entry, result, wall)
                    if observed is not None:
                        root.annotate(observed_cost=round(observed, 4))
                    if self.obs.enabled:
                        # Batch jobs share the process-global kernel registry
                        # across concurrent threads, so a per-job dispatch
                        # delta would be racy — report scan/prune work only.
                        stats = result.stats
                        usage = ResourceUsage(
                            wall_seconds=wall,
                            rows_scanned=stats.points_considered,
                            candidates_pruned=stats.points_pruned,
                        )
                        root.annotate(resources=usage.to_dict())
                        entry.last_resources = usage
                        record_usage(self.obs.registry, str(entry.signature), usage)
                        slow = self.obs.slow
                        if slow.would_record(wall):
                            slow.record(
                                signature=str(entry.signature),
                                query_class=entry.plan.query_class,
                                strategy=entry.plan.strategy,
                                wall_seconds=wall,
                                resources=usage,
                                explain=entry.explain_with_feedback().render(),
                                trace_summary=Trace(root).summary_lines(),
                            )
                if root.enabled:
                    entry.last_trace = Trace(root)
                self._query_latency.observe(wall)
                return result

            return run

        jobs = [job(query, entry) for query, entry in zip(queries, entries)]
        workers = max_workers if max_workers is not None else self.max_workers
        results = run_batch(jobs, max_workers=workers)
        self._queries.inc(len(queries))
        self._batches.inc()
        return results

    def _chained_cache_for(self, query: Query, plan: PhysicalPlan):
        """The shared B→C cache for a chained-join query (else ``None``)."""
        if plan.query_class != "chained-joins":
            return None
        joins = [p for p in query.predicates if isinstance(p, KnnJoin)]
        chained = Query._chain_order(joins[0], joins[1])
        if chained is None:
            return None
        ab, bc = chained
        b = self._datasets[ab.inner]
        c = self._datasets[bc.inner]
        key = (b.name, b.version, c.name, c.version, bc.k)
        return self._chained_caches.cache_for(key)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def metrics(self) -> dict[str, object]:
        """Counters describing how well the caches are doing."""
        return {
            "datasets": len(self._datasets),
            "queries_executed": self.queries_executed,
            "batches_executed": self.batches_executed,
            "plan_cache": {
                "size": len(self._plan_cache),
                "hits": self._plan_cache.hits,
                "misses": self._plan_cache.misses,
                "evictions": self._plan_cache.evictions,
                "invalidations": self._plan_cache.invalidations,
            },
            "stats_cache": {
                "size": len(self._stats_cache),
                "hits": self._stats_cache.hits,
                "misses": self._stats_cache.misses,
                "invalidations": self._stats_cache.invalidations,
            },
            "chained_caches": {
                "caches": len(self._chained_caches),
                "neighborhoods": self._chained_caches.total_entries(),
            },
            "calibration": {
                **self.calibration.metrics(),
                "mispredictions": self.mispredictions,
                "demotions": self.demotions,
            },
        }

    def metrics_snapshot(self) -> dict[str, object]:
        """JSON-able snapshot of every registry-backed instrument.

        Unlike the curated :meth:`metrics` dict, this is the raw export of
        the engine's :class:`~repro.obs.metrics.MetricsRegistry` — the same
        shape ``python -m repro.obs --dump`` prints and
        :func:`repro.obs.export.validate_snapshot` checks.
        """
        return self.obs.snapshot()

    def prometheus_metrics(self) -> str:
        """Prometheus text-format exposition of the engine's registry."""
        return self.obs.prometheus()

    def traces(self, n: int | None = None) -> tuple[Trace, ...]:
        """The most recent completed execution traces, oldest first."""
        return self.obs.tracer.recent(n)

    def events(self, kind: str | None = None, n: int | None = None) -> tuple[Event, ...]:
        """Recent structured events (plan demotions, index repairs, ...)."""
        return self.obs.events.events(kind, n)

    def slow_queries(self, n: int | None = None) -> list[dict]:
        """Recent slow-query records, oldest first (see
        :class:`~repro.obs.flight.SlowQueryLog`)."""
        return self.obs.slow.records(n)

    @property
    def plan_cache(self) -> PlanCache:
        """The engine's plan cache (exposed for tests and monitoring)."""
        return self._plan_cache

    @property
    def stats_cache(self) -> StatsCache:
        """The engine's statistics cache (exposed for tests and monitoring)."""
        return self._stats_cache

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SpatialEngine(datasets={sorted(self._datasets)}, "
            f"plans={len(self._plan_cache)}, queries={self.queries_executed})"
        )
