"""Per-dataset :class:`IndexStats` cache keyed on ``(name, version)``.

``IndexStats.from_index`` walks every block of an index — O(number of blocks)
with a Python-level loop over block rectangles — and the planner consults the
statistics of up to two relations per query.  A long-lived engine serving many
queries over the same registered relations should pay that walk once per
dataset *version*, not once per query; this cache provides exactly that.

Entries are validated against :attr:`Dataset.version`, so a stale entry left
behind by :meth:`Dataset.insert` / :meth:`Dataset.remove` can never be served
even if the owner forgets to call :meth:`StatsCache.invalidate`.
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.index.stats import IndexStats
from repro.obs.metrics import Counter, MetricsRegistry
from repro.query.dataset import Dataset

__all__ = ["StatsCache"]


def _default_compute(dataset: Dataset) -> IndexStats:
    """Build statistics the direct way: walk the dataset's own index."""
    return IndexStats.from_index(dataset.index)


class StatsCache:
    """Thread-safe cache of per-dataset index statistics.

    The cache is correct without explicit invalidation (entries carry the
    dataset version they were computed at), but :meth:`invalidate` frees the
    memory eagerly and keeps the hit/miss counters honest after mutations.

    Parameters
    ----------
    compute:
        How to produce :class:`IndexStats` for a dataset on a cache miss.
        The default walks the dataset's own index; the sharded engine
        substitutes an aggregation over its per-shard indexes so that the
        full index never has to be built (see
        :meth:`repro.index.stats.IndexStats.aggregate`).
    """

    def __init__(
        self,
        compute: Callable[[Dataset], IndexStats] | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self._compute = compute or _default_compute
        self._entries: dict[str, tuple[int, IndexStats]] = {}
        self._lock = threading.Lock()
        make = registry.counter if registry is not None else Counter
        self._hits = make("stats_cache_hits_total")
        self._misses = make("stats_cache_misses_total")
        self._invalidations = make("stats_cache_invalidations_total")
        if registry is not None:
            registry.gauge("stats_cache_entries", fn=lambda: len(self._entries))

    @property
    def hits(self) -> int:
        """Lookups served from the cache (view over the hits counter)."""
        return int(self._hits.value)

    @property
    def misses(self) -> int:
        """Lookups that had to compute statistics."""
        return int(self._misses.value)

    @property
    def invalidations(self) -> int:
        """Entries dropped eagerly by :meth:`invalidate`."""
        return int(self._invalidations.value)

    def get(self, dataset: Dataset) -> IndexStats:
        """Statistics for ``dataset``, computed at most once per version."""
        with self._lock:
            entry = self._entries.get(dataset.name)
            if entry is not None and entry[0] == dataset.version:
                self._hits.inc()
                return entry[1]
        # Compute outside the lock: building the statistics is the expensive
        # part, and a duplicated computation under contention is benign (last
        # write wins).
        stats = self._compute(dataset)
        with self._lock:
            self._misses.inc()
            self._entries[dataset.name] = (dataset.version, stats)
        return stats

    def peek(self, dataset: Dataset) -> IndexStats | None:
        """Return the cached statistics without computing on a miss."""
        with self._lock:
            entry = self._entries.get(dataset.name)
            if entry is not None and entry[0] == dataset.version:
                return entry[1]
            return None

    def invalidate(self, name: str) -> bool:
        """Drop the entry for ``name``; returns whether one existed."""
        with self._lock:
            existed = self._entries.pop(name, None) is not None
            if existed:
                self._invalidations.inc()
            return existed

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StatsCache(entries={len(self._entries)}, hits={self.hits}, misses={self.misses})"
