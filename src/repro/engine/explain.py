"""The ``Explain`` record: why the engine chose a physical strategy.

Every plan-cache entry carries an :class:`Explain` alongside the executable
:class:`~repro.planner.plan.PhysicalPlan`, so ``engine.explain(query)`` is as
cheap as a cache lookup once the query shape has been planned.  The
:meth:`Explain.render` output is deliberately stable (sorted keys, fixed
layout) so it can be snapshot-tested.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.planner.plan import PhysicalPlan

__all__ = ["Explain"]


def _fmt(value: object) -> str:
    """Render a decision value compactly and deterministically."""
    if isinstance(value, Enum):
        return str(value.value)
    if isinstance(value, tuple):
        return "(" + ", ".join(_fmt(v) for v in value) + ")"
    return str(value)


@dataclass(frozen=True)
class Explain:
    """A human-readable record of one planning decision.

    Attributes
    ----------
    query_class / strategy:
        The paper query class and the chosen physical strategy.
    relations:
        The relation names the query touches, sorted.
    decisions:
        The optimizer's per-class choices, stringified, sorted by key.
    estimates:
        Cost-model totals per considered strategy (empty when the strategy
        was forced or needs no comparison), sorted by strategy name.
    """

    query_class: str
    strategy: str
    relations: tuple[str, ...]
    decisions: tuple[tuple[str, str], ...] = ()
    estimates: tuple[tuple[str, float], ...] = ()

    @classmethod
    def from_plan(cls, plan: PhysicalPlan, relations: frozenset[str]) -> "Explain":
        """Build the record for a freshly derived plan."""
        return cls(
            query_class=plan.query_class,
            strategy=plan.strategy,
            relations=tuple(sorted(relations)),
            decisions=tuple(sorted((k, _fmt(v)) for k, v in plan.decisions.items())),
            estimates=tuple(sorted((k, float(v)) for k, v in plan.estimates.items())),
        )

    def render(self) -> str:
        """A stable, indented EXPLAIN text block."""
        lines = [
            "EXPLAIN",
            f"  query class: {self.query_class}",
            f"  strategy:    {self.strategy}",
            f"  relations:   {', '.join(self.relations)}",
        ]
        if self.decisions:
            lines.append("  decisions:")
            for key, value in self.decisions:
                lines.append(f"    {key} = {value}")
        if self.estimates:
            lines.append("  cost estimates:")
            width = max(len(name) for name, _ in self.estimates)
            for name, total in self.estimates:
                lines.append(f"    {name.ljust(width)} = {total:.2f}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
