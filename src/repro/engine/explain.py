"""The ``Explain`` record: why the engine chose a physical strategy.

Every plan-cache entry carries an :class:`Explain` alongside the executable
:class:`~repro.planner.plan.PhysicalPlan`, so ``engine.explain(query)`` is as
cheap as a cache lookup once the query shape has been planned.  The
:meth:`Explain.render` output is deliberately stable (sorted keys, fixed
layout) so it can be snapshot-tested.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum

from repro.obs.flight import ResourceUsage
from repro.planner.plan import PhysicalPlan

__all__ = ["Explain"]


def _fmt(value: object) -> str:
    """Render a decision value compactly and deterministically."""
    if isinstance(value, Enum):
        return str(value.value)
    if isinstance(value, tuple):
        return "(" + ", ".join(_fmt(v) for v in value) + ")"
    return str(value)


@dataclass(frozen=True)
class Explain:
    """A human-readable record of one planning decision.

    Attributes
    ----------
    query_class / strategy:
        The paper query class and the chosen physical strategy.
    relations:
        The relation names the query touches, sorted.
    decisions:
        The optimizer's per-class choices, stringified, sorted by key.
    estimates:
        Cost-model totals per considered strategy (empty when the strategy
        was forced or needs no comparison), sorted by strategy name.
    estimated_total:
        The abstract cost the chosen strategy was *planned* at (``None``
        when the plan carries no estimate for it).
    observed_total:
        EWMA of the abstract cost executions of this plan actually paid —
        the calibration loop's feedback signal (``None`` until the plan has
        run at least once; see ``docs/planner.md``).
    observations:
        How many executions the observed figure averages over.
    rule_trail:
        For algebra plans: the rewrite rules that fired, in application
        order (empty for the six paper classes and for trees no rule
        matched).
    node_estimates:
        For algebra plans: the per-operator cost table ``(node label,
        estimate)`` of the optimized tree, in tree-walk order.
    trace_summary:
        Indented per-phase timing lines from the plan's most recent traced
        execution (empty until the plan has run under an enabled tracer;
        see :meth:`repro.obs.trace.Trace.summary_lines`).
    resources:
        The plan's most recent execution's
        :class:`~repro.obs.flight.ResourceUsage` record (``None`` until the
        plan has run under an enabled bundle).
    """

    query_class: str
    strategy: str
    relations: tuple[str, ...]
    decisions: tuple[tuple[str, str], ...] = ()
    estimates: tuple[tuple[str, float], ...] = ()
    estimated_total: float | None = None
    observed_total: float | None = None
    observations: int = 0
    rule_trail: tuple[str, ...] = ()
    node_estimates: tuple[tuple[str, float], ...] = ()
    trace_summary: tuple[str, ...] = ()
    resources: ResourceUsage | None = None

    @classmethod
    def from_plan(cls, plan: PhysicalPlan, relations: frozenset[str]) -> "Explain":
        """Build the record for a freshly derived plan."""
        estimated = plan.estimates.get(plan.strategy)
        decisions = dict(plan.decisions)
        # Algebra plans carry structured rewrite/costing artifacts in their
        # decisions dict; lift those into dedicated fields so render() can
        # lay them out instead of flattening them into one decision line.
        rule_trail = tuple(decisions.pop("rule_trail", ()))
        node_estimates = tuple(
            (str(label), float(cost))
            for label, cost in decisions.pop("node_estimates", ())
        )
        return cls(
            query_class=plan.query_class,
            strategy=plan.strategy,
            relations=tuple(sorted(relations)),
            decisions=tuple(sorted((k, _fmt(v)) for k, v in decisions.items())),
            estimates=tuple(sorted((k, float(v)) for k, v in plan.estimates.items())),
            estimated_total=float(estimated) if estimated is not None else None,
            rule_trail=rule_trail,
            node_estimates=node_estimates,
        )

    def with_observed(self, observed_total: float, observations: int) -> "Explain":
        """A copy carrying execution feedback (estimated-vs-observed cost)."""
        return replace(
            self, observed_total=observed_total, observations=observations
        )

    def with_trace(self, lines: "tuple[str, ...] | list[str]") -> "Explain":
        """A copy carrying the latest execution's span-tree summary."""
        return replace(self, trace_summary=tuple(lines))

    def with_resources(self, usage: ResourceUsage) -> "Explain":
        """A copy carrying the latest execution's resource accounting."""
        return replace(self, resources=usage)

    @property
    def misprediction_ratio(self) -> float | None:
        """``observed / estimated`` — above 1.0 the model undershot reality."""
        if self.observed_total is None or not self.estimated_total:
            return None
        return self.observed_total / self.estimated_total

    def render(self) -> str:
        """A stable, indented EXPLAIN text block."""
        lines = [
            "EXPLAIN",
            f"  query class: {self.query_class}",
            f"  strategy:    {self.strategy}",
            f"  relations:   {', '.join(self.relations)}",
        ]
        if self.decisions:
            lines.append("  decisions:")
            for key, value in self.decisions:
                lines.append(f"    {key} = {value}")
        if self.rule_trail:
            lines.append("  rewrite rules fired:")
            for index, name in enumerate(self.rule_trail, start=1):
                lines.append(f"    {index}. {name}")
        if self.node_estimates:
            lines.append("  operator estimates:")
            for label, cost in self.node_estimates:
                lines.append(f"    {label} = {cost:.2f}")
        if self.estimates:
            lines.append("  cost estimates:")
            width = max(len(name) for name, _ in self.estimates)
            for name, total in self.estimates:
                lines.append(f"    {name.ljust(width)} = {total:.2f}")
        if self.observed_total is not None:
            estimated = (
                f"{self.estimated_total:.2f}" if self.estimated_total is not None else "?"
            )
            lines.append("  cost feedback:")
            lines.append(f"    estimated = {estimated}")
            lines.append(
                f"    observed  = {self.observed_total:.2f} (n={self.observations})"
            )
        if self.resources is not None:
            lines.append("  resources:")
            for key, value in sorted(self.resources.to_dict().items()):
                if key == "wall_seconds":
                    lines.append(f"    {key} = {value:.4f}")
                else:
                    lines.append(f"    {key} = {value}")
        if self.trace_summary:
            lines.append("  trace:")
            for line in self.trace_summary:
                lines.append(f"    {line}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
