"""Batched/concurrent execution support for the engine.

Two pieces live here:

* :func:`run_batch` — run a list of zero-argument jobs on a thread pool,
  preserving input order and propagating the first exception.  The paper's
  algorithms are pure index reads, so queries over registered (immutable
  between mutations) datasets parallelize safely; NumPy's vectorized
  MINDIST/MAXDIST kernels release the GIL for part of the work.
* :class:`SharedNeighborhoodCaches` — a registry of B→C neighborhood caches
  for chained joins, keyed by the identity *and version* of the B and C
  relations plus ``k_bc``.  Within one batch (and across batches) every
  chained query over the same relations shares one cache, so a B point whose
  neighborhood was computed by one query is a cache hit for every later query
  (Section 4.2.1's caching argument, amortized across the whole workload
  instead of a single query).
"""

from __future__ import annotations

import contextlib
import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterator, MutableMapping, Sequence, TypeVar

from repro.exceptions import InvalidParameterError
from repro.locality.neighborhood import Neighborhood

__all__ = ["run_batch", "SharedNeighborhoodCaches", "ReadWriteLock"]

T = TypeVar("T")

#: (b_relation, b_version, c_relation, c_version, k_bc)
CacheKey = tuple[str, int, str, int, int]


def run_batch(
    jobs: Sequence[Callable[[], T]],
    max_workers: int | None = None,
) -> list[T]:
    """Run ``jobs`` and return their results in input order.

    ``max_workers=1`` (or a single job) degrades to a plain sequential loop,
    which keeps tracebacks simple and avoids pool overhead for tiny batches.
    The first job exception is re-raised.
    """
    if max_workers is not None and max_workers <= 0:
        raise InvalidParameterError("max_workers must be positive")
    if not jobs:
        return []
    if max_workers == 1 or len(jobs) == 1:
        return [job() for job in jobs]
    workers = max_workers if max_workers is not None else min(8, len(jobs))
    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(lambda job: job(), jobs))


class ReadWriteLock:
    """Many concurrent readers or one exclusive writer.

    The engine runs queries under the read side (they may overlap freely) and
    dataset mutations under the write side, so an ``insert``/``remove`` can
    never swap an index out from under an in-flight query.  No writer
    preference: a writer waits for in-flight readers to drain, and readers
    arriving meanwhile are admitted (mutations can be delayed under constant
    read load, but no lock acquisition can deadlock).
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writing = False

    @contextlib.contextmanager
    def read(self) -> Iterator[None]:
        """Acquire the shared (reader) side for the duration of the block."""
        with self._cond:
            while self._writing:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextlib.contextmanager
    def write(self) -> Iterator[None]:
        """Acquire the exclusive (writer) side for the duration of the block."""
        with self._cond:
            while self._writing or self._readers:
                self._cond.wait()
            self._writing = True
        try:
            yield
        finally:
            with self._cond:
                self._writing = False
                self._cond.notify_all()


class SharedNeighborhoodCaches:
    """Registry of shared B→C neighborhood caches for chained joins.

    Keys include the dataset versions, so a mutated relation naturally starts
    from a fresh cache; :meth:`invalidate_relation` additionally drops the
    stale mappings eagerly.  The registry is LRU-bounded to ``max_caches``
    keys (each key's mapping can grow toward |B| neighborhoods, so unbounded
    distinct shapes — e.g. user-chosen ``k`` values — must not accumulate for
    the process lifetime).  The per-key mapping is a plain dict — its
    ``get``/``__setitem__`` uses are atomic under the GIL, and a duplicated
    neighborhood computation by two racing queries is benign (both compute
    the same value).
    """

    def __init__(self, max_caches: int = 32) -> None:
        if max_caches <= 0:
            raise InvalidParameterError("max_caches must be positive")
        self.max_caches = max_caches
        self._caches: OrderedDict[CacheKey, dict[int, Neighborhood]] = OrderedDict()
        self._lock = threading.Lock()
        self.evictions = 0

    def cache_for(self, key: CacheKey) -> MutableMapping[int, Neighborhood]:
        """The shared cache mapping for ``key``, created on first use."""
        with self._lock:
            cache = self._caches.setdefault(key, {})
            self._caches.move_to_end(key)
            while len(self._caches) > self.max_caches:
                self._caches.popitem(last=False)
                self.evictions += 1
            return cache

    def invalidate_relation(self, name: str) -> int:
        """Drop every cache involving relation ``name``; returns the count."""
        with self._lock:
            doomed = [k for k in self._caches if k[0] == name or k[2] == name]
            for key in doomed:
                del self._caches[key]
            return len(doomed)

    def clear(self) -> None:
        """Drop every cache (eviction counter is kept)."""
        with self._lock:
            self._caches.clear()

    def __len__(self) -> int:
        return len(self._caches)

    def total_entries(self) -> int:
        """Total cached neighborhoods across every key."""
        with self._lock:
            return sum(len(c) for c in self._caches.values())
