"""``repro.engine`` — a long-lived spatial query engine.

The engine layer turns the one-shot :class:`repro.Query` API into a serving
system: datasets are registered once, index statistics and physical plans are
cached across queries, batches execute concurrently, and incremental updates
maintain the index while invalidating exactly the affected cache entries.

See :class:`SpatialEngine` for the entry point.
"""

from repro.engine.executor import SharedNeighborhoodCaches, run_batch
from repro.engine.explain import Explain
from repro.engine.plan_cache import CachedPlan, PlanCache
from repro.engine.session import SpatialEngine
from repro.engine.stats_cache import StatsCache

__all__ = [
    "SpatialEngine",
    "PlanCache",
    "CachedPlan",
    "StatsCache",
    "Explain",
    "SharedNeighborhoodCaches",
    "run_batch",
]
