"""LRU plan cache keyed on canonical query signatures.

The signature (:meth:`repro.query.query.Query.signature`) covers everything
the planner's decisions depend on — predicate classes, relation names, index
kinds, bucketed k-values and any forced strategy — and nothing they don't
(focal points, range windows).  Repeated queries of the same *shape* therefore
hit the cache even when their parameters differ, which is the common pattern
of serving traffic ("nearest k cafés to <wherever the user is>").

Entries remember which relations they touch so a dataset mutation can evict
exactly the plans it could stale.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.engine.explain import Explain
from repro.exceptions import InvalidParameterError
from repro.obs.flight import ResourceUsage
from repro.obs.metrics import Counter, MetricsRegistry
from repro.obs.trace import Trace
from repro.planner.plan import PhysicalPlan

__all__ = ["CachedPlan", "PlanCache"]

Signature = tuple


@dataclass
class CachedPlan:
    """One plan-cache entry: the executable plan plus its EXPLAIN record.

    ``versions`` records each touched relation's :attr:`Dataset.version` at
    planning time.  Mutations routed through the engine evict affected
    entries eagerly, but a dataset mutated *behind the engine's back* leaves
    the entry in place — the version stamp lets the engine detect that at
    lookup/execution time and re-plan instead of serving a plan derived from
    stale statistics.

    The feedback fields close the calibration loop (see ``docs/planner.md``):
    ``estimated_total`` is the abstract cost the chosen strategy was planned
    at; :meth:`record_observation` folds each execution's observed cost into
    the ``observed_total`` EWMA.  ``calibration_key`` names the observation
    profiles the plan's executions feed (and re-planning consults).
    """

    signature: Signature
    plan: PhysicalPlan
    explain: Explain
    relations: frozenset[str]
    versions: tuple[tuple[str, int], ...] = ()
    hits: int = field(default=0)
    estimated_total: float | None = None
    calibration_key: tuple | None = None
    observed_total: float | None = None
    observations: int = 0
    mispredictions: int = 0
    #: The most recent execution's span tree (``None`` until the plan has
    #: run under an enabled tracer); summarized into EXPLAIN's trace block.
    last_trace: Trace | None = None
    #: The most recent execution's resource accounting (``None`` until the
    #: plan has run under an enabled bundle); shown in EXPLAIN's resources
    #: block and aggregated per signature in the registry.
    last_resources: ResourceUsage | None = None

    def record_observation(self, observed: float, alpha: float = 0.3) -> None:
        """Fold one execution's observed abstract cost into the EWMA."""
        if self.observed_total is None:
            self.observed_total = observed
        else:
            self.observed_total = (1.0 - alpha) * self.observed_total + alpha * observed
        self.observations += 1

    def explain_with_feedback(self) -> Explain:
        """The EXPLAIN record, enriched with observed cost, the last trace
        and the last execution's resource accounting."""
        record = self.explain
        if self.observations and self.observed_total is not None:
            record = record.with_observed(self.observed_total, self.observations)
        if self.last_trace is not None:
            record = record.with_trace(self.last_trace.summary_lines())
        if self.last_resources is not None:
            record = record.with_resources(self.last_resources)
        return record


class PlanCache:
    """A thread-safe LRU mapping of query signature → :class:`CachedPlan`.

    Counters (hits, misses, rejects, evictions, invalidations) are
    :class:`~repro.obs.metrics.Counter` instruments — standalone by default,
    or obtained from a given ``registry`` so the cache's behaviour lands in
    the owning engine's metrics snapshot.  The historical attribute names
    (:attr:`hits`, :attr:`misses`, ...) remain as thin read views.
    """

    def __init__(self, max_size: int = 256, registry: MetricsRegistry | None = None) -> None:
        if max_size <= 0:
            raise InvalidParameterError("plan cache max_size must be positive")
        self.max_size = max_size
        self._entries: OrderedDict[Signature, CachedPlan] = OrderedDict()
        self._lock = threading.Lock()
        make = registry.counter if registry is not None else Counter
        self._hits = make("plan_cache_hits_total")
        self._misses = make("plan_cache_misses_total")
        self._rejects = make("plan_cache_rejects_total")
        self._evictions = make("plan_cache_evictions_total")
        self._invalidations = make("plan_cache_invalidations_total")
        if registry is not None:
            registry.gauge("plan_cache_entries", fn=lambda: len(self._entries))

    @property
    def hits(self) -> int:
        """Lookups served from the cache (view over the hits counter)."""
        return int(self._hits.value)

    @property
    def misses(self) -> int:
        """Lookups that found no entry (view over the misses counter)."""
        return int(self._misses.value)

    @property
    def rejects(self) -> int:
        """Entries evicted through :meth:`reject` — stale-validation failures
        plus misprediction demotions."""
        return int(self._rejects.value)

    @property
    def evictions(self) -> int:
        """Entries dropped by LRU capacity pressure."""
        return int(self._evictions.value)

    @property
    def invalidations(self) -> int:
        """Entries dropped by rejection or relation invalidation."""
        return int(self._invalidations.value)

    def stats(self) -> dict[str, float]:
        """Point-in-time statistics: hits, misses, rejects, evictions,
        invalidations, current size, and the derived hit rate (0.0 with no
        lookups).  All figures are non-negative by construction — the
        recount path clamps rather than going negative (see :meth:`reject`).
        """
        hits, misses = self.hits, self.misses
        lookups = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "rejects": self.rejects,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "size": len(self._entries),
            "hit_rate": (hits / lookups) if lookups else 0.0,
        }

    def get(self, signature: Signature) -> CachedPlan | None:
        """Look up a signature, updating LRU order and hit/miss counters."""
        with self._lock:
            entry = self._entries.get(signature)
            if entry is None:
                self._misses.inc()
                return None
            self._entries.move_to_end(signature)
            self._hits.inc()
            entry.hits += 1
            return entry

    def put(self, entry: CachedPlan) -> None:
        """Insert (or refresh) an entry, evicting the least recently used."""
        with self._lock:
            self._entries[entry.signature] = entry
            self._entries.move_to_end(entry.signature)
            while len(self._entries) > self.max_size:
                self._entries.popitem(last=False)
                self._evictions.inc()

    def reject(self, entry: CachedPlan, recount: bool = True) -> bool:
        """Drop a just-fetched entry that failed post-lookup validation.

        The engine validates an entry's dataset-version stamps after
        :meth:`get`; a mismatch means the plan is stale, so the entry is
        evicted and — with ``recount`` (the default) — the preceding lookup
        re-counted as a miss instead of a hit (the caller goes on to
        re-plan).

        ``recount=False`` is the *demotion* flavor used by the engine's
        misprediction check: the entry is evicted because its cost estimate
        proved wrong, not because a lookup failed, so the hit/miss counters
        must stay untouched.  (Recounting here used to drive ``hits``
        negative when a freshly planned — never looked-up — entry was
        demoted on its first execution.)

        Returns whether this call actually evicted the entry — ``False``
        when another caller (e.g. a concurrent batch job observing the same
        mispredicted entry) already did, so demotion counters stay honest.

        Accounting stays non-negative under interleaved invalidation: the
        recount only moves a hit to a miss when there is a hit to move
        (rejecting an entry that was never looked up — or whose hit was
        already recounted by a concurrent rejector — leaves the counters
        alone instead of driving them below zero).
        """
        with self._lock:
            evicted = self._entries.get(entry.signature) is entry
            if evicted:
                del self._entries[entry.signature]
                self._invalidations.inc()
                self._rejects.inc()
            if recount and self._hits.value > 0 and entry.hits > 0:
                self._hits.add(-1)
                entry.hits -= 1
                self._misses.inc()
            return evicted

    def invalidate_relation(self, name: str) -> int:
        """Evict every plan that touches relation ``name``; returns the count."""
        with self._lock:
            doomed = [sig for sig, e in self._entries.items() if name in e.relations]
            for sig in doomed:
                del self._entries[sig]
            self._invalidations.inc(len(doomed))
            return len(doomed)

    def signatures(self) -> list[Signature]:
        """The cached signatures in LRU order (least recent first).

        The durable tier persists this list so a restarted engine can
        re-plan the same query shapes up front (warm restart) — signatures
        are pure nested tuples of strings and ints, so they serialize.
        """
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, signature: Signature) -> bool:
        return signature in self._entries

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PlanCache(entries={len(self._entries)}/{self.max_size}, "
            f"hits={self.hits}, misses={self.misses})"
        )
