"""Command-line entry point: ``python -m repro.bench``.

Examples
--------
Reproduce Figure 26 at the default (scaled-down) size::

    python -m repro.bench --figure 26

Reproduce every figure quickly and write the tables to a file::

    python -m repro.bench --all --scale 0.02 --output results.txt
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench.figures import run_and_format, run_all_figures
from repro.bench.harness import FigureResult
from repro.bench.plotting import format_ascii_chart
from repro.bench.workloads import (
    ALGEBRA_FIGURE,
    ALL_FIGURES,
    COLUMNAR_SPEEDUP_FIGURE,
    ENGINE_THROUGHPUT_FIGURE,
    KERNELS_FANOUT_FIGURE,
    PLANNER_CALIBRATION_FIGURE,
    SHARDED_THROUGHPUT_FIGURE,
    STREAM_THROUGHPUT_FIGURE,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Reproduce the evaluation figures of 'Spatial Queries with Two kNN Predicates'.",
    )
    target = parser.add_mutually_exclusive_group(required=True)
    target.add_argument(
        "--figure",
        type=int,
        choices=ALL_FIGURES
        + (
            ENGINE_THROUGHPUT_FIGURE,
            SHARDED_THROUGHPUT_FIGURE,
            COLUMNAR_SPEEDUP_FIGURE,
            STREAM_THROUGHPUT_FIGURE,
            PLANNER_CALIBRATION_FIGURE,
            KERNELS_FANOUT_FIGURE,
            ALGEBRA_FIGURE,
        ),
        help=(
            f"reproduce a single figure ({ENGINE_THROUGHPUT_FIGURE} = engine "
            f"throughput, {SHARDED_THROUGHPUT_FIGURE} = sharded throughput, "
            f"{COLUMNAR_SPEEDUP_FIGURE} = columnar speedup, "
            f"{STREAM_THROUGHPUT_FIGURE} = stream throughput, "
            f"{PLANNER_CALIBRATION_FIGURE} = planner calibration, "
            f"{KERNELS_FANOUT_FIGURE} = kernel-tier fan-out, "
            f"{ALGEBRA_FIGURE} = algebra pushdown; all beyond the paper)"
        ),
    )
    target.add_argument("--all", action="store_true", help="reproduce every figure")
    parser.add_argument(
        "--scale",
        type=float,
        default=0.05,
        help="dataset-size scale factor relative to the paper (default: 0.05)",
    )
    parser.add_argument(
        "--repeats", type=int, default=1, help="repetitions per measurement (default: 1)"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-measurement progress lines"
    )
    parser.add_argument(
        "--output", type=str, default=None, help="also write the tables to this file"
    )
    parser.add_argument(
        "--json",
        type=str,
        default=None,
        dest="json_path",
        help="write the raw measurements (and median speedups) to this JSON file",
    )
    parser.add_argument(
        "--chart", action="store_true", help="append an ASCII chart below each table"
    )
    return parser


def _result_record(result: FigureResult) -> dict:
    """JSON-serializable record of one figure's measurements."""
    workload = result.workload
    record: dict = {
        "figure": workload.figure,
        "title": workload.title,
        "sweep_name": workload.sweep_name,
        "series": list(workload.series),
        "measurements": [
            {
                "sweep_value": p.sweep_value,
                "series": p.series,
                "seconds": p.seconds,
                "result_size": p.result_size,
            }
            for p in result.points
        ],
    }
    measured = {p.sweep_value for p in result.points}
    if len(workload.series) == 2 and measured == set(workload.sweep_values):
        baseline, optimized = workload.series
        record["baseline"] = baseline
        record["optimized"] = optimized
        record["speedups"] = result.speedups(baseline, optimized)
        record["median_speedup"] = result.median_speedup(baseline, optimized)
    return record


def main(argv: list[str] | None = None) -> int:
    """Run the requested figure(s); returns a process exit code."""
    args = _build_parser().parse_args(argv)
    progress = None if args.quiet else (lambda line: print(line, file=sys.stderr))

    tables: list[str] = []
    records: list[dict] = []
    if args.all:
        for figure, (result, table) in run_all_figures(
            scale=args.scale, repeats=args.repeats, progress=progress
        ).items():
            if args.chart:
                table = table + "\n\n" + format_ascii_chart(result)
            tables.append(table)
            records.append(_result_record(result))
    else:
        result, table = run_and_format(
            args.figure, scale=args.scale, repeats=args.repeats, progress=progress
        )
        if args.chart:
            table = table + "\n\n" + format_ascii_chart(result)
        tables.append(table)
        records.append(_result_record(result))

    output = "\n\n".join(tables)
    print(output)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(output + "\n")
    if args.json_path:
        payload = {"scale": args.scale, "repeats": args.repeats, "figures": records}
        with open(args.json_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
