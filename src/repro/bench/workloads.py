"""Per-figure workload definitions.

Each of Figures 19–26 becomes a :class:`FigureWorkload`: the swept parameter,
its values, the data series (algorithms) being compared, and a builder that —
given one sweep value — prepares the datasets/indexes and returns one zero-
argument callable per series.  The harness times only those callables, so data
generation and index construction are excluded from the measurements, exactly
as the paper measures query execution time.

The ``scale`` argument shrinks the paper's dataset sizes (32k–2.56M points)
to something a pure-Python implementation can sweep in minutes; the *relative*
behaviour of the algorithms is preserved.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.core.select_join.baseline import select_join_baseline
from repro.core.select_join.block_marking import select_join_block_marking
from repro.core.select_join.counting import select_join_counting
from repro.core.two_joins.chained import chained_joins_nested, chained_joins_qep2
from repro.core.two_joins.unchained import (
    unchained_joins_baseline,
    unchained_joins_block_marking,
)
from repro.core.two_selects.baseline import two_knn_selects_baseline
from repro.core.two_selects.optimized import two_knn_selects_optimized
from repro.datagen.berlinmod import berlinmod_snapshot
from repro.datagen.clustered import clustered_points
from repro.datagen.uniform import uniform_points
from repro.exceptions import InvalidParameterError
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.index.grid import GridIndex

__all__ = [
    "FigureWorkload",
    "figure_workload",
    "ALL_FIGURES",
    "ENGINE_THROUGHPUT_FIGURE",
    "SHARDED_THROUGHPUT_FIGURE",
    "COLUMNAR_SPEEDUP_FIGURE",
    "STREAM_THROUGHPUT_FIGURE",
    "PLANNER_CALIBRATION_FIGURE",
    "KERNELS_FANOUT_FIGURE",
    "ALGEBRA_FIGURE",
]

#: The figures reproduced by the harness.
ALL_FIGURES: tuple[int, ...] = (19, 20, 21, 22, 23, 24, 25, 26)

#: Extra (non-paper) workload: engine-cached vs cold repeated queries.
ENGINE_THROUGHPUT_FIGURE = 27

#: Extra (non-paper) workload: sharded fan-out vs the single-partition engine.
SHARDED_THROUGHPUT_FIGURE = 28

#: Extra (non-paper) workload: columnar PointStore kNN vs the seed's
#: object-path representation.
COLUMNAR_SPEEDUP_FIGURE = 29

#: Extra (non-paper) workload: continuous-query maintenance vs per-tick
#: re-execution over a streaming BerlinMOD update workload.
STREAM_THROUGHPUT_FIGURE = 30

#: Extra (non-paper) workload: calibration-warmed planner vs the static cost
#: model on a workload the static constants mispredict.
PLANNER_CALIBRATION_FIGURE = 31

#: Extra (non-paper) workload: the zero-copy segment / batched-kernel shard
#: fan-out vs the PR 7 respawn-per-mutation, per-point protocol.
KERNELS_FANOUT_FIGURE = 32

#: Extra (non-paper) workload: composable-algebra pushdown + aggregation vs
#: naive re-execution of the same trees over materialized point lists.
ALGEBRA_FIGURE = 33

#: Spatial extent shared by every benchmark dataset (same as the generators').
EXTENT = Rect(0.0, 0.0, 40_000.0, 40_000.0)

#: Grid resolution used for benchmark indexes.
CELLS_PER_SIDE = 24

#: Focal point used by selection predicates (the "shopping center").
FOCAL = Point(20_000.0, 20_000.0)

SeriesBuilders = Mapping[str, Callable[[], object]]


@dataclass(frozen=True)
class FigureWorkload:
    """A declarative description of one figure's experiment."""

    figure: int
    title: str
    sweep_name: str
    sweep_values: tuple
    series: tuple[str, ...]
    builder: Callable[[object], SeriesBuilders] = field(repr=False)

    def build(self, sweep_value: object) -> SeriesBuilders:
        """Prepare data for ``sweep_value`` and return one callable per series."""
        runners = self.builder(sweep_value)
        missing = set(self.series) - set(runners)
        if missing:
            raise InvalidParameterError(f"builder did not produce series: {missing}")
        return runners


def _scaled(base: int, scale: float, minimum: int = 200) -> int:
    """Scale a paper-sized dataset cardinality down to benchmark size."""
    return max(minimum, int(base * scale))


def _grid(points, cells: int = CELLS_PER_SIDE) -> GridIndex:
    return GridIndex(points, cells_per_side=cells, bounds=EXTENT)


# ----------------------------------------------------------------------
# Figures 19-21: kNN-select on the inner relation of a kNN-join
# ----------------------------------------------------------------------
def _fig19(scale: float) -> FigureWorkload:
    """Block-Marking vs the conceptually correct QEP, growing outer relation."""
    inner_size = _scaled(64_000, scale)
    sweep = tuple(_scaled(n, scale) for n in (32_000, 64_000, 128_000, 256_000))
    k_join, k_select = 5, 10

    def build(outer_size: int) -> SeriesBuilders:
        outer = berlinmod_snapshot(n=outer_size, seed=1900)
        inner = berlinmod_snapshot(n=inner_size, seed=1901, start_pid=10_000_000)
        outer_index = _grid(outer)
        inner_index = _grid(inner)
        return {
            "conceptual-qep": lambda: select_join_baseline(
                outer, inner_index, FOCAL, k_join, k_select
            ),
            "block-marking": lambda: select_join_block_marking(
                outer_index, inner_index, FOCAL, k_join, k_select
            ),
        }

    return FigureWorkload(
        figure=19,
        title="kNN-select on inner of kNN-join: Block-Marking vs conceptual QEP",
        sweep_name="outer relation size",
        sweep_values=sweep,
        series=("conceptual-qep", "block-marking"),
        builder=build,
    )


def _fig20(scale: float) -> FigureWorkload:
    """Counting vs Block-Marking when the outer relation is sparse."""
    outer_size = _scaled(2_000, scale, minimum=60)
    sweep = tuple(_scaled(n, scale) for n in (32_000, 64_000, 128_000, 256_000))
    k_join, k_select = 5, 10

    def build(inner_size: int) -> SeriesBuilders:
        outer = berlinmod_snapshot(n=outer_size, seed=2000)
        inner = berlinmod_snapshot(n=inner_size, seed=2001, start_pid=10_000_000)
        outer_index = _grid(outer)
        inner_index = _grid(inner)
        return {
            "counting": lambda: select_join_counting(
                outer, inner_index, FOCAL, k_join, k_select
            ),
            "block-marking": lambda: select_join_block_marking(
                outer_index, inner_index, FOCAL, k_join, k_select
            ),
        }

    return FigureWorkload(
        figure=20,
        title="Counting vs Block-Marking, sparse outer relation",
        sweep_name="inner relation size",
        sweep_values=sweep,
        series=("counting", "block-marking"),
        builder=build,
    )


def _fig21(scale: float) -> FigureWorkload:
    """Counting vs Block-Marking when the outer relation is dense."""
    outer_size = _scaled(256_000, scale)
    sweep = tuple(_scaled(n, scale) for n in (32_000, 64_000, 128_000, 256_000))
    k_join, k_select = 5, 10

    def build(inner_size: int) -> SeriesBuilders:
        outer = berlinmod_snapshot(n=outer_size, seed=2100)
        inner = berlinmod_snapshot(n=inner_size, seed=2101, start_pid=10_000_000)
        outer_index = _grid(outer)
        inner_index = _grid(inner)
        return {
            "counting": lambda: select_join_counting(
                outer, inner_index, FOCAL, k_join, k_select
            ),
            "block-marking": lambda: select_join_block_marking(
                outer_index, inner_index, FOCAL, k_join, k_select
            ),
        }

    return FigureWorkload(
        figure=21,
        title="Counting vs Block-Marking, dense outer relation",
        sweep_name="inner relation size",
        sweep_values=sweep,
        series=("counting", "block-marking"),
        builder=build,
    )


# ----------------------------------------------------------------------
# Figures 22-23: unchained kNN-joins
# ----------------------------------------------------------------------
def _fig22(scale: float) -> FigureWorkload:
    """Procedure 4 vs the conceptually correct ∩B plan; A clustered, vary |C|."""
    a_size = _scaled(16_000, scale)
    b_size = _scaled(64_000, scale)
    sweep = tuple(_scaled(n, scale) for n in (32_000, 64_000, 128_000, 256_000))
    k_ab = k_cb = 3

    def build(c_size: int) -> SeriesBuilders:
        a = clustered_points(
            2, a_size // 2, EXTENT, cluster_radius=1_500.0, seed=2200, start_pid=0
        )
        b = berlinmod_snapshot(n=b_size, seed=2201, start_pid=10_000_000)
        c = berlinmod_snapshot(n=c_size, seed=2202, start_pid=20_000_000)
        ib = _grid(b)
        ic = _grid(c)
        return {
            "conceptual-qep": lambda: unchained_joins_baseline(a, c, ib, k_ab, k_cb),
            "block-marking": lambda: unchained_joins_block_marking(a, ic, ib, k_ab, k_cb),
        }

    return FigureWorkload(
        figure=22,
        title="Unchained joins: Block-Marking vs conceptual QEP (A clustered)",
        sweep_name="size of C",
        sweep_values=sweep,
        series=("conceptual-qep", "block-marking"),
        builder=build,
    )


def _fig23(scale: float) -> FigureWorkload:
    """Join-order effect: A and C clustered, vary the cluster-count difference."""
    points_per_cluster = _scaled(4_000, scale, minimum=100)
    b_size = _scaled(64_000, scale)
    base_clusters_c = 2
    sweep = tuple(range(1, 11))
    k_ab = k_cb = 3

    def build(cluster_difference: int) -> SeriesBuilders:
        clusters_c = base_clusters_c
        clusters_a = base_clusters_c + cluster_difference
        a = clustered_points(
            clusters_a, points_per_cluster, EXTENT, cluster_radius=1_200.0, seed=2300
        )
        c = clustered_points(
            clusters_c,
            points_per_cluster,
            EXTENT,
            cluster_radius=1_200.0,
            seed=2301,
            start_pid=20_000_000,
        )
        b = berlinmod_snapshot(n=b_size, seed=2302, start_pid=10_000_000)
        ia = _grid(a)
        ib = _grid(b)
        ic = _grid(c)
        return {
            # Start with the join whose outer relation is A (more clusters).
            "start-with-A-join": lambda: unchained_joins_block_marking(
                a, ic, ib, k_ab, k_cb
            ),
            # Start with the join whose outer relation is C (fewer clusters).
            "start-with-C-join": lambda: unchained_joins_block_marking(
                c, ia, ib, k_cb, k_ab
            ),
        }

    return FigureWorkload(
        figure=23,
        title="Unchained joins: effect of join order (A and C clustered)",
        sweep_name="clusters(A) - clusters(C)",
        sweep_values=sweep,
        series=("start-with-A-join", "start-with-C-join"),
        builder=build,
    )


# ----------------------------------------------------------------------
# Figures 24-25: chained kNN-joins
# ----------------------------------------------------------------------
def _fig24(scale: float) -> FigureWorkload:
    """Nested Join with vs without the B→C neighborhood cache."""
    sweep = tuple(_scaled(n, scale) for n in (32_000, 64_000, 128_000, 256_000))
    k_ab = k_bc = 3

    def build(size: int) -> SeriesBuilders:
        a = berlinmod_snapshot(n=max(200, size // 4), seed=2400)
        b = berlinmod_snapshot(n=size, seed=2401, start_pid=10_000_000)
        c = berlinmod_snapshot(n=size, seed=2402, start_pid=20_000_000)
        ib = _grid(b)
        ic = _grid(c)
        return {
            "nested-join-no-cache": lambda: chained_joins_nested(
                a, ib, ic, k_ab, k_bc, cache=False
            ),
            "nested-join-cached": lambda: chained_joins_nested(
                a, ib, ic, k_ab, k_bc, cache=True
            ),
        }

    return FigureWorkload(
        figure=24,
        title="Chained joins: Nested Join with and without neighborhood caching",
        sweep_name="dataset size (|B| = |C|)",
        sweep_values=sweep,
        series=("nested-join-no-cache", "nested-join-cached"),
        builder=build,
    )


def _fig25(scale: float) -> FigureWorkload:
    """Nested Join (cached) vs Join Intersection, varying the clusters in B."""
    a_size = _scaled(8_000, scale)
    b_size = _scaled(64_000, scale)
    c_size = _scaled(64_000, scale)
    sweep = (2, 4, 6, 8, 10, 12, 14, 16)
    k_ab = k_bc = 3

    def build(num_clusters_b: int) -> SeriesBuilders:
        a = berlinmod_snapshot(n=a_size, seed=2500)
        b = clustered_points(
            num_clusters_b,
            max(50, b_size // num_clusters_b),
            EXTENT,
            cluster_radius=1_200.0,
            seed=2501,
            start_pid=10_000_000,
        )
        c = berlinmod_snapshot(n=c_size, seed=2502, start_pid=20_000_000)
        ib = _grid(b)
        ic = _grid(c)
        return {
            "join-intersection": lambda: chained_joins_qep2(a, b, ib, ic, k_ab, k_bc),
            "nested-join-cached": lambda: chained_joins_nested(
                a, ib, ic, k_ab, k_bc, cache=True
            ),
        }

    return FigureWorkload(
        figure=25,
        title="Chained joins: Nested Join (cached) vs Join Intersection (clustered B)",
        sweep_name="number of clusters in B",
        sweep_values=sweep,
        series=("join-intersection", "nested-join-cached"),
        builder=build,
    )


# ----------------------------------------------------------------------
# Figure 26: two kNN-selects
# ----------------------------------------------------------------------
def _fig26(scale: float) -> FigureWorkload:
    """2-kNN-select vs the conceptually correct plan; k1 = 10, k2 grows."""
    size = _scaled(256_000, scale)
    k1 = 10
    sweep = tuple(range(0, 9))  # log2(k2/k1)
    f1 = Point(19_000.0, 21_000.0)
    f2 = Point(21_000.0, 19_000.0)

    def build(log_ratio: int) -> SeriesBuilders:
        k2 = k1 * (2**log_ratio)
        points = berlinmod_snapshot(n=size, seed=2600)
        index = _grid(points)
        return {
            "conceptual-qep": lambda: two_knn_selects_baseline(index, f1, k1, f2, k2),
            "2-knn-select": lambda: two_knn_selects_optimized(index, f1, k1, f2, k2),
        }

    return FigureWorkload(
        figure=26,
        title="Two kNN-selects: 2-kNN-select vs conceptual QEP (k1 = 10)",
        sweep_name="log2(k2 / k1)",
        sweep_values=sweep,
        series=("conceptual-qep", "2-knn-select"),
        builder=build,
    )


# ----------------------------------------------------------------------
# Figure 27 (beyond the paper): engine throughput
# ----------------------------------------------------------------------
def _fig27(scale: float) -> FigureWorkload:
    """Repeated chained-join queries: cold ``Query.run`` vs the cached engine.

    The serving pattern: the same chained query (``A→B→C``, e.g. a dashboard
    refresh) executes over and over against registered relations.  The cold
    series pays planning plus *every* neighborhood computation on each call;
    the engine reuses the cached plan and shares the B→C neighborhood cache
    across calls (the paper's Figure 24 cache, amortized over the whole
    workload instead of a single query), so after the first call only the
    A→B neighborhoods remain.
    """
    from repro.engine import SpatialEngine
    from repro.query.dataset import Dataset
    from repro.query.predicates import KnnJoin
    from repro.query.query import Query

    a_size = _scaled(16_000, scale, minimum=100)
    b_size = _scaled(64_000, scale)
    c_size = _scaled(64_000, scale)
    sweep = (2, 4, 8, 16)
    k_ab = k_bc = 3

    def build(num_queries: int) -> SeriesBuilders:
        a = Dataset(
            "a",
            berlinmod_snapshot(n=a_size, seed=2700),
            bounds=EXTENT,
            cells_per_side=CELLS_PER_SIDE,
        )
        b = Dataset(
            "b",
            berlinmod_snapshot(n=b_size, seed=2701, start_pid=10_000_000),
            bounds=EXTENT,
            cells_per_side=CELLS_PER_SIDE,
        )
        c = Dataset(
            "c",
            berlinmod_snapshot(n=c_size, seed=2702, start_pid=20_000_000),
            bounds=EXTENT,
            cells_per_side=CELLS_PER_SIDE,
        )
        datasets = {"a": a, "b": b, "c": c}
        a.index, b.index, c.index  # build outside the timed region

        def queries() -> list[Query]:
            return [
                Query(KnnJoin(outer="a", inner="b", k=k_ab), KnnJoin(outer="b", inner="c", k=k_bc))
                for _ in range(num_queries)
            ]

        engine = SpatialEngine()
        for dataset in datasets.values():
            engine.register(dataset)

        def run_cold() -> list:
            return [q.run(datasets) for q in queries()]

        def run_engine() -> list:
            return [engine.run(q) for q in queries()]

        return {"cold-query-run": run_cold, "engine-cached": run_engine}

    return FigureWorkload(
        figure=ENGINE_THROUGHPUT_FIGURE,
        title="Engine throughput: plan/statistics caching vs cold Query.run",
        sweep_name="queries per batch",
        sweep_values=sweep,
        series=("cold-query-run", "engine-cached"),
        builder=build,
    )


# ----------------------------------------------------------------------
# Figure 28 (beyond the paper): sharded throughput
# ----------------------------------------------------------------------
def _fig28(scale: float) -> FigureWorkload:
    """Sharded fan-out vs the PR 1 single-partition engine, clustered data.

    The serving pattern: a heavy kNN-join over a clustered outer relation
    (``A join_kNN B``) executes against a long-lived engine.  The unsharded
    engine answers with one sequential pass over A against one monolithic
    B index; the sharded engine splits both relations into ``num_shards``
    sample-balanced shards, fans the outer shards out on its worker pool
    (processes where ``fork`` is available, serial on one CPU) and merges.
    Two effects stack: per-shard indexes are smaller (cheaper localities,
    border expansion prunes most shards per point), and on a multi-core
    host the shard tasks run in parallel — on a 4+-core machine the sweep
    shows the ≥2x region from 4 shards up.
    """
    from repro.engine import SpatialEngine
    from repro.query.predicates import KnnJoin
    from repro.query.query import Query
    from repro.shard.engine import ShardedEngine

    a_size = _scaled(128_000, scale)
    b_size = _scaled(256_000, scale)
    sweep = (1, 2, 4, 8)
    k = 3

    def build(num_shards: int) -> SeriesBuilders:
        a = clustered_points(
            6, max(60, a_size // 6), EXTENT, cluster_radius=1_500.0, seed=2800
        )
        b = berlinmod_snapshot(n=b_size, seed=2801, start_pid=10_000_000)
        query = Query(KnnJoin(outer="a", inner="b", k=k))

        plain = SpatialEngine()
        plain.register(name="a", points=a, bounds=EXTENT, cells_per_side=CELLS_PER_SIDE)
        plain.register(name="b", points=b, bounds=EXTENT, cells_per_side=CELLS_PER_SIDE)
        plain.run(query)  # warm the plan cache outside the timed region

        sharded = ShardedEngine(num_shards=num_shards, backend="auto")
        sharded.register(name="a", points=a, bounds=EXTENT)
        sharded.register(name="b", points=b, bounds=EXTENT)
        sharded.run(query)  # warm plan cache + worker pool

        return {
            "engine-unsharded": lambda: plain.run(query),
            "sharded-engine": lambda: sharded.run(query),
        }

    return FigureWorkload(
        figure=SHARDED_THROUGHPUT_FIGURE,
        title="Sharded throughput: shard fan-out vs single-partition engine",
        sweep_name="number of shards",
        sweep_values=sweep,
        series=("engine-unsharded", "sharded-engine"),
        builder=build,
    )


# ----------------------------------------------------------------------
# Figure 29 (beyond the paper): columnar speedup
# ----------------------------------------------------------------------
def _fig29(scale: float) -> FigureWorkload:
    """Columnar PointStore kNN vs the seed's object-path representation.

    A kNN-heavy serving workload: a batch of kNN-selects whose focal points
    are sampled from the relation itself (every query has a dense, populated
    locality).  The ``object-path`` series is the seed representation —
    per-query locality, then the object ranking over ``Point`` tuples
    (:func:`neighborhood_from_blocks_object`, the pre-columnar code kept as
    the parity oracle).  The ``columnar`` series answers the same queries
    through :func:`get_knn_batch`: the block phase is batched over the whole
    query set and ranking runs on gathered store columns.  Both series
    return identical ``(distance, pid)``-ordered neighborhoods; at the
    paper-scale sizes (n ≥ 100k) the columnar path sustains ≥ 3x the
    throughput.
    """
    import numpy as np

    from repro.locality.batch import get_knn_batch
    from repro.locality.knn import build_locality, neighborhood_from_blocks_object

    sweep = tuple(_scaled(n, scale) for n in (64_000, 128_000, 256_000))
    k = 10
    num_queries = 400

    def build(size: int) -> SeriesBuilders:
        points = berlinmod_snapshot(n=size, seed=2900)
        index = _grid(points)
        rng = np.random.default_rng(2901)
        queries = [points[i] for i in rng.choice(len(points), size=min(num_queries, len(points)), replace=False)]

        def run_object() -> list:
            return [
                neighborhood_from_blocks_object(q, k, build_locality(index, q, k).blocks)
                for q in queries
            ]

        def run_columnar() -> list:
            return get_knn_batch(index, queries, k)

        # Warm both paths outside the timed region (the object path's block
        # point/coord caches mirror the seed's steady state).
        run_object()
        run_columnar()
        return {"object-path": run_object, "columnar": run_columnar}

    return FigureWorkload(
        figure=COLUMNAR_SPEEDUP_FIGURE,
        title="Columnar speedup: PointStore kNN vs object-path representation",
        sweep_name="dataset size",
        sweep_values=sweep,
        series=("object-path", "columnar"),
        builder=build,
    )


# ----------------------------------------------------------------------
# Figure 30 (beyond the paper): continuous-query (stream) throughput
# ----------------------------------------------------------------------
def _fig30(scale: float) -> FigureWorkload:
    """Standing-query maintenance vs naive per-tick re-execution.

    The continuous serving pattern: a fleet of standing queries — kNN-selects
    at focal points sampled from the data, range-alert windows, and one
    standing kNN-join pairing a small "ambulances" relation with its nearest
    vehicles — watches a BerlinMOD relation whose points keep moving: every
    tick relocates 1% of the population (the :class:`BerlinModTickStream`
    adapter).  The ``naive-reexecution`` series applies each tick to a plain
    engine and re-runs every standing query from scratch; the
    ``incremental-maintenance`` series pushes the identical tick through the
    stream engine, whose guard regions skip unaffected subscriptions and
    repair the affected ones locally.  Both engines consume byte-identical
    update sequences (same tick-stream seed).  The acceptance bar — ≥ 5x
    median throughput at paper-scale data (n ≥ 100k, 1% batches) — is
    measured by the full sweep (``python -m repro.bench --figure 30 --scale
    1.0``) and recorded in ``BENCH_stream.json``.
    """
    from repro.datagen.berlinmod import BerlinModTickStream
    from repro.engine import SpatialEngine
    from repro.query.predicates import KnnJoin, KnnSelect, RangeSelect
    from repro.query.query import Query
    from repro.stream import StreamEngine

    import numpy as np

    sweep = tuple(_scaled(n, scale) for n in (32_000, 64_000, 128_000))
    k = 10
    num_knn_subs = 48
    num_range_subs = 12
    num_ambulances = 240
    k_join = 5
    ticks_per_call = 4
    move_fraction = 0.01

    def build(size: int) -> SeriesBuilders:
        points = berlinmod_snapshot(n=size, seed=3000)
        ambulances = berlinmod_snapshot(
            n=num_ambulances, seed=3003, start_pid=50_000_000
        )
        rng = np.random.default_rng(3001)
        focal_rows = rng.choice(len(points), size=num_knn_subs, replace=False)
        window_rows = rng.choice(len(points), size=num_range_subs, replace=False)
        half = 1_500.0
        queries = [
            Query(KnnSelect(relation="vehicles", focal=Point(points[i].x, points[i].y), k=k))
            for i in focal_rows
        ] + [
            Query(
                RangeSelect(
                    relation="vehicles",
                    window=Rect(
                        points[i].x - half, points[i].y - half,
                        points[i].x + half, points[i].y + half,
                    ),
                )
            )
            for i in window_rows
        ] + [
            Query(KnnJoin(outer="ambulances", inner="vehicles", k=k_join))
        ]

        stream = StreamEngine()
        stream.register(
            name="vehicles", points=points, bounds=EXTENT, cells_per_side=CELLS_PER_SIDE
        )
        stream.register(
            name="ambulances",
            points=ambulances,
            bounds=EXTENT,
            cells_per_side=CELLS_PER_SIDE,
        )
        for query in queries:
            stream.subscribe(query)
        incremental_ticks = BerlinModTickStream(
            points, bounds=EXTENT, move_fraction=move_fraction, seed=3002
        )

        naive = SpatialEngine()
        naive.register(
            name="vehicles", points=points, bounds=EXTENT, cells_per_side=CELLS_PER_SIDE
        )
        naive.register(
            name="ambulances",
            points=ambulances,
            bounds=EXTENT,
            cells_per_side=CELLS_PER_SIDE,
        )
        naive_ticks = BerlinModTickStream(
            points, bounds=EXTENT, move_fraction=move_fraction, seed=3002
        )

        def run_incremental() -> list:
            return [
                stream.push("vehicles", incremental_ticks.tick())
                for _ in range(ticks_per_call)
            ]

        def run_naive() -> list:
            out = []
            for _ in range(ticks_per_call):
                naive.apply_update("vehicles", naive_ticks.tick())
                out.append([naive.run(query) for query in queries])
            return out

        # Warm both paths outside the timed region (plan caches, first
        # maintenance pass) with one tick each — same seed keeps the two
        # tick streams aligned.
        run_naive()
        run_incremental()
        return {"naive-reexecution": run_naive, "incremental-maintenance": run_incremental}

    return FigureWorkload(
        figure=STREAM_THROUGHPUT_FIGURE,
        title="Stream throughput: incremental maintenance vs per-tick re-execution",
        sweep_name="dataset size",
        sweep_values=sweep,
        series=("naive-reexecution", "incremental-maintenance"),
        builder=build,
    )


# ----------------------------------------------------------------------
# Figure 31 (beyond the paper): planner calibration
# ----------------------------------------------------------------------
def _fig31(scale: float) -> FigureWorkload:
    """Calibration-warmed planner vs the static cost model, mispredicting data.

    The serving pattern the ISSUE's acceptance bar describes: a repeated
    select-inner-of-join query over *clustered* data with a small kσ, shaped
    so the static model's choice is maximally wrong.  The outer relation is
    one dense cluster around the selection's focal point (dense blocks →
    the static heuristic picks Block-Marking); the inner relation is a
    cluster *tighter than a block diagonal*, which makes the
    Non-Contributing bound ``r + d + f_farthest < f_center`` unsatisfiable —
    Block-Marking examines **every** block of a fine grid, paying one serial
    block-center neighborhood each, and prunes nothing (every outer
    neighborhood overlaps the selection).

    The ``static-planner`` series is an engine with demotion disabled
    (``demotion_factor=inf``): it re-executes that mispredicted plan
    forever.  The ``calibrated-planner`` series is a default engine warmed
    outside the timed region: its misprediction check demoted the static
    choice, planning re-ranked with observed costs, and the timed runs
    execute the converged strategy (the batched baseline — with selectivity
    ≈ 1, any pruning overhead is pure waste).  Both series answer
    identically; the speedup is pure planner feedback.
    """
    import numpy as np

    from repro.engine import SpatialEngine
    from repro.query.predicates import KnnJoin, KnnSelect
    from repro.query.query import Query

    inner_size = _scaled(8_000, scale, minimum=400)
    sweep = (
        _scaled(4_000, scale, minimum=100),
        _scaled(8_000, scale, minimum=200),
        _scaled(16_000, scale, minimum=400),
    )
    k_join, k_select = 3, 8
    cells = 64  # fine grid: many blocks for Block-Marking to examine
    inner_radius = 400.0  # < block diagonal (~884) → no block is ever NC
    reps = 2  # engine runs per timed call

    def disk(n: int, radius: float, seed: int, start_pid: int) -> list[Point]:
        rng = np.random.default_rng(seed)
        radii = radius * np.sqrt(rng.uniform(0, 1, size=n))
        angles = rng.uniform(0, 2 * math.pi, size=n)
        return [
            Point(
                float(FOCAL.x + r * math.cos(a)),
                float(FOCAL.y + r * math.sin(a)),
                start_pid + i,
            )
            for i, (r, a) in enumerate(zip(radii, angles))
        ]

    def build(outer_size: int) -> SeriesBuilders:
        # Outer cluster radius scales with sqrt(n): constant density keeps
        # the static heuristic's Block-Marking choice at every sweep point.
        outer_radius = 2_500.0 * math.sqrt(outer_size / 16_000.0)
        outer = disk(outer_size, outer_radius, seed=3100, start_pid=0)
        inner = disk(inner_size, inner_radius, seed=3101, start_pid=10_000_000)
        query = Query(
            KnnJoin(outer="outer", inner="inner", k=k_join),
            KnnSelect(relation="inner", focal=FOCAL, k=k_select),
        )

        def make_engine(**kwargs: object) -> SpatialEngine:
            engine = SpatialEngine(**kwargs)  # type: ignore[arg-type]
            engine.register(
                name="outer", points=outer, bounds=EXTENT, cells_per_side=cells
            )
            engine.register(
                name="inner", points=inner, bounds=EXTENT, cells_per_side=cells
            )
            return engine

        static = make_engine(demotion_factor=float("inf"))
        calibrated = make_engine()
        # Warm both outside the timed region: the static engine caches its
        # (mispredicted) plan, the calibrated engine runs until the feedback
        # loop converges (three strategies → at most a few demotions).
        static.run(query)
        for _ in range(5):
            calibrated.run(query)

        return {
            "static-planner": lambda: [static.run(query) for _ in range(reps)],
            "calibrated-planner": lambda: [calibrated.run(query) for _ in range(reps)],
        }

    return FigureWorkload(
        figure=PLANNER_CALIBRATION_FIGURE,
        title="Planner calibration: feedback-corrected vs static cost model",
        sweep_name="outer relation size",
        sweep_values=sweep,
        series=("static-planner", "calibrated-planner"),
        builder=build,
    )


# ----------------------------------------------------------------------
# Figure 32 (beyond the paper): zero-copy shard fan-out + kernel tier
# ----------------------------------------------------------------------
def _fig32(scale: float) -> FigureWorkload:
    """Segment-generation pool reuse + batched fan-out vs the PR 7 protocol.

    The mutation-interleaved serving pattern the kernel tier targets: a
    long-lived sharded engine answers a kNN-join (``a join_kNN b``) while
    the driving relation keeps moving — every serving cycle applies one
    BerlinMOD-style tick to ``a`` and re-runs the join.  Three protocol
    levels answer identical cycles on the process backend:

    * ``pr7-respawn`` — segments off, per-point worker fan-out: every
      mutation discards the pool, the next query pays a full re-fork, and
      each worker loops scalar :func:`~repro.shard.knn.sharded_knn` calls
      over its shard (the PR 7 protocol).
    * ``segment-reuse`` — mutations publish a new shared-memory generation
      (:mod:`repro.shard.shm`) that the *surviving* workers attach
      zero-copy; fan-out still per-point.
    * ``kernel-tier`` — segments plus the batched two-round cross-shard
      kNN (:func:`~repro.shard.batch.sharded_knn_batch`) running on the
      active :mod:`repro.kernels` backend.

    All three return identical rows; the recorded speedup
    (``pr7-respawn`` / ``kernel-tier``) is the PR's acceptance metric.
    Worker width is pinned to 2 so the protocol comparison — fork cost vs
    segment publish, scalar loop vs batched kernels — is measured, not the
    host's core count.
    """
    import multiprocessing

    from repro.datagen.berlinmod import BerlinModTickStream
    from repro.query.predicates import KnnJoin
    from repro.query.query import Query
    from repro.shard.engine import ShardedEngine
    from repro.shard.executor import set_batched_fanout

    b_size = _scaled(128_000, scale)
    sweep = tuple(_scaled(n, scale) for n in (32_000, 64_000, 128_000))
    k = 3
    num_shards = 4
    cycles_per_call = 2
    move_fraction = 0.02
    backend = (
        "process"
        if "fork" in multiprocessing.get_all_start_methods()
        else "serial"
    )

    def build(outer_size: int) -> SeriesBuilders:
        a = clustered_points(
            6, max(60, outer_size // 6), EXTENT, cluster_radius=1_500.0, seed=3200
        )
        b = berlinmod_snapshot(n=b_size, seed=3201, start_pid=10_000_000)
        query = Query(KnnJoin(outer="a", inner="b", k=k))

        def make_engine(segment_mode: str, batched: bool) -> tuple:
            prev = set_batched_fanout(batched)
            try:
                engine = ShardedEngine(
                    num_shards=num_shards,
                    backend=backend,
                    max_workers=2,
                    segment_mode=segment_mode,
                )
                engine.register(name="a", points=a, bounds=EXTENT)
                engine.register(name="b", points=b, bounds=EXTENT)
                # Warm the plan cache and fork the pool while the fan-out
                # flag is set: process workers inherit it at fork time.
                engine.run(query)
            finally:
                set_batched_fanout(prev)
            ticks = BerlinModTickStream(
                a, bounds=EXTENT, move_fraction=move_fraction, seed=3202
            )
            return engine, ticks

        def serve(engine: ShardedEngine, ticks, batched: bool) -> Callable[[], list]:
            def run() -> list:
                # The flag matters at execution time for inline/serial
                # execution; forked process workers keep their inherited
                # value, which make_engine pinned to the same setting.
                prev = set_batched_fanout(batched)
                try:
                    out = []
                    for _ in range(cycles_per_call):
                        engine.apply_update("a", ticks.tick())
                        out.append(engine.run(query))
                    return out
                finally:
                    set_batched_fanout(prev)

            return run

        legacy, legacy_ticks = make_engine("off", batched=False)
        reuse, reuse_ticks = make_engine("auto", batched=False)
        kernel, kernel_ticks = make_engine("auto", batched=True)
        return {
            "pr7-respawn": serve(legacy, legacy_ticks, batched=False),
            "segment-reuse": serve(reuse, reuse_ticks, batched=False),
            "kernel-tier": serve(kernel, kernel_ticks, batched=True),
        }

    return FigureWorkload(
        figure=KERNELS_FANOUT_FIGURE,
        title="Kernel tier: zero-copy segment fan-out vs respawn-per-mutation",
        sweep_name="outer relation size",
        sweep_values=sweep,
        series=("pr7-respawn", "segment-reuse", "kernel-tier"),
        builder=build,
    )


# ----------------------------------------------------------------------
# Figure 33 (beyond the paper): algebra pushdown vs naive re-execution
# ----------------------------------------------------------------------
def _fig33(scale: float) -> FigureWorkload:
    """Composable-algebra dashboard: pushdown + aggregation vs naive loops.

    A geofence-analytics "dashboard" evaluates four composed trees over a
    moving relation ``a`` and a depot relation ``b`` — a windowed per-cell
    top-k hotspot query (with a *redundant* nested window the rewrite engine
    fuses away), a per-kind density grid, a region-count rollup, and a
    per-cell aggregate over a windowed kNN join (nearest depots of every
    vehicle inside the fence).  Two executions answer the identical
    dashboard:

    * ``naive-reexec`` — :func:`repro.algebra.reference.reference_rows`:
      plain Python loops over the materialized point lists, every filter
      re-scanning the full relation and every join row sorting the whole
      inner relation (the reference evaluator is documented as this
      figure's baseline).
    * ``algebra-pushdown`` — ``engine.run(Query.from_tree(tree))`` on a
      plan-cache-warmed :class:`~repro.engine.session.SpatialEngine`: the
      rewrite engine fuses the nested windows and annotates the aggregate
      prune window, the fused chains evaluate through the grid index
      (touching only cells intersecting the window), and the join runs as
      one batched index kNN over the surviving outer rows.

    Both series return the same canonical row keys per tree, so the
    benchmark gate checks parity and speedup on identical answers.  The
    recorded speedup (``naive-reexec`` / ``algebra-pushdown``) is the PR's
    acceptance metric.
    """
    from repro.algebra import (
        AttrFilter,
        GridAggregate,
        KnnJoinOp,
        RangeFilter,
        RegionAggregate,
        Scan,
        TopK,
    )
    from repro.algebra.reference import reference_rows
    from repro.engine.session import SpatialEngine
    from repro.query.query import Query
    from repro.stream.delta import result_rows

    sweep = tuple(_scaled(n, scale) for n in (32_000, 64_000, 128_000))
    cells = 16
    reps = 1  # dashboard evaluations per timed call (naive join is quadratic)
    # The analytics window covers 1/16 of the extent around the focal point;
    # the hotspot tree nests a redundant wider window for the fuser to fold.
    window = Rect(15_000.0, 15_000.0, 25_000.0, 25_000.0)
    wide = Rect(10_000.0, 10_000.0, 30_000.0, 30_000.0)
    mid_x = (window.xmin + window.xmax) / 2.0
    regions = (
        ("west", Rect(window.xmin, window.ymin, mid_x, window.ymax)),
        ("east", Rect(mid_x, window.ymin, window.xmax, window.ymax)),
    )
    trees = (
        TopK(GridAggregate(RangeFilter(RangeFilter(Scan("a"), wide), window), cells), 10),
        GridAggregate(
            AttrFilter(RangeFilter(Scan("a"), window), "kind", "bus"),
            cells,
            measure="density",
        ),
        RegionAggregate(RangeFilter(Scan("a"), window), regions),
        GridAggregate(KnnJoinOp(RangeFilter(Scan("a"), window), Scan("b"), 2), cells),
    )

    def build(relation_size: int) -> SeriesBuilders:
        base = berlinmod_snapshot(n=relation_size, seed=3300)
        points = [
            Point(p.x, p.y, p.pid, {"kind": "bus" if p.pid % 3 else "taxi"})
            for p in base
        ]
        depots = berlinmod_snapshot(n=relation_size, seed=3301, start_pid=10_000_000)
        relations = {"a": points, "b": depots}
        frames = {"a": EXTENT, "b": EXTENT}

        engine = SpatialEngine()
        engine.register(name="a", points=points, bounds=EXTENT, cells_per_side=CELLS_PER_SIDE)
        engine.register(name="b", points=depots, bounds=EXTENT, cells_per_side=CELLS_PER_SIDE)
        queries = tuple(Query.from_tree(tree) for tree in trees)
        for query in queries:  # warm the plan cache outside the timed region
            engine.run(query)

        def naive() -> list:
            out = []
            for _ in range(reps):
                out = [reference_rows(tree, relations, frames) for tree in trees]
            return out

        def pushdown() -> list:
            out = []
            for _ in range(reps):
                out = [result_rows(engine.run(query)) for query in queries]
            return out

        return {"naive-reexec": naive, "algebra-pushdown": pushdown}

    return FigureWorkload(
        figure=ALGEBRA_FIGURE,
        title="Algebra pushdown + aggregation vs naive re-execution",
        sweep_name="relation size",
        sweep_values=sweep,
        series=("naive-reexec", "algebra-pushdown"),
        builder=build,
    )


_FACTORIES: dict[int, Callable[[float], FigureWorkload]] = {
    19: _fig19,
    20: _fig20,
    21: _fig21,
    22: _fig22,
    23: _fig23,
    24: _fig24,
    25: _fig25,
    26: _fig26,
    ENGINE_THROUGHPUT_FIGURE: _fig27,
    SHARDED_THROUGHPUT_FIGURE: _fig28,
    COLUMNAR_SPEEDUP_FIGURE: _fig29,
    STREAM_THROUGHPUT_FIGURE: _fig30,
    PLANNER_CALIBRATION_FIGURE: _fig31,
    KERNELS_FANOUT_FIGURE: _fig32,
    ALGEBRA_FIGURE: _fig33,
}


def figure_workload(figure: int, scale: float = 0.05) -> FigureWorkload:
    """Return the workload reproducing the given paper figure.

    Parameters
    ----------
    figure:
        Paper figure number (19–26).
    scale:
        Dataset-size scale factor relative to the paper (1.0 = paper sizes).
        The default 0.05 keeps a full sweep to a few minutes of pure Python.
    """
    if figure not in _FACTORIES:
        raise InvalidParameterError(
            f"unknown figure {figure}; supported figures: {sorted(_FACTORIES)}"
        )
    if scale <= 0:
        raise InvalidParameterError("scale must be positive")
    return _FACTORIES[figure](scale)
