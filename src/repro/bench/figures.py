"""One-call helpers to reproduce a figure and print its table."""

from __future__ import annotations

from typing import Callable, Iterable

from repro.bench.harness import FigureResult, format_table, run_figure
from repro.bench.workloads import (
    ALGEBRA_FIGURE,
    ALL_FIGURES,
    COLUMNAR_SPEEDUP_FIGURE,
    ENGINE_THROUGHPUT_FIGURE,
    PLANNER_CALIBRATION_FIGURE,
    SHARDED_THROUGHPUT_FIGURE,
    STREAM_THROUGHPUT_FIGURE,
)

__all__ = [
    "run_and_format",
    "run_all_figures",
    "run_engine_throughput",
    "run_sharded_throughput",
    "run_columnar_speedup",
    "run_stream_throughput",
    "run_planner_calibration",
    "run_algebra_pushdown",
]


def run_and_format(
    figure: int,
    scale: float = 0.05,
    repeats: int = 1,
    sweep_values: tuple | None = None,
    progress: Callable[[str], None] | None = None,
) -> tuple[FigureResult, str]:
    """Run one figure's sweep and return (measurements, formatted table)."""
    result = run_figure(
        figure, scale=scale, repeats=repeats, sweep_values=sweep_values, progress=progress
    )
    return result, format_table(result)


def run_all_figures(
    scale: float = 0.05,
    repeats: int = 1,
    figures: Iterable[int] = ALL_FIGURES,
    progress: Callable[[str], None] | None = None,
) -> dict[int, tuple[FigureResult, str]]:
    """Run every requested figure; returns figure number → (result, table)."""
    out: dict[int, tuple[FigureResult, str]] = {}
    for figure in figures:
        out[figure] = run_and_format(figure, scale=scale, repeats=repeats, progress=progress)
    return out


def run_engine_throughput(
    scale: float = 0.05,
    repeats: int = 1,
    sweep_values: tuple | None = None,
    progress: Callable[[str], None] | None = None,
) -> tuple[FigureResult, str]:
    """Run the engine-throughput workload (engine-cached vs cold ``Query.run``).

    This is not a paper figure; it measures what the ``repro.engine`` layer
    adds on top of the paper's algorithms when the same query shape repeats.
    """
    return run_and_format(
        ENGINE_THROUGHPUT_FIGURE,
        scale=scale,
        repeats=repeats,
        sweep_values=sweep_values,
        progress=progress,
    )


def run_sharded_throughput(
    scale: float = 0.05,
    repeats: int = 1,
    sweep_values: tuple | None = None,
    progress: Callable[[str], None] | None = None,
) -> tuple[FigureResult, str]:
    """Run the sharded-throughput workload (sharded vs single-partition engine).

    This is not a paper figure; it sweeps the shard count of
    :class:`repro.shard.ShardedEngine` on a clustered kNN-join workload
    against the unsharded ``SpatialEngine``.  Speedup comes from smaller
    per-shard indexes plus — on multi-core hosts — parallel shard tasks.
    """
    return run_and_format(
        SHARDED_THROUGHPUT_FIGURE,
        scale=scale,
        repeats=repeats,
        sweep_values=sweep_values,
        progress=progress,
    )


def run_columnar_speedup(
    scale: float = 0.05,
    repeats: int = 1,
    sweep_values: tuple | None = None,
    progress: Callable[[str], None] | None = None,
) -> tuple[FigureResult, str]:
    """Run the columnar-speedup workload (PointStore kNN vs object path).

    This is not a paper figure; it quantifies what the structure-of-arrays
    refactor buys on a kNN-heavy batch against the seed's object-tuple
    representation (kept in the tree as the parity oracle).
    """
    return run_and_format(
        COLUMNAR_SPEEDUP_FIGURE,
        scale=scale,
        repeats=repeats,
        sweep_values=sweep_values,
        progress=progress,
    )


def run_stream_throughput(
    scale: float = 0.05,
    repeats: int = 1,
    sweep_values: tuple | None = None,
    progress: Callable[[str], None] | None = None,
) -> tuple[FigureResult, str]:
    """Run the stream-throughput workload (incremental vs per-tick re-execution).

    This is not a paper figure; it measures what the ``repro.stream`` layer
    buys on a continuous workload — standing kNN/range queries over a
    BerlinMOD relation whose points keep moving — against re-executing every
    standing query after every update batch.
    """
    return run_and_format(
        STREAM_THROUGHPUT_FIGURE,
        scale=scale,
        repeats=repeats,
        sweep_values=sweep_values,
        progress=progress,
    )


def run_planner_calibration(
    scale: float = 0.05,
    repeats: int = 1,
    sweep_values: tuple | None = None,
    progress: Callable[[str], None] | None = None,
) -> tuple[FigureResult, str]:
    """Run the planner-calibration workload (feedback-corrected vs static).

    This is not a paper figure; it measures what the planner's calibration
    loop buys on a workload the static cost constants mispredict (clustered
    outer data around the selection focal, small kσ): the static engine keeps
    executing the mispredicted strategy, the calibration-warmed engine has
    demoted it and re-ranked with observed costs.
    """
    return run_and_format(
        PLANNER_CALIBRATION_FIGURE,
        scale=scale,
        repeats=repeats,
        sweep_values=sweep_values,
        progress=progress,
    )


def run_algebra_pushdown(
    scale: float = 0.05,
    repeats: int = 1,
    sweep_values: tuple | None = None,
    progress: Callable[[str], None] | None = None,
) -> tuple[FigureResult, str]:
    """Run the algebra workload (pushdown + aggregation vs naive re-execution).

    This is not a paper figure; it measures what the ``repro.algebra`` layer
    buys on a composed analytics dashboard — windowed hotspot top-k, per-kind
    density grid, region rollup — against re-evaluating the same trees with
    the brute-force reference evaluator over materialized point lists.
    """
    return run_and_format(
        ALGEBRA_FIGURE,
        scale=scale,
        repeats=repeats,
        sweep_values=sweep_values,
        progress=progress,
    )
