"""Plain-text (ASCII) charts for figure results.

The harness's tables are exact; the charts give a quick visual impression of
each figure's shape — which series grows, where they diverge — without any
plotting dependency.  ``python -m repro.bench --chart`` appends a chart below
each table.
"""

from __future__ import annotations

from repro.bench.harness import FigureResult

__all__ = ["format_ascii_chart"]

_MARKERS = ("#", "o", "+", "x")


def format_ascii_chart(result: FigureResult, width: int = 60, height: int = 12) -> str:
    """Render one figure's measurements as an ASCII scatter/line chart.

    The x axis is the sweep position (equally spaced), the y axis is time in
    milliseconds (linear, starting at zero).  Each series gets its own marker.
    """
    workload = result.workload
    values = [v for v in workload.sweep_values if any(p.sweep_value == v for p in result.points)]
    if not values:
        return f"Figure {workload.figure}: no measurements"

    series_times: dict[str, list[float]] = {}
    for series in workload.series:
        times = []
        for value in values:
            try:
                times.append(result.seconds(value, series) * 1000.0)
            except KeyError:
                times.append(0.0)
        series_times[series] = times

    max_time = max(max(times) for times in series_times.values()) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for idx, (series, times) in enumerate(series_times.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        for i, t in enumerate(times):
            x = int(round(i / max(1, len(values) - 1) * (width - 1)))
            y = int(round((t / max_time) * (height - 1)))
            grid[height - 1 - y][x] = marker

    lines = [f"Figure {workload.figure} — time in ms (y, 0..{max_time:.0f}) vs {workload.sweep_name} (x)"]
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]} = {series}" for i, series in enumerate(workload.series)
    )
    lines.append(legend)
    return "\n".join(lines)
