"""Timing harness and table formatting for the figure workloads."""

from __future__ import annotations

import gc
import statistics
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.bench.workloads import FigureWorkload, figure_workload
from repro.exceptions import InvalidParameterError

__all__ = ["MeasuredPoint", "FigureResult", "run_figure", "format_table"]


@dataclass(frozen=True, slots=True)
class MeasuredPoint:
    """One (sweep value, series) measurement."""

    sweep_value: object
    series: str
    seconds: float
    result_size: int


@dataclass
class FigureResult:
    """All measurements of one figure's sweep."""

    workload: FigureWorkload
    points: list[MeasuredPoint] = field(default_factory=list)

    @property
    def figure(self) -> int:
        return self.workload.figure

    def seconds(self, sweep_value: object, series: str) -> float:
        """Measured time of one series at one sweep value."""
        for p in self.points:
            if p.sweep_value == sweep_value and p.series == series:
                return p.seconds
        raise KeyError((sweep_value, series))

    def speedups(self, baseline: str, optimized: str) -> list[float]:
        """Per-sweep-value speedup of ``optimized`` over ``baseline``."""
        out = []
        for value in self.workload.sweep_values:
            base = self.seconds(value, baseline)
            opt = self.seconds(value, optimized)
            out.append(base / opt if opt > 0 else float("inf"))
        return out

    def median_speedup(self, baseline: str, optimized: str) -> float:
        """Median speedup across the sweep."""
        return statistics.median(self.speedups(baseline, optimized))


def _time_callable(fn: Callable[[], object], repeats: int) -> tuple[float, int]:
    """Return (best wall-clock seconds, result size) over ``repeats`` runs."""
    best = float("inf")
    size = 0
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        try:
            size = len(result)  # type: ignore[arg-type]
        except TypeError:
            size = 0
    return best, size


def run_figure(
    figure: int | FigureWorkload,
    scale: float = 0.05,
    repeats: int = 1,
    sweep_values: tuple | None = None,
    progress: Callable[[str], None] | None = None,
) -> FigureResult:
    """Run one figure's sweep and collect the measurements.

    Parameters
    ----------
    figure:
        Figure number (19–26) or an already-built workload.
    scale:
        Dataset-size scale factor (ignored when a workload object is given).
    repeats:
        Number of repetitions per measurement; the best time is kept.
    sweep_values:
        Optional subset of the sweep to run (e.g. a single point for smoke
        tests).
    progress:
        Optional callback receiving one human-readable line per measurement.
    """
    if repeats <= 0:
        raise InvalidParameterError("repeats must be positive")
    workload = figure if isinstance(figure, FigureWorkload) else figure_workload(figure, scale)
    values = workload.sweep_values if sweep_values is None else tuple(sweep_values)
    result = FigureResult(workload=workload)
    for value in values:
        runners = workload.build(value)
        for series in workload.series:
            seconds, size = _time_callable(runners[series], repeats)
            result.points.append(
                MeasuredPoint(sweep_value=value, series=series, seconds=seconds, result_size=size)
            )
            if progress is not None:
                progress(
                    f"figure {workload.figure} | {workload.sweep_name}={value} | "
                    f"{series}: {seconds * 1000.0:.1f} ms ({size} rows)"
                )
        # Engine-backed workloads hold worker pools (and shared-memory
        # segments) alive through observability-gauge reference cycles; a
        # collection here runs their finalizers so each sweep value's
        # resources are released before the next one builds — and before
        # the interpreter's resource tracker scans for leaks at exit.
        del runners
        gc.collect()
    return result


def format_table(result: FigureResult) -> str:
    """Render a figure's measurements as a paper-style text table."""
    workload = result.workload
    header = [workload.sweep_name] + [f"{s} (ms)" for s in workload.series]
    rows: list[list[str]] = []
    measured_values = sorted({p.sweep_value for p in result.points}, key=_sort_key)
    for value in measured_values:
        row = [str(value)]
        for series in workload.series:
            try:
                row.append(f"{result.seconds(value, series) * 1000.0:.1f}")
            except KeyError:
                row.append("-")
        rows.append(row)

    widths = [max(len(header[i]), *(len(r[i]) for r in rows)) for i in range(len(header))]
    lines = [
        f"Figure {workload.figure}: {workload.title}",
        " | ".join(h.ljust(widths[i]) for i, h in enumerate(header)),
        "-+-".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))

    if len(workload.series) == 2 and len(measured_values) == len(workload.sweep_values):
        baseline, optimized = workload.series
        try:
            speedup = result.median_speedup(baseline, optimized)
            lines.append(
                f"median speedup of '{optimized}' over '{baseline}': {speedup:.1f}x"
            )
        except KeyError:
            pass
    return "\n".join(lines)


def _sort_key(value: object):
    return (0, value) if isinstance(value, (int, float)) else (1, str(value))
