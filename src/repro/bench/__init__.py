"""Benchmark harness that regenerates every figure of the paper's evaluation.

The paper's Section 6 reports eight figures (19–26), each a sweep of one
parameter with two time series (an optimized algorithm vs. a baseline).  This
package provides:

* :mod:`repro.bench.workloads` — a declarative workload per figure: which
  datasets to generate, which parameter to sweep, and which algorithms to time.
* :mod:`repro.bench.harness` — timing and table formatting.
* :mod:`repro.bench.figures` — one-call helpers that run a figure end to end.
* ``python -m repro.bench`` — the command-line entry point.

Absolute times are not comparable with the paper (different language and
hardware, scaled-down datasets); the harness reports the same *series* so the
shape — who wins, by what factor, where the crossover lies — can be compared.
"""

from repro.bench.workloads import FigureWorkload, figure_workload, ALL_FIGURES
from repro.bench.harness import FigureResult, MeasuredPoint, run_figure, format_table
from repro.bench.figures import run_and_format
from repro.bench.plotting import format_ascii_chart

__all__ = [
    "FigureWorkload",
    "figure_workload",
    "ALL_FIGURES",
    "FigureResult",
    "MeasuredPoint",
    "run_figure",
    "format_table",
    "run_and_format",
    "format_ascii_chart",
]
