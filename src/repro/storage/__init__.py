"""Columnar point storage (structure-of-arrays backbone).

``repro.storage`` holds the :class:`~repro.storage.pointstore.PointStore`:
contiguous ``xs`` / ``ys`` / ``pids`` arrays plus a sparse payload side-table.
Every layer above it — index blocks, the locality-based kNN, the operators and
the core algorithms — works on *row indices into a store* and materializes
:class:`~repro.geometry.point.Point` objects only at the result boundary.
See ``docs/storage.md`` for the layout and the materialization rules.
"""

from repro.storage.pointstore import PointStore

__all__ = ["PointStore"]
