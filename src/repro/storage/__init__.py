"""Columnar point storage (structure-of-arrays backbone).

``repro.storage`` holds the :class:`~repro.storage.pointstore.PointStore`:
contiguous ``xs`` / ``ys`` / ``pids`` arrays plus a sparse payload side-table.
Every layer above it — index blocks, the locality-based kNN, the operators and
the core algorithms — works on *row indices into a store* and materializes
:class:`~repro.geometry.point.Point` objects only at the result boundary.
See ``docs/storage.md`` for the layout and the materialization rules.

Streaming mutations are described columnar-ly as well:
:class:`~repro.storage.update.UpdateBatch` (requested insert/remove/move
columns), :class:`~repro.storage.update.AppliedUpdate` (the effective
mutation, with old coordinates preserved for guard-region kernels) and
:class:`~repro.storage.update.StoreChange` (the same mutation in row terms,
the index-repair contract).
"""

from repro.storage.pointstore import PointStore
from repro.storage.update import AppliedUpdate, StoreChange, UpdateBatch

__all__ = ["PointStore", "UpdateBatch", "AppliedUpdate", "StoreChange"]
