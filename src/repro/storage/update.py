"""Columnar update descriptions for streaming mutations.

A continuous workload mutates a relation through batches of three operation
kinds — ``insert`` new points, ``remove`` existing points (by pid) and
``move`` existing points to new coordinates.  The types here describe such a
batch *columnar-ly*, one contiguous array per operand column, so that every
consumer downstream (the dataset's snapshot update, the index repair, the
stream layer's guard-region relevance kernels) runs vectorized over the
batch's columns instead of looping over per-operation objects:

* :class:`UpdateBatch` — the client-side description of one batch (what the
  caller *asked for*).  All operations refer to the relation state *before*
  the batch: moves and removes name pre-batch pids, and one pid may appear in
  at most one of the two (an insert may not reuse a pid named by either).
* :class:`AppliedUpdate` — what a dataset *actually did* with a batch:
  effective pids plus old/new coordinate columns (unknown remove/move pids
  are dropped, anonymous inserts carry their freshly assigned pids).  This is
  the input of the stream layer's relevance kernels, which need old
  coordinates (for "was the removed point inside the window?") as much as
  new ones.
* :class:`StoreChange` — the same mutation expressed in *row* terms against
  the old/new store pair, which is what an index needs to repair its blocks
  in place (:meth:`repro.index.base.SpatialIndex.repaired`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Iterable

import numpy as np

from repro.exceptions import GeometryError, InvalidParameterError
from repro.geometry.point import Point

__all__ = ["UpdateBatch", "AppliedUpdate", "StoreChange"]

_EMPTY_F = np.empty(0, dtype=np.float64)
_EMPTY_I = np.empty(0, dtype=np.int64)


class UpdateBatch:
    """One columnar batch of ``insert`` / ``remove`` / ``move`` operations.

    Parameters
    ----------
    inserts:
        New points — :class:`Point` objects or ``(x, y)`` tuples.  Tuples and
        points with ``pid < 0`` receive fresh pids when the batch is applied;
        explicit pids must be unique within the batch and must not collide
        with a pid named by ``removes`` or ``moves``.
    removes:
        Pids of points to drop (duplicates are collapsed; pids unknown to the
        target relation are ignored at apply time).
    moves:
        ``(pid, new_x, new_y)`` triples relocating existing points.  A pid
        may be moved at most once per batch and may not also be removed.

    Every operation refers to the relation state *before* the batch; the
    apply order (moves, then removes, then inserts) is therefore
    unobservable except for pid freshness, which is resolved last.
    """

    __slots__ = (
        "insert_xs",
        "insert_ys",
        "insert_pids",
        "insert_payloads",
        "remove_pids",
        "move_pids",
        "move_xs",
        "move_ys",
    )

    def __init__(
        self,
        inserts: Iterable[Point | tuple[float, float]] = (),
        removes: Iterable[int] = (),
        moves: Iterable[tuple[int, float, float]] = (),
    ) -> None:
        ins = list(inserts)
        self.insert_xs = np.empty(len(ins), dtype=np.float64)
        self.insert_ys = np.empty(len(ins), dtype=np.float64)
        self.insert_pids = np.empty(len(ins), dtype=np.int64)
        self.insert_payloads: dict[int, Any] = {}
        for i, item in enumerate(ins):
            if isinstance(item, Point):
                self.insert_xs[i] = item.x
                self.insert_ys[i] = item.y
                self.insert_pids[i] = item.pid
                if item.payload is not None:
                    self.insert_payloads[i] = item.payload
            else:
                x, y = item
                self.insert_xs[i] = float(x)
                self.insert_ys[i] = float(y)
                self.insert_pids[i] = -1
        if len(ins) and not (
            np.isfinite(self.insert_xs).all() and np.isfinite(self.insert_ys).all()
        ):
            raise GeometryError("insert coordinates must be finite")

        rm = list(removes)
        self.remove_pids = (
            np.unique(np.ascontiguousarray(rm, dtype=np.int64)) if rm else _EMPTY_I.copy()
        )

        mv = list(moves)
        self.move_pids = np.empty(len(mv), dtype=np.int64)
        self.move_xs = np.empty(len(mv), dtype=np.float64)
        self.move_ys = np.empty(len(mv), dtype=np.float64)
        for i, (pid, x, y) in enumerate(mv):
            self.move_pids[i] = int(pid)
            self.move_xs[i] = float(x)
            self.move_ys[i] = float(y)
        if len(mv) and not (
            np.isfinite(self.move_xs).all() and np.isfinite(self.move_ys).all()
        ):
            raise GeometryError("move coordinates must be finite")
        self._validate()

    def _validate(self) -> None:
        if len(self.move_pids) and len(np.unique(self.move_pids)) != len(self.move_pids):
            raise InvalidParameterError("a pid may be moved at most once per batch")
        if len(self.move_pids) and len(self.remove_pids):
            clash = np.intersect1d(self.move_pids, self.remove_pids)
            if len(clash):
                raise InvalidParameterError(
                    f"pid {int(clash[0])} is both moved and removed in one batch"
                )
        explicit = self.insert_pids[self.insert_pids >= 0]
        if len(explicit):
            if len(np.unique(explicit)) != len(explicit):
                raise InvalidParameterError("duplicate explicit insert pids in batch")
            named = np.concatenate((self.move_pids, self.remove_pids))
            clash = np.intersect1d(explicit, named)
            if len(clash):
                raise InvalidParameterError(
                    f"pid {int(clash[0])} is inserted and moved/removed in one batch"
                )

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "UpdateBatch":
        """A batch with no operations."""
        return cls()

    @classmethod
    def from_columns(
        cls,
        insert_xs: np.ndarray | None = None,
        insert_ys: np.ndarray | None = None,
        insert_pids: np.ndarray | None = None,
        remove_pids: np.ndarray | None = None,
        move_pids: np.ndarray | None = None,
        move_xs: np.ndarray | None = None,
        move_ys: np.ndarray | None = None,
    ) -> "UpdateBatch":
        """Build a batch directly from operand columns (no per-op loop).

        The high-throughput producer path (tick streams generate columns to
        begin with).  ``insert_pids`` defaults to all-anonymous (``-1``);
        the same validation as the per-operation constructor applies.
        """
        batch = cls.__new__(cls)
        n_ins = len(insert_xs) if insert_xs is not None else 0
        batch.insert_xs = (
            np.ascontiguousarray(insert_xs, dtype=np.float64)
            if insert_xs is not None
            else _EMPTY_F.copy()
        )
        batch.insert_ys = (
            np.ascontiguousarray(insert_ys, dtype=np.float64)
            if insert_ys is not None
            else _EMPTY_F.copy()
        )
        if len(batch.insert_xs) != len(batch.insert_ys):
            raise InvalidParameterError("insert_xs and insert_ys must align")
        batch.insert_pids = (
            np.ascontiguousarray(insert_pids, dtype=np.int64)
            if insert_pids is not None
            else np.full(n_ins, -1, dtype=np.int64)
        )
        if len(batch.insert_pids) != n_ins:
            raise InvalidParameterError("insert_pids must align with insert_xs")
        batch.insert_payloads = {}
        if n_ins and not (
            np.isfinite(batch.insert_xs).all() and np.isfinite(batch.insert_ys).all()
        ):
            raise GeometryError("insert coordinates must be finite")
        batch.remove_pids = (
            np.unique(np.ascontiguousarray(remove_pids, dtype=np.int64))
            if remove_pids is not None and len(remove_pids)
            else _EMPTY_I.copy()
        )
        batch.move_pids = (
            np.ascontiguousarray(move_pids, dtype=np.int64)
            if move_pids is not None
            else _EMPTY_I.copy()
        )
        batch.move_xs = (
            np.ascontiguousarray(move_xs, dtype=np.float64)
            if move_xs is not None
            else _EMPTY_F.copy()
        )
        batch.move_ys = (
            np.ascontiguousarray(move_ys, dtype=np.float64)
            if move_ys is not None
            else _EMPTY_F.copy()
        )
        if not (len(batch.move_pids) == len(batch.move_xs) == len(batch.move_ys)):
            raise InvalidParameterError("move columns must have equal length")
        if len(batch.move_pids) and not (
            np.isfinite(batch.move_xs).all() and np.isfinite(batch.move_ys).all()
        ):
            raise GeometryError("move coordinates must be finite")
        batch._validate()
        return batch

    @property
    def num_inserts(self) -> int:
        """Number of insert operations in the batch."""
        return len(self.insert_xs)

    @property
    def num_removes(self) -> int:
        """Number of (distinct) remove operations in the batch."""
        return len(self.remove_pids)

    @property
    def num_moves(self) -> int:
        """Number of move operations in the batch."""
        return len(self.move_pids)

    @property
    def size(self) -> int:
        """Total number of operations in the batch."""
        return self.num_inserts + self.num_removes + self.num_moves

    @property
    def is_empty(self) -> bool:
        """True when the batch holds no operations."""
        return self.size == 0

    def insert_points(self) -> list[Point]:
        """Materialize the insert operands as :class:`Point` objects."""
        return [
            Point(
                float(self.insert_xs[i]),
                float(self.insert_ys[i]),
                int(self.insert_pids[i]),
                self.insert_payloads.get(i),
            )
            for i in range(self.num_inserts)
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"UpdateBatch(inserts={self.num_inserts}, removes={self.num_removes}, "
            f"moves={self.num_moves})"
        )


@dataclass(frozen=True)
class AppliedUpdate:
    """The *effective* mutation a dataset performed for one batch.

    Unknown remove/move pids have been dropped, anonymous inserts carry the
    fresh pids the dataset assigned, and every operand column is materialized
    — including the **old** coordinates of removed and moved points, which
    relevance kernels need (the new store no longer has them).  All arrays of
    one operation kind are aligned.
    """

    inserted_pids: np.ndarray = field(default_factory=lambda: _EMPTY_I.copy())
    inserted_xs: np.ndarray = field(default_factory=lambda: _EMPTY_F.copy())
    inserted_ys: np.ndarray = field(default_factory=lambda: _EMPTY_F.copy())
    removed_pids: np.ndarray = field(default_factory=lambda: _EMPTY_I.copy())
    removed_xs: np.ndarray = field(default_factory=lambda: _EMPTY_F.copy())
    removed_ys: np.ndarray = field(default_factory=lambda: _EMPTY_F.copy())
    moved_pids: np.ndarray = field(default_factory=lambda: _EMPTY_I.copy())
    moved_old_xs: np.ndarray = field(default_factory=lambda: _EMPTY_F.copy())
    moved_old_ys: np.ndarray = field(default_factory=lambda: _EMPTY_F.copy())
    moved_new_xs: np.ndarray = field(default_factory=lambda: _EMPTY_F.copy())
    moved_new_ys: np.ndarray = field(default_factory=lambda: _EMPTY_F.copy())

    @property
    def size(self) -> int:
        """Total number of effective operations."""
        return len(self.inserted_pids) + len(self.removed_pids) + len(self.moved_pids)

    @property
    def is_empty(self) -> bool:
        """True when the batch had no effect."""
        return self.size == 0

    def touched_pids(self) -> np.ndarray:
        """Pids of every point the update removed or relocated (cached)."""
        return self._touched

    @cached_property
    def _touched(self) -> np.ndarray:
        return np.concatenate((self.removed_pids, self.moved_pids))

    @cached_property
    def touched_sorted(self) -> np.ndarray:
        """Sorted :meth:`touched_pids` — the membership-probe column.

        Guard kernels run one ``searchsorted`` of their (few) member pids
        against this column; sorting once per batch amortizes across every
        subscription the batch is offered to.
        """
        return np.sort(self._touched)

    def candidate_columns(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(xs, ys, pids)`` of every point the update *placed* somewhere.

        Inserted points plus the new positions of moved points — exactly the
        candidate set a guard region must test for entry into a standing
        result.  Cached: the concatenation happens once per batch, not once
        per subscription.
        """
        return self._candidates

    @cached_property
    def _candidates(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        return (
            np.concatenate((self.inserted_xs, self.moved_new_xs)),
            np.concatenate((self.inserted_ys, self.moved_new_ys)),
            np.concatenate((self.inserted_pids, self.moved_pids)),
        )


@dataclass(frozen=True)
class StoreChange:
    """A store mutation in row terms: the index-repair contract.

    ``moved_rows`` are row indices valid in **both** stores' numbering until
    removal compaction (moves never renumber); ``removed_rows`` are sorted
    row indices in the *old* store; ``appended`` counts fresh rows at the
    tail of the *new* store.  :meth:`map_rows` translates surviving old row
    indices into new-store numbering.
    """

    moved_rows: np.ndarray = field(default_factory=lambda: _EMPTY_I.copy())
    removed_rows: np.ndarray = field(default_factory=lambda: _EMPTY_I.copy())
    appended: int = 0

    @property
    def size(self) -> int:
        """Total number of changed rows."""
        return len(self.moved_rows) + len(self.removed_rows) + self.appended

    def map_rows(self, rows: np.ndarray) -> np.ndarray:
        """Translate surviving old-store row indices into new-store numbering.

        Each surviving row shifts down by the number of removed rows before
        it; callers must not pass removed rows.
        """
        if not len(self.removed_rows):
            return rows
        return rows - np.searchsorted(self.removed_rows, rows, side="left").astype(rows.dtype)
