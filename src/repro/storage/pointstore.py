"""The ``PointStore``: structure-of-arrays storage for 2-D point relations.

A store keeps one relation's points as three contiguous columns — ``xs`` and
``ys`` (float64) and ``pids`` (int64) — plus a *sparse* payload side-table
mapping row index → payload for the (rare) points that carry one.  Everything
above this layer (index blocks, localities, operators, the core algorithms)
identifies points by **row index into a store** and runs its distance math,
ranking and intersection as vectorized numpy kernels over gathered columns.

:class:`~repro.geometry.point.Point` objects exist only at two boundaries:

* **ingest** — ``from_points`` shreds an iterable of points into columns, and
* **results** — ``materialize`` / ``point_at`` rebuild point objects for rows
  that actually reach a query answer (the materialization boundary described
  in ``docs/storage.md``).

Stores are immutable snapshots: every "mutation" (:meth:`extended`,
:meth:`without_rows`) returns a new store, so blocks and neighborhoods built
against an old version keep reading consistent data after a dataset mutation.
Materialized point objects are cached per row, so repeated materialization of
the same row returns the same object.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

import numpy as np

from repro.exceptions import GeometryError, InvalidParameterError
from repro.geometry.point import Point

__all__ = ["PointStore", "aligned_rows"]


def aligned_rows(
    pids: np.ndarray, wanted: np.ndarray, order: np.ndarray | None = None
) -> np.ndarray:
    """Index of each ``wanted`` pid in the ``pids`` column (``-1`` = absent).

    The aligned-lookup kernel shared by :meth:`PointStore.rows_aligned` and
    the stream layer's row-table maintenance: one ``searchsorted`` against
    the sorted pid column (``order`` — the column's argsort — is computed
    when not supplied), positions clipped so out-of-range probes compare
    against a real element, and a hit mask filters false positives.
    Requires ``pids`` to be duplicate-free; callers with duplicate pids must
    use their own scan.
    """
    out = np.full(len(wanted), -1, dtype=np.int64)
    if not len(pids) or not len(wanted):
        return out
    if order is None:
        order = np.argsort(pids)
    sorted_pids = pids[order]
    pos = np.minimum(np.searchsorted(sorted_pids, wanted), len(sorted_pids) - 1)
    hits = sorted_pids[pos] == wanted
    out[hits] = order[pos[hits]]
    return out


class PointStore:
    """Columnar (structure-of-arrays) storage for one set of 2-D points.

    Parameters
    ----------
    xs, ys:
        Coordinate columns, ``(n,)`` float64.
    pids:
        Identifier column, ``(n,)`` int64.  The library's datasets keep pids
        unique; the store itself does not enforce uniqueness (ad-hoc blocks
        may hold anonymous ``pid == -1`` points).
    payloads:
        Sparse side-table: row index → payload, for rows whose point carries
        a payload.  ``None``/empty when no point has one (the common case).
    validate:
        When true (default), reject non-finite coordinates — the same
        invariant :class:`Point` enforces per object, checked here with one
        vectorized pass.
    """

    __slots__ = ("xs", "ys", "pids", "payloads", "_points", "_pid_order")

    def __init__(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        pids: np.ndarray,
        payloads: dict[int, Any] | None = None,
        validate: bool = True,
    ) -> None:
        self.xs = np.ascontiguousarray(xs, dtype=np.float64)
        self.ys = np.ascontiguousarray(ys, dtype=np.float64)
        self.pids = np.ascontiguousarray(pids, dtype=np.int64)
        if not (len(self.xs) == len(self.ys) == len(self.pids)):
            raise InvalidParameterError(
                "xs, ys and pids columns must have equal length, got "
                f"{len(self.xs)}/{len(self.ys)}/{len(self.pids)}"
            )
        if validate and len(self.xs):
            if not (np.isfinite(self.xs).all() and np.isfinite(self.ys).all()):
                raise GeometryError("point coordinates must be finite")
        self.payloads: dict[int, Any] = payloads or {}
        #: Per-row cache of materialized Point objects (filled lazily).
        self._points: list[Point | None] = []
        #: Lazily built argsort of the pid column for O(log n) pid lookups;
        #: ``None`` until first use, ``False`` when pids are not unique.
        self._pid_order: np.ndarray | bool | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_points(cls, points: Iterable[Point]) -> "PointStore":
        """Shred an iterable of :class:`Point` into columns (ingest boundary).

        Payloads are recorded in the sparse side-table; the point objects
        themselves seed the materialization cache, so a store built from
        points hands the *same* objects back at the result boundary.
        """
        pts = points if isinstance(points, (list, tuple)) else list(points)
        n = len(pts)
        xs = np.empty(n, dtype=np.float64)
        ys = np.empty(n, dtype=np.float64)
        pids = np.empty(n, dtype=np.int64)
        payloads: dict[int, Any] = {}
        for i, p in enumerate(pts):
            xs[i] = p.x
            ys[i] = p.y
            pids[i] = p.pid
            if p.payload is not None:
                payloads[i] = p.payload
        # Point.__post_init__ already guaranteed finite coordinates.
        store = cls(xs, ys, pids, payloads, validate=False)
        store._points = list(pts)
        return store

    @classmethod
    def empty(cls) -> "PointStore":
        """A store with zero rows."""
        return cls(
            np.empty(0, dtype=np.float64),
            np.empty(0, dtype=np.float64),
            np.empty(0, dtype=np.int64),
            validate=False,
        )

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.xs)

    @property
    def size(self) -> int:
        """Number of rows (points) in the store."""
        return len(self.xs)

    def max_pid(self) -> int:
        """The largest pid in the store (``-1`` when empty)."""
        return int(self.pids.max()) if len(self.pids) else -1

    # ------------------------------------------------------------------
    # Vectorized column access
    # ------------------------------------------------------------------
    def coords(self, rows: np.ndarray | None = None) -> np.ndarray:
        """Gather an ``(n, 2)`` coordinate array (all rows, or a subset)."""
        if rows is None:
            return np.column_stack((self.xs, self.ys))
        return np.column_stack((self.xs[rows], self.ys[rows]))

    def distances_to(self, x: float, y: float, rows: np.ndarray | None = None) -> np.ndarray:
        """Euclidean distances from every (selected) row to ``(x, y)``."""
        if rows is None:
            return np.hypot(self.xs - x, self.ys - y)
        return np.hypot(self.xs[rows] - x, self.ys[rows] - y)

    def _ensure_pid_order(self) -> np.ndarray | bool:
        """The cached pid-column argsort, or ``False`` when pids repeat."""
        if self._pid_order is None:
            order = np.argsort(self.pids)
            unique = len(self.pids) < 2 or bool(
                (np.diff(self.pids[order]) != 0).all()
            )
            self._pid_order = order if unique else False
        return self._pid_order

    def rows_of_pids(self, pids: Iterable[int]) -> np.ndarray:
        """Row indices whose pid is in ``pids`` (store order).

        When the pid column is unique (always true for dataset stores) the
        lookup runs against a cached argsort of the column — O(m log n)
        per call instead of a full-column scan.  Stores with duplicate pids
        (ad-hoc anonymous points) fall back to the scan.
        """
        wanted = np.asarray(
            pids if isinstance(pids, (np.ndarray, list, tuple)) else list(pids),
            dtype=np.int64,
        )
        if len(self.pids) == 0 or len(wanted) == 0:
            return np.empty(0, dtype=np.int64)
        order = self._ensure_pid_order()
        if order is False:
            return np.nonzero(np.isin(self.pids, wanted))[0]
        rows = aligned_rows(self.pids, wanted, order)
        return np.sort(rows[rows >= 0])

    def rows_aligned(self, pids: Iterable[int]) -> np.ndarray:
        """Row index of each requested pid, aligned with the input (``-1`` = absent).

        Unlike :meth:`rows_of_pids` (which returns the matching rows in store
        order), the result here is positionally aligned with ``pids`` so
        callers can pair each pid with per-pid operands (e.g. a move batch's
        new coordinates).  Requires a unique pid column; stores with
        duplicate pids fall back to a scan per pid.
        """
        wanted = np.asarray(
            pids if isinstance(pids, (np.ndarray, list, tuple)) else list(pids),
            dtype=np.int64,
        )
        if len(self.pids) == 0 or len(wanted) == 0:
            return np.full(len(wanted), -1, dtype=np.int64)
        order = self._ensure_pid_order()
        if order is False:
            out = np.full(len(wanted), -1, dtype=np.int64)
            for i, pid in enumerate(wanted.tolist()):
                hits = np.nonzero(self.pids == pid)[0]
                if len(hits):
                    out[i] = int(hits[0])
            return out
        return aligned_rows(self.pids, wanted, order)

    # ------------------------------------------------------------------
    # Materialization boundary
    # ------------------------------------------------------------------
    def _ensure_cache(self) -> list[Point | None]:
        if len(self._points) != len(self.xs):
            self._points = [None] * len(self.xs)
        return self._points

    def point_at(self, row: int) -> Point:
        """Materialize (and cache) the :class:`Point` for one row."""
        cache = self._ensure_cache()
        p = cache[row]
        if p is None:
            p = Point(
                float(self.xs[row]),
                float(self.ys[row]),
                int(self.pids[row]),
                self.payloads.get(row),
            )
            cache[row] = p
        return p

    def materialize(self, rows: Sequence[int] | np.ndarray) -> list[Point]:
        """Materialize point objects for ``rows`` (result boundary)."""
        point_at = self.point_at
        return [point_at(int(r)) for r in rows]

    def iter_points(self) -> Iterator[Point]:
        """Iterate over every row as a (cached) :class:`Point`."""
        for row in range(len(self.xs)):
            yield self.point_at(row)

    # ------------------------------------------------------------------
    # Snapshot "mutations" (each returns a new store)
    # ------------------------------------------------------------------
    def take(self, rows: np.ndarray | Sequence[int]) -> "PointStore":
        """A new store holding only ``rows``, in the given order."""
        idx = np.asarray(rows, dtype=np.int64)
        payloads: dict[int, Any] = {}
        if self.payloads:
            for new_row, old_row in enumerate(idx.tolist()):
                if old_row in self.payloads:
                    payloads[new_row] = self.payloads[old_row]
        child = PointStore(
            self.xs[idx], self.ys[idx], self.pids[idx], payloads, validate=False
        )
        if len(self._points) == len(self.xs):
            # Share already-materialized point objects with the child store.
            child._points = [self._points[old] for old in idx.tolist()]
        return child

    def extended(self, other: "PointStore") -> "PointStore":
        """A new store with ``other``'s rows appended after this store's."""
        payloads = dict(self.payloads)
        if other.payloads:
            offset = len(self.xs)
            for row, payload in other.payloads.items():
                payloads[offset + row] = payload
        child = PointStore(
            np.concatenate((self.xs, other.xs)),
            np.concatenate((self.ys, other.ys)),
            np.concatenate((self.pids, other.pids)),
            payloads,
            validate=False,
        )
        if self._points or other._points:
            mine = self._points if self._points else [None] * len(self.xs)
            theirs = other._points if other._points else [None] * len(other.xs)
            child._points = list(mine) + list(theirs)
        return child

    def moved(self, rows: np.ndarray | Sequence[int], xs: np.ndarray, ys: np.ndarray) -> "PointStore":
        """A new store with ``rows`` relocated to the given coordinates.

        The batch-update path for in-place-style moves: only the *dirty*
        columns are copied — ``xs``/``ys`` get a copy-on-write with the moved
        rows overwritten, while the untouched ``pids`` column (and with it
        the cached pid-order table) and the payload side-table are shared
        with the parent store.  Row numbering is unchanged, so blocks and
        neighborhoods that reference rows by index stay aligned; materialized
        point objects are invalidated only for the moved rows.
        """
        idx = np.asarray(rows, dtype=np.int64)
        new_xs = self.xs.copy()
        new_ys = self.ys.copy()
        new_xs[idx] = np.asarray(xs, dtype=np.float64)
        new_ys[idx] = np.asarray(ys, dtype=np.float64)
        if len(idx) and not (
            np.isfinite(new_xs[idx]).all() and np.isfinite(new_ys[idx]).all()
        ):
            raise GeometryError("point coordinates must be finite")
        child = PointStore(new_xs, new_ys, self.pids, self.payloads, validate=False)
        child._pid_order = self._pid_order  # pid column unchanged
        if len(self._points) == len(self.xs):
            cache = list(self._points)
            for row in idx.tolist():
                cache[row] = None  # stale coordinates: rematerialize on demand
            child._points = cache
        return child

    def without_rows(self, rows: np.ndarray | Sequence[int]) -> "PointStore":
        """A new store with ``rows`` removed (remaining order preserved)."""
        mask = np.ones(len(self.xs), dtype=bool)
        mask[np.asarray(rows, dtype=np.int64)] = False
        return self.take(np.nonzero(mask)[0])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PointStore(rows={len(self.xs)}, payloads={len(self.payloads)})"
