"""The buffered ``UpdateStream`` client handle.

An update stream is how a producer feeds one relation: it buffers
``insert`` / ``remove`` / ``move`` operations and turns them into one
columnar :class:`~repro.storage.update.UpdateBatch` per :meth:`flush`, which
is pushed through the owning :class:`~repro.stream.engine.StreamEngine` as a
single mutation.  Batching is what keeps maintenance cheap: one version
bump, one localized index repair and one guard evaluation per flush instead
of per operation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.geometry.point import Point
from repro.storage.update import UpdateBatch
from repro.stream.delta import Delta

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.stream.engine import StreamEngine

__all__ = ["UpdateStream"]


class UpdateStream:
    """A buffered stream of updates bound to one relation.

    Created by :meth:`repro.stream.StreamEngine.stream`; operations
    accumulate locally until :meth:`flush` pushes them as one batch.  All
    buffered operations refer to the relation state at flush time (see
    :class:`~repro.storage.update.UpdateBatch` for the batch semantics).
    """

    def __init__(self, engine: "StreamEngine", relation: str) -> None:
        #: The stream engine this stream pushes into.
        self.engine = engine
        #: The relation every buffered operation targets.
        self.relation = relation
        self._inserts: list[Point | tuple[float, float]] = []
        self._removes: list[int] = []
        self._moves: list[tuple[int, float, float]] = []

    # ------------------------------------------------------------------
    # Buffering
    # ------------------------------------------------------------------
    def insert(self, *points: Point | tuple[float, float]) -> "UpdateStream":
        """Buffer point insertions (chainable)."""
        self._inserts.extend(points)
        return self

    def remove(self, *pids: int) -> "UpdateStream":
        """Buffer removals by pid (chainable)."""
        self._removes.extend(int(pid) for pid in pids)
        return self

    def move(self, pid: int, x: float, y: float) -> "UpdateStream":
        """Buffer one relocation (chainable)."""
        self._moves.append((int(pid), float(x), float(y)))
        return self

    def move_many(self, moves: Iterable[tuple[int, float, float]]) -> "UpdateStream":
        """Buffer many relocations at once (chainable)."""
        self._moves.extend((int(p), float(x), float(y)) for p, x, y in moves)
        return self

    @property
    def pending(self) -> int:
        """Number of buffered operations awaiting the next flush."""
        return len(self._inserts) + len(self._removes) + len(self._moves)

    def clear(self) -> None:
        """Drop every buffered operation without pushing."""
        self._inserts.clear()
        self._removes.clear()
        self._moves.clear()

    # ------------------------------------------------------------------
    # Flushing
    # ------------------------------------------------------------------
    def batch(self) -> UpdateBatch:
        """The buffered operations as a columnar batch (buffer unchanged)."""
        return UpdateBatch(
            inserts=self._inserts, removes=self._removes, moves=self._moves
        )

    def flush(self) -> dict[str, Delta]:
        """Push the buffered operations as one batch; returns the deltas.

        The buffer is cleared whether or not any subscription was affected.
        An empty buffer is a no-op returning no deltas.
        """
        if not self.pending:
            return {}
        batch = self.batch()
        self.clear()
        return self.engine.push(self.relation, batch)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UpdateStream(relation={self.relation!r}, pending={self.pending})"
