"""Per-query-class incremental maintenance of standing results.

Each subscription owns a *maintenance state*: its current result in columnar
form plus the **guard region** that decides which updates can possibly affect
it.  The guard invariants (proved in ``docs/stream.md``):

* **kNN-select** — guard is the closed ball around the focal point with
  radius the k-th neighbor's distance (``inf`` while the relation holds
  fewer than ``k`` points).  An insert (or a move-in) strictly outside the
  ball cannot displace a member; an insert inside is merged into the
  maintained ``(distance, pid)`` top-k locally.  Removing or moving a
  *member* violates the guard — the evicted slot must be refilled from data
  the state never kept — so the state falls back to one re-execution.
* **range-select** — guard is the query rectangle itself; membership is a
  pure per-point containment test, so every update kind repairs locally and
  the state never falls back.
* **kNN-join** — one guard ball per outer row (radius: that row's k-th
  neighbor distance).  Inner inserts merge into exactly the rows whose ball
  they hit (one vectorized candidate × row distance kernel); removing or
  moving a row's member recomputes just that row against the updated index;
  outer-side updates add, drop or recompute only their own rows.
* **two-predicate classes** — maintained by *guard-filtered re-execution*:
  each select/range predicate contributes the guard above, a join predicate
  marks both its relations always-relevant.  A batch that triggers no guard
  is provably answer-preserving and is skipped without touching the engine;
  otherwise the query re-executes through the engine's plan cache and the
  delta is the row diff.
* **algebra trees** — guards are derived *compositionally* from the tree's
  structure (:func:`repro.algebra.decompose.scan_guards`): window filters on
  a scan chain intersect, kNN-filtered and join-inner scans become
  always-relevant.  Local-decomposable aggregate shapes (filter chain →
  grid/region aggregate → optional top-k) skip re-execution entirely:
  :class:`AlgebraAggregateState` maintains the per-cell/per-region counts
  through a membership map, repairing only the groups the batch touched.

States receive the *effective* update
(:class:`~repro.storage.update.AppliedUpdate`) **after** the engine applied
it, so any fallback re-execution sees the post-batch data.  All relevance
kernels are vectorized over the update batch's columns.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro import kernels
from repro.algebra.compile import rewritten_tree
from repro.algebra.decompose import (
    ScanGuard,
    chain_window,
    local_decomposition,
    scan_guards,
)
from repro.algebra.evaluate import _attr_match, cell_of, grid_rows, topk_rows
from repro.algebra.tree import AlgebraNode, GridAggregate, RangeFilter, Scan
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.locality.neighborhood import Neighborhood
from repro.query.predicates import KnnJoin, KnnSelect, RangeSelect
from repro.query.query import Query
from repro.query.results import QueryResult
from repro.storage.pointstore import PointStore, aligned_rows
from repro.storage.update import AppliedUpdate
from repro.stream.delta import result_rows

__all__ = [
    "MaintenanceContext",
    "KnnSelectState",
    "RangeSelectState",
    "KnnJoinState",
    "AlgebraAggregateState",
    "AlgebraRefreshState",
    "RefreshState",
    "make_state",
    "SKIPPED",
    "REPAIRED",
    "REFRESHED",
]

#: Outcome of applying one update batch to one subscription state.
SKIPPED = "skipped"  #: guard not triggered; result provably unchanged
REPAIRED = "repaired"  #: result repaired locally from the batch's columns
REFRESHED = "refreshed"  #: guard violated; fell back to re-execution

#: Row chunk bound for the join candidate kernel ((rows x candidates) matrix).
_JOIN_CHUNK = 2048


def _any_touched(touched_sorted: np.ndarray, pids: np.ndarray) -> bool:
    """Whether any of ``pids`` appears in the (sorted) touched column."""
    if not len(touched_sorted) or not len(pids):
        return False
    pos = np.minimum(np.searchsorted(touched_sorted, pids), len(touched_sorted) - 1)
    return bool((touched_sorted[pos] == pids).any())


class MaintenanceContext(Protocol):
    """What a maintenance state may ask of its engine.

    Implemented by :class:`~repro.stream.engine.StreamEngine` for both the
    unsharded and the sharded engine, so the states are partition-agnostic:
    ``knn`` answers with exact (cross-shard, if applicable) neighborhoods and
    ``run`` goes through the engine's plan cache.
    """

    def knn(self, relation: str, focal: Point, k: int) -> Neighborhood:
        """Exact k-neighborhood of ``focal`` over the named relation."""
        ...

    def knn_batch(self, relation: str, coords: np.ndarray, k: int) -> list[Neighborhood]:
        """Exact k-neighborhoods of many query coordinates, in input order."""
        ...

    def store(self, relation: str) -> PointStore:
        """The named relation's current columnar store."""
        ...

    def bounds(self, relation: str) -> Rect | None:
        """The relation's extent (the grid-cell decomposition frame)."""
        ...

    def run(self, query: Query) -> QueryResult:
        """Execute a query from scratch through the engine."""
        ...


# ----------------------------------------------------------------------
# kNN-select
# ----------------------------------------------------------------------
class KnnSelectState:
    """Maintained kNN-select: a ``(distance, pid)`` top-k heap plus its guard."""

    __slots__ = ("predicate", "_dists", "_pids", "_rows")

    def __init__(self, predicate: KnnSelect, ctx: MaintenanceContext) -> None:
        self.predicate = predicate
        self._dists = np.empty(0, dtype=np.float64)
        self._pids = np.empty(0, dtype=np.int64)
        self._rows: tuple | None = None
        self.refresh(ctx)

    @property
    def guard_radius(self) -> float:
        """The kNN safe radius: distance to the k-th neighbor (``inf`` if not full).

        No point at strictly greater distance can enter the result; points at
        exactly this distance may enter through the pid tie-break and are
        therefore treated as relevant (the guard ball is closed).
        """
        if len(self._dists) >= self.predicate.k:
            return float(self._dists[-1])
        return float("inf")

    def rows(self) -> tuple:
        """Canonical ``(distance, pid)`` rows in ascending neighborhood order."""
        if self._rows is None:
            self._rows = tuple(zip(self._dists.tolist(), self._pids.tolist()))
        return self._rows

    def refresh(self, ctx: MaintenanceContext) -> None:
        """Recompute the result from scratch (subscribe-time and fallback path)."""
        nbr = ctx.knn(self.predicate.relation, self.predicate.focal, self.predicate.k)
        self._dists = np.ascontiguousarray(nbr.distance_array, dtype=np.float64)
        self._pids = np.ascontiguousarray(nbr.pid_array, dtype=np.int64)
        self._rows = None

    def apply(self, applied: AppliedUpdate, relation: str, ctx: MaintenanceContext) -> str:
        """Maintain the top-k through one update batch on ``relation``."""
        if _any_touched(applied.touched_sorted, self._pids):
            # A current member was removed or relocated: the evicted slot must
            # be refilled from data outside the maintained state.
            self.refresh(ctx)
            return REFRESHED
        cand_xs, cand_ys, cand_pids = applied.candidate_columns()
        if not len(cand_pids):
            return SKIPPED
        focal = self.predicate.focal
        radius = self.guard_radius
        dx = cand_xs - focal.x
        dy = cand_ys - focal.y
        # Squared-distance prefilter (widened a hair for boundary ties);
        # exact hypot runs only on the prefilter's survivors, and the exact
        # guard is re-applied so the merged set matches the closed ball.
        if np.isinf(radius):
            near = np.arange(len(cand_pids))
        else:
            near = np.nonzero(kernels.ball_mask(dx, dy, radius * radius * (1.0 + 1e-12)))[0]
            if not len(near):
                return SKIPPED
        dists = np.hypot(dx[near], dy[near])
        mask = dists <= radius
        if not mask.any():
            return SKIPPED
        merged_d = np.concatenate((self._dists, dists[mask]))
        merged_p = np.concatenate((self._pids, cand_pids[near[mask]]))
        order = kernels.merge_topk(merged_d, merged_p, self.predicate.k)
        self._dists = merged_d[order]
        self._pids = merged_p[order]
        self._rows = None
        return REPAIRED


# ----------------------------------------------------------------------
# range-select
# ----------------------------------------------------------------------
def _in_window(window: Rect, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
    """Vectorized closed-rectangle containment over coordinate columns."""
    return kernels.window_mask(xs, ys, window.xmin, window.ymin, window.xmax, window.ymax)


class RangeSelectState:
    """Maintained range-select: the pid set inside the window.

    The guard region *is* the query rectangle, and membership is a pure
    per-point containment test — so every update kind (insert, remove,
    move-in, move-out) repairs the set locally and this state never falls
    back to re-execution.
    """

    __slots__ = ("predicate", "_pids", "_rows", "_delta")

    def __init__(self, predicate: RangeSelect, ctx: MaintenanceContext) -> None:
        self.predicate = predicate
        self._pids = np.empty(0, dtype=np.int64)
        self._rows: tuple | None = None
        self._delta: tuple[tuple, tuple] | None = None
        self.refresh(ctx)

    def take_delta(self) -> tuple[tuple, tuple] | None:
        """``(added, removed)`` of the last :meth:`apply`, computed in-kernel.

        Membership maintenance knows exactly which pids entered and left, so
        the subscription avoids the generic before/after row diff.  Returns
        ``None`` after a refresh (the caller diffs then).  One-shot: the
        recorded delta is cleared on read.
        """
        delta = self._delta
        self._delta = None
        return delta

    def rows(self) -> tuple:
        """Canonical rows: member pids, ascending."""
        if self._rows is None:
            self._rows = tuple(self._pids.tolist())
        return self._rows

    def refresh(self, ctx: MaintenanceContext) -> None:
        """Rescan the relation's store (subscribe-time and reconcile path)."""
        store = ctx.store(self.predicate.relation)
        mask = _in_window(self.predicate.window, store.xs, store.ys)
        self._pids = np.sort(store.pids[mask])
        self._rows = None
        self._delta = None  # caller must diff after a refresh

    def apply(self, applied: AppliedUpdate, relation: str, ctx: MaintenanceContext) -> str:
        """Maintain the membership set through one update batch."""
        window = self.predicate.window
        self._delta = ((), ())
        # Fast skip: nothing placed in or taken from the window.
        if not _any_touched(applied.touched_sorted, self._pids):
            cand_xs, cand_ys, _cand_pids = applied.candidate_columns()
            if not _in_window(window, cand_xs, cand_ys).any():
                return SKIPPED
        moved_in = _in_window(window, applied.moved_new_xs, applied.moved_new_ys)
        drop = np.concatenate((applied.removed_pids, applied.moved_pids[~moved_in]))
        ins_in = _in_window(window, applied.inserted_xs, applied.inserted_ys)
        add = np.concatenate((applied.inserted_pids[ins_in], applied.moved_pids[moved_in]))
        # The member column stays sorted, so drops and adds are one
        # searchsorted membership pass each plus one insertion — no set
        # machinery over the (much larger) member population — and the
        # kernel knows exactly which pids entered and left (take_delta).
        pids = self._pids
        left = np.empty(0, dtype=np.int64)
        entered = np.empty(0, dtype=np.int64)
        if len(drop) and len(pids):
            drop_sorted = np.sort(drop)
            pos = np.minimum(np.searchsorted(drop_sorted, pids), len(drop_sorted) - 1)
            hit = drop_sorted[pos] == pids
            if hit.any():
                left = pids[hit]
                pids = pids[~hit]
        if len(add):
            fresh = np.sort(add)  # inserted and moved pid sets are disjoint
            if len(pids):
                pos = np.minimum(np.searchsorted(pids, fresh), len(pids) - 1)
                fresh = fresh[pids[pos] != fresh]
            if len(fresh):
                pids = np.insert(pids, np.searchsorted(pids, fresh), fresh)
                entered = fresh
        if not len(left) and not len(entered):
            return SKIPPED
        self._pids = pids
        self._rows = None
        self._delta = (tuple(entered.tolist()), tuple(left.tolist()))
        return REPAIRED


# ----------------------------------------------------------------------
# kNN-join
# ----------------------------------------------------------------------
class KnnJoinState:
    """Maintained kNN-join: per-outer-row neighbor matrices plus row guards.

    The result is held as three aligned columnar tables — outer pids, outer
    coordinates and an ``(n, k)`` neighbor matrix pair (distances padded with
    ``inf``, pids padded with ``-1``) sorted ascending ``(distance, pid)``
    within each row.  Each row's guard ball has radius its k-th neighbor
    distance; the inner-insert kernel intersects the update batch against all
    row guards in one vectorized pass.
    """

    __slots__ = ("predicate", "_opids", "_oxs", "_oys", "_nd", "_npid", "_rows")

    def __init__(self, predicate: KnnJoin, ctx: MaintenanceContext) -> None:
        self.predicate = predicate
        self._opids = np.empty(0, dtype=np.int64)
        self._oxs = np.empty(0, dtype=np.float64)
        self._oys = np.empty(0, dtype=np.float64)
        self._nd = np.empty((0, predicate.k), dtype=np.float64)
        self._npid = np.empty((0, predicate.k), dtype=np.int64)
        self._rows: tuple | None = None
        self.refresh(ctx)

    def rows(self) -> tuple:
        """Canonical rows: ``(outer pid, inner pid)`` pairs, ascending."""
        if self._rows is None:
            valid_rows, valid_cols = np.nonzero(self._npid >= 0)
            self._rows = tuple(
                sorted(
                    zip(
                        self._opids[valid_rows].tolist(),
                        self._npid[valid_rows, valid_cols].tolist(),
                    )
                )
            )
        return self._rows

    def refresh(self, ctx: MaintenanceContext) -> None:
        """Rebuild every row from the current stores (subscribe/reconcile path)."""
        store = ctx.store(self.predicate.outer)
        self._opids = store.pids.copy()
        self._oxs = store.xs.copy()
        self._oys = store.ys.copy()
        n, k = len(store), self.predicate.k
        self._nd = np.full((n, k), np.inf, dtype=np.float64)
        self._npid = np.full((n, k), -1, dtype=np.int64)
        coords = np.column_stack((self._oxs, self._oys))
        for row, nbr in enumerate(ctx.knn_batch(self.predicate.inner, coords, k)):
            self._write_row(row, nbr)
        self._rows = None

    def _write_row(self, row: int, nbr: Neighborhood) -> None:
        k = self.predicate.k
        m = len(nbr)
        self._nd[row, :m] = nbr.distance_array
        self._nd[row, m:] = np.inf
        self._npid[row, :m] = nbr.pid_array
        self._npid[row, m:] = -1

    def _row_radii(self) -> np.ndarray:
        """Per-row guard radii: the k-th neighbor distance, ``inf`` if not full."""
        radii = self._nd[:, -1].copy()
        radii[self._npid[:, -1] < 0] = np.inf
        return radii

    def apply(self, applied: AppliedUpdate, relation: str, ctx: MaintenanceContext) -> str:
        """Maintain the join rows through one update batch on ``relation``."""
        if relation == self.predicate.outer:
            outcome = self._apply_outer(applied, ctx)
        else:
            outcome = self._apply_inner(applied, ctx)
        if outcome != SKIPPED:
            self._rows = None
        return outcome

    def _apply_outer(self, applied: AppliedUpdate, ctx: MaintenanceContext) -> str:
        changed = False
        if len(applied.removed_pids) and len(self._opids):
            keep = ~np.isin(self._opids, applied.removed_pids)
            if not keep.all():
                self._opids = self._opids[keep]
                self._oxs = self._oxs[keep]
                self._oys = self._oys[keep]
                self._nd = self._nd[keep]
                self._npid = self._npid[keep]
                changed = True
        if len(applied.moved_pids):
            rows = aligned_rows(self._opids, applied.moved_pids)
            hit = rows >= 0
            if hit.any():
                rows = rows[hit]
                self._oxs[rows] = applied.moved_new_xs[hit]
                self._oys[rows] = applied.moved_new_ys[hit]
                coords = np.column_stack((self._oxs[rows], self._oys[rows]))
                for row, nbr in zip(
                    rows.tolist(),
                    ctx.knn_batch(self.predicate.inner, coords, self.predicate.k),
                ):
                    self._write_row(row, nbr)
                changed = True
        if len(applied.inserted_pids):
            n_new = len(applied.inserted_pids)
            self._opids = np.concatenate((self._opids, applied.inserted_pids))
            self._oxs = np.concatenate((self._oxs, applied.inserted_xs))
            self._oys = np.concatenate((self._oys, applied.inserted_ys))
            k = self.predicate.k
            self._nd = np.vstack((self._nd, np.full((n_new, k), np.inf)))
            self._npid = np.vstack((self._npid, np.full((n_new, k), -1, dtype=np.int64)))
            coords = np.column_stack((applied.inserted_xs, applied.inserted_ys))
            first = len(self._opids) - n_new
            for offset, nbr in enumerate(
                ctx.knn_batch(self.predicate.inner, coords, k)
            ):
                self._write_row(first + offset, nbr)
            changed = True
        return REPAIRED if changed else SKIPPED

    def _apply_inner(self, applied: AppliedUpdate, ctx: MaintenanceContext) -> str:
        k = self.predicate.k
        touched = applied.touched_pids()
        affected = np.zeros(len(self._opids), dtype=bool)
        if len(touched) and self._npid.size:
            # Rows holding a removed or relocated member: the guard is
            # violated for exactly these rows — recompute them against the
            # already-updated inner index.
            affected = np.isin(self._npid, touched).any(axis=1)
            rows = np.nonzero(affected)[0]
            if len(rows):
                coords = np.column_stack((self._oxs[rows], self._oys[rows]))
                for row, nbr in zip(
                    rows.tolist(), ctx.knn_batch(self.predicate.inner, coords, k)
                ):
                    self._write_row(row, nbr)
        cand_xs, cand_ys, cand_pids = applied.candidate_columns()
        merged_any = False
        if len(cand_pids) and len(self._opids):
            radii = self._row_radii()
            for row, col in zip(*self._guard_hits(cand_xs, cand_ys, radii)):
                if affected[row]:
                    continue  # already ranks against the full post-batch relation
                cd = float(
                    np.hypot(self._oxs[row] - cand_xs[col], self._oys[row] - cand_ys[col])
                )
                if cd > radii[row]:
                    continue  # the squared prefilter is a conservative superset
                merged_d = np.concatenate((self._nd[row], [cd]))
                merged_p = np.concatenate((self._npid[row], [cand_pids[col]]))
                # Padding sorts last (inf distance) and is truncated or
                # re-appended by the fixed-width write-back.
                order = kernels.merge_topk(merged_d, merged_p, k)
                self._nd[row] = merged_d[order]
                self._npid[row] = merged_p[order]
                merged_any = True
        if affected.any() or merged_any:
            return REPAIRED
        return SKIPPED

    def _guard_hits(
        self, cand_xs: np.ndarray, cand_ys: np.ndarray, radii: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(row, candidate)`` index pairs whose guard ball the candidate may hit.

        The relevance kernel.  When every row guard is finite, candidate
        pairing is pruned by an x-interval pass over the sorted outer rows
        (each candidate only meets rows with ``|ox - cx| <= max radius``),
        which keeps the pair set near-linear however large the outer relation
        is; any infinite radius (a not-yet-full row) falls back to the dense
        row x candidate matrix, chunked.  Squared distances with a hair of
        widening — the caller re-applies the exact guard per pair.
        """
        finite = np.isfinite(radii)
        if finite.all() and len(self._oxs) > 64:
            rmax = float(radii.max()) if len(radii) else 0.0
            order = np.argsort(self._oxs, kind="stable")
            sx = self._oxs[order]
            lo = np.searchsorted(sx, cand_xs - rmax, side="left")
            hi = np.searchsorted(sx, cand_xs + rmax, side="right")
            counts = hi - lo
            total = int(counts.sum())
            if total == 0:
                return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
            cols = np.repeat(np.arange(len(cand_xs), dtype=np.int64), counts)
            starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
            pos = np.arange(total, dtype=np.int64) - np.repeat(starts, counts) + np.repeat(lo, counts)
            rows = order[pos]
            dx = self._oxs[rows] - cand_xs[cols]
            dy = self._oys[rows] - cand_ys[cols]
            bound2 = np.square(radii[rows]) * (1.0 + 1e-12)
            hit = kernels.ball_mask(dx, dy, bound2)
            return rows[hit], cols[hit]
        out_rows: list[np.ndarray] = []
        out_cols: list[np.ndarray] = []
        bound2 = np.square(radii) * (1.0 + 1e-12)
        bound2[~finite] = np.inf
        for start in range(0, len(self._oxs), _JOIN_CHUNK):
            stop = min(start + _JOIN_CHUNK, len(self._oxs))
            dx = self._oxs[start:stop, None] - cand_xs[None, :]
            dy = self._oys[start:stop, None] - cand_ys[None, :]
            r, c = np.nonzero(kernels.ball_mask(dx, dy, bound2[start:stop, None]))
            out_rows.append(r + start)
            out_cols.append(c)
        return np.concatenate(out_rows), np.concatenate(out_cols)


# ----------------------------------------------------------------------
# Algebra trees
# ----------------------------------------------------------------------
class AlgebraAggregateState:
    """Incrementally maintained spatial aggregate (per-cell dirty sets).

    Applies to local-decomposable aggregate trees — a point-filter chain
    over one scan under a :class:`~repro.algebra.tree.GridAggregate` or
    :class:`~repro.algebra.tree.RegionAggregate`, optionally topped by a
    :class:`~repro.algebra.tree.TopK` (the same shape the sharded
    coordinator fans out).  The state keeps a **membership map** (member pid
    → its group keys) plus the per-group counts; an update batch repairs the
    counts locally:

    * a removed member's groups come from the membership map — no position
      or payload needed;
    * inserted and moved points re-test the filter chain against the
      post-batch store (payloads live in the store's side-table, not in the
      update's columns) and increment exactly the groups they land in;
    * a batch touching no member and placing nothing inside the chain's
      window intersection is skipped outright.

    The derived rows always equal a from-scratch evaluation's: counts are
    additive over per-point contributions, so add/drop in any order
    converges to the rescan's totals.
    """

    __slots__ = (
        "query",
        "_chain",
        "_agg",
        "_topk",
        "_relation",
        "_bounds",
        "_window",
        "_groups",
        "_counts",
        "_rows",
    )

    def __init__(self, query: Query, ctx: MaintenanceContext) -> None:
        self.query = query
        assert query.tree is not None
        optimized, _trail = rewritten_tree(query.tree)
        local = local_decomposition(optimized)
        assert local is not None and local[1] is not None
        self._chain, self._agg, self._topk, self._relation = local
        self._bounds = ctx.bounds(self._relation)
        self._window = chain_window(self._chain)
        self._groups: dict[int, tuple] = {}
        self._counts: dict = {}
        self._rows: tuple | None = None
        self.refresh(ctx)

    def rows(self) -> tuple:
        """Canonical rows: the aggregate's records, sorted (see delta docs)."""
        if self._rows is None:
            if isinstance(self._agg, GridAggregate):
                rows = grid_rows(self._counts, self._agg, self._bounds)
            else:
                rows = [(name, self._counts[name]) for name, _rect in self._agg.regions]
            if self._topk is not None:
                rows = topk_rows(rows, self._topk.limit)
            self._rows = tuple(sorted(rows))
        return self._rows

    def refresh(self, ctx: MaintenanceContext) -> None:
        """Rebuild membership and counts from the relation's store."""
        self._groups = {}
        if isinstance(self._agg, GridAggregate):
            self._counts = {}
        else:
            self._counts = {name: 0 for name, _rect in self._agg.regions}
        for point in ctx.store(self._relation).iter_points():
            self._add_point(point)
        self._rows = None

    # -- per-point membership -------------------------------------------
    def _accepts(self, point: Point) -> bool:
        """Evaluate the filter chain on one point (same semantics as eval)."""
        node = self._chain
        while not isinstance(node, Scan):
            if isinstance(node, RangeFilter):
                if not node.window.contains_point(point):
                    return False
            else:  # AttrFilter
                if not _attr_match(point, node.key, node.value):
                    return False
            node = node.child
        return True

    def _group_keys(self, point: Point) -> tuple:
        if isinstance(self._agg, GridAggregate):
            return (cell_of(point, self._bounds, self._agg.cells_per_side),)
        return tuple(
            name for name, rect in self._agg.regions if rect.contains_point(point)
        )

    def _add_point(self, point: Point) -> bool:
        if not self._accepts(point):
            return False
        keys = self._group_keys(point)
        if not keys:  # passes the chain but lands in no region
            return False
        self._groups[point.pid] = keys
        for key in keys:
            self._counts[key] = self._counts.get(key, 0) + 1
        return True

    def _drop_pid(self, pid: int) -> bool:
        keys = self._groups.pop(pid, None)
        if keys is None:
            return False
        grid = isinstance(self._agg, GridAggregate)
        for key in keys:
            remaining = self._counts[key] - 1
            if remaining == 0 and grid:
                del self._counts[key]  # grid rows list non-empty cells only
            else:
                self._counts[key] = remaining
        return True

    def apply(self, applied: AppliedUpdate, relation: str, ctx: MaintenanceContext) -> str:
        """Repair the counts through one update batch (never re-executes)."""
        touched = applied.touched_pids()
        member_touched = any(int(pid) in self._groups for pid in touched)
        if not member_touched and self._window is not None:
            cand_xs, cand_ys, _cand_pids = applied.candidate_columns()
            if not _in_window(self._window, cand_xs, cand_ys).any():
                return SKIPPED
        changed = False
        for pid in applied.removed_pids.tolist():
            changed |= self._drop_pid(pid)
        store = ctx.store(self._relation)
        if len(applied.moved_pids):
            rows = aligned_rows(store.pids, applied.moved_pids)
            for pid, row in zip(applied.moved_pids.tolist(), rows.tolist()):
                changed |= self._drop_pid(pid)
                if row >= 0:
                    changed |= self._add_point(store.point_at(row))
        if len(applied.inserted_pids):
            rows = aligned_rows(store.pids, applied.inserted_pids)
            for row in rows.tolist():
                if row >= 0:
                    changed |= self._add_point(store.point_at(row))
        if not changed:
            return SKIPPED
        self._rows = None
        return REPAIRED


class AlgebraRefreshState:
    """General algebra trees: compositionally-guarded re-execution.

    The fallback maintainer for trees the aggregate state cannot repair
    (kNN filters, joins, bare point chains).  Guards are derived *from the
    tree's structure* by :func:`~repro.algebra.decompose.scan_guards` — the
    intersection of each scan chain's filter windows, with kNN-filtered and
    join-inner scans marked always-relevant — so an update batch that
    triggers no scan guard of the updated relation provably preserves the
    answer and is skipped; anything else re-executes through the engine's
    plan cache and the delta is the row diff.
    """

    __slots__ = ("query", "_guards", "_rows")

    def __init__(self, query: Query, ctx: MaintenanceContext) -> None:
        self.query = query
        assert query.tree is not None
        optimized, _trail = rewritten_tree(query.tree)
        self._guards: dict[str, list[ScanGuard]] = {}
        for guard in scan_guards(optimized):
            self._guards.setdefault(guard.relation, []).append(guard)
        self._rows: tuple = ()
        self.refresh(ctx)

    def rows(self) -> tuple:
        """Canonical rows of the tree's result (see :func:`result_rows`)."""
        return self._rows

    def refresh(self, ctx: MaintenanceContext) -> None:
        """Re-execute the standing tree through the engine."""
        self._rows = result_rows(ctx.run(self.query))

    def apply(self, applied: AppliedUpdate, relation: str, ctx: MaintenanceContext) -> str:
        """Skip provably guard-clean batches; re-execute otherwise."""
        guards = self._guards.get(relation)
        if guards is not None and not any(
            _guard_relevant(guard, applied) for guard in guards
        ):
            return SKIPPED
        self._rows = result_rows(ctx.run(self.query))
        return REFRESHED


def _guard_relevant(guard: ScanGuard, applied: AppliedUpdate) -> bool:
    """Whether an update batch triggers one scan's compositional guard."""
    if guard.always:
        return True
    if guard.empty:
        return False  # disjoint windows: the chain can never produce rows
    window = guard.window
    if window is None:
        return True  # no spatial constraint on this scan
    return bool(
        _in_window(window, applied.inserted_xs, applied.inserted_ys).any()
        or _in_window(window, applied.removed_xs, applied.removed_ys).any()
        or _in_window(window, applied.moved_old_xs, applied.moved_old_ys).any()
        or _in_window(window, applied.moved_new_xs, applied.moved_new_ys).any()
    )


# ----------------------------------------------------------------------
# Two-predicate classes: guard-filtered re-execution
# ----------------------------------------------------------------------
class _SelectGuard:
    """Guard ball of one kNN-select predicate inside a composite query."""

    __slots__ = ("predicate", "_pids", "_radius")

    def __init__(self, predicate: KnnSelect) -> None:
        self.predicate = predicate
        self._pids = np.empty(0, dtype=np.int64)
        self._radius = float("inf")

    @property
    def relation(self) -> str:
        return self.predicate.relation

    def sync(self, ctx: MaintenanceContext) -> None:
        nbr = ctx.knn(self.predicate.relation, self.predicate.focal, self.predicate.k)
        self._pids = np.ascontiguousarray(nbr.pid_array, dtype=np.int64)
        self._radius = (
            float(nbr.farthest_distance) if len(nbr) >= self.predicate.k else float("inf")
        )

    def relevant(self, applied: AppliedUpdate) -> bool:
        if _any_touched(applied.touched_sorted, self._pids):
            return True
        cand_xs, cand_ys, cand_pids = applied.candidate_columns()
        if not len(cand_pids):
            return False
        focal = self.predicate.focal
        dists = np.hypot(cand_xs - focal.x, cand_ys - focal.y)
        return bool((dists <= self._radius).any())


class _RangeGuard:
    """Guard rectangle of one range-select predicate inside a composite query."""

    __slots__ = ("predicate",)

    def __init__(self, predicate: RangeSelect) -> None:
        self.predicate = predicate

    @property
    def relation(self) -> str:
        return self.predicate.relation

    def sync(self, ctx: MaintenanceContext) -> None:
        pass  # the rectangle is static; nothing to track

    def relevant(self, applied: AppliedUpdate) -> bool:
        window = self.predicate.window
        return bool(
            _in_window(window, applied.inserted_xs, applied.inserted_ys).any()
            or _in_window(window, applied.removed_xs, applied.removed_ys).any()
            or _in_window(window, applied.moved_old_xs, applied.moved_old_ys).any()
            or _in_window(window, applied.moved_new_xs, applied.moved_new_ys).any()
        )


class _JoinGuard:
    """Conservative guard of a join predicate: every update is relevant.

    A kNN-join's output can change with any mutation of either relation (an
    outer update changes the row set; an inner update can displace any row's
    neighbors), so composite queries containing a join re-execute whenever a
    joined relation is touched.
    """

    __slots__ = ("relation",)

    def __init__(self, relation: str) -> None:
        self.relation = relation

    def sync(self, ctx: MaintenanceContext) -> None:
        pass

    def relevant(self, applied: AppliedUpdate) -> bool:
        return True


class RefreshState:
    """Two-predicate subscriptions: guard-filtered engine re-execution.

    The composite query classes (two selects, select+join, range+join, two
    joins) combine constituent predicates whose *individual* guard regions
    are cheap to track even where the combined result is not incrementally
    repairable.  A batch that triggers none of the updated relation's guards
    provably leaves every constituent — and therefore the composite answer —
    unchanged and is skipped outright; a triggered guard re-executes the
    query through the engine's plan cache and emits the row diff.
    """

    __slots__ = ("query", "_guards", "_rows")

    def __init__(self, query: Query, ctx: MaintenanceContext) -> None:
        self.query = query
        self._guards: list[_SelectGuard | _RangeGuard | _JoinGuard] = []
        for predicate in query.predicates:
            if isinstance(predicate, KnnSelect):
                self._guards.append(_SelectGuard(predicate))
            elif isinstance(predicate, RangeSelect):
                self._guards.append(_RangeGuard(predicate))
            else:
                self._guards.append(_JoinGuard(predicate.outer))
                self._guards.append(_JoinGuard(predicate.inner))
        self._rows: tuple = ()
        self.refresh(ctx)

    def rows(self) -> tuple:
        """Canonical rows of the composite result (see :func:`result_rows`)."""
        return self._rows

    def refresh(self, ctx: MaintenanceContext) -> None:
        """Re-execute the query and re-sync every guard."""
        self._rows = result_rows(ctx.run(self.query))
        for guard in self._guards:
            guard.sync(ctx)

    def apply(self, applied: AppliedUpdate, relation: str, ctx: MaintenanceContext) -> str:
        """Skip provably unaffected batches; re-execute otherwise."""
        guards = [g for g in self._guards if g.relation == relation]
        if not any(guard.relevant(applied) for guard in guards):
            return SKIPPED
        self._rows = result_rows(ctx.run(self.query))
        for guard in guards:
            guard.sync(ctx)
        return REFRESHED


#: Union of the concrete maintenance-state types.
MaintenanceState = (
    KnnSelectState
    | RangeSelectState
    | KnnJoinState
    | AlgebraAggregateState
    | AlgebraRefreshState
    | RefreshState
)


def make_state(query_class: str, query: Query, ctx: MaintenanceContext) -> "MaintenanceState":
    """Build the maintenance state for a planned query's class.

    Algebra trees pick between the two algebra states structurally:
    local-decomposable aggregate shapes (whose grid frame is known) maintain
    per-cell counts incrementally; everything else falls back to
    compositionally-guarded re-execution.
    """
    if query_class == "algebra":
        assert query.tree is not None
        optimized, _trail = rewritten_tree(query.tree)
        local = local_decomposition(optimized)
        if local is not None and local[1] is not None:
            agg, relation = local[1], local[3]
            if not isinstance(agg, GridAggregate) or ctx.bounds(relation) is not None:
                return AlgebraAggregateState(query, ctx)
        return AlgebraRefreshState(query, ctx)
    if query_class == "single-select":
        return KnnSelectState(query.predicates[0], ctx)  # type: ignore[arg-type]
    if query_class == "single-range":
        return RangeSelectState(query.predicates[0], ctx)  # type: ignore[arg-type]
    if query_class == "single-join":
        return KnnJoinState(query.predicates[0], ctx)  # type: ignore[arg-type]
    return RefreshState(query, ctx)
