"""``repro.stream`` — continuous spatial queries over streaming updates.

The fourth architectural layer: standing queries with incremental result
maintenance.  Clients subscribe queries (kNN-select, range-select, kNN-join
and the paper's two-predicate classes) against relations registered on a
:class:`~repro.engine.session.SpatialEngine` or
:class:`~repro.shard.engine.ShardedEngine`, push columnar update batches
(``insert`` / ``remove`` / ``move``) through an
:class:`~repro.stream.client.UpdateStream`, and receive
:class:`~repro.stream.delta.Delta` objects — the rows that entered and left
each standing result — instead of re-executed result sets.

Quick start::

    from repro.stream import StreamEngine

    stream_engine = StreamEngine()
    stream_engine.register(name="vehicles", points=snapshot)
    sub = stream_engine.subscribe(Query(KnnSelect("vehicles", incident, k=3)))
    feed = stream_engine.stream("vehicles")
    feed.move(42, 13.5, 8.25).insert((2.0, 3.0)).remove(7)
    deltas = feed.flush()          # {sub.id: Delta(added=..., removed=...)}
    current = sub.result()         # maintained ((distance, pid), ...) rows

See ``docs/stream.md`` for the guard-region invariants and the delta
semantics.
"""

from repro.storage.update import AppliedUpdate, UpdateBatch
from repro.stream.client import UpdateStream
from repro.stream.delta import Delta, diff_rows, result_rows
from repro.stream.engine import StreamEngine
from repro.stream.maintain import (
    KnnJoinState,
    KnnSelectState,
    MaintenanceContext,
    RangeSelectState,
    RefreshState,
    make_state,
)
from repro.stream.subscription import Subscription

__all__ = [
    "StreamEngine",
    "Subscription",
    "UpdateStream",
    "UpdateBatch",
    "AppliedUpdate",
    "Delta",
    "diff_rows",
    "result_rows",
    "MaintenanceContext",
    "KnnSelectState",
    "RangeSelectState",
    "KnnJoinState",
    "RefreshState",
    "make_state",
]
