"""The ``StreamEngine``: continuous spatial queries over streaming updates.

The stream engine wraps a serving engine — the single-partition
:class:`~repro.engine.session.SpatialEngine` or the data-parallel
:class:`~repro.shard.engine.ShardedEngine` — and adds *standing* queries:

* :meth:`StreamEngine.subscribe` plans a query once, executes it once and
  keeps its result maintained from then on;
* :meth:`StreamEngine.push` applies one columnar
  :class:`~repro.storage.update.UpdateBatch` to a relation (one engine
  mutation: one version bump, one cache invalidation, localized index
  repair) and returns one :class:`~repro.stream.delta.Delta` per affected
  subscription — the rows that entered and left each standing result —
  instead of re-executing anything that provably did not change;
* :meth:`StreamEngine.stream` hands out a buffered
  :class:`~repro.stream.client.UpdateStream` for callers that accumulate
  operations and flush them as batches.

Maintenance is incremental (see :mod:`repro.stream.maintain`): guard regions
filter the update batch down to the subscriptions it can affect, affected
results repair locally from the batch's columns, and only guard *violations*
(a current kNN member removed or relocated) fall back to re-execution — which
then runs through the wrapped engine's plan cache.

Mutations made directly on the wrapped engine (bypassing ``push``) are caught
by the engine's mutation-listener hook: the affected subscriptions are marked
``stale`` and reconciled with one re-execution on their next push or
:meth:`StreamEngine.poll`.

The stream engine is thread-safe in the same sense as the engines it wraps:
pushes and subscriptions serialize on an internal lock while reads of
subscription results are snapshot tuples.
"""

from __future__ import annotations

import itertools
import threading
from time import perf_counter
from typing import Mapping

import numpy as np

from repro.engine.session import SpatialEngine
from repro.exceptions import InvalidParameterError, UnsupportedQueryError
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.locality.batch import get_knn_batch
from repro.locality.knn import get_knn
from repro.locality.neighborhood import Neighborhood
from repro.obs import Observability
from repro.obs.events import Event
from repro.obs.metrics import LATENCY_BUCKETS, SIZE_BUCKETS
from repro.obs.trace import Trace
from repro.query.query import Query
from repro.query.results import QueryResult
from repro.shard.batch import sharded_knn_batch
from repro.shard.engine import ShardedEngine
from repro.shard.executor import relation_bounds
from repro.shard.knn import sharded_knn
from repro.storage.pointstore import PointStore
from repro.storage.update import UpdateBatch
from repro.stream.client import UpdateStream
from repro.stream.delta import Delta
from repro.stream.maintain import make_state
from repro.stream.subscription import Subscription

__all__ = ["StreamEngine"]

_IDS = itertools.count(1)


class StreamEngine:
    """Standing queries with incremental result maintenance.

    Parameters
    ----------
    engine:
        The serving engine to wrap — a :class:`SpatialEngine` or a
        :class:`ShardedEngine`.  When omitted, a fresh :class:`SpatialEngine`
        is created with ``engine_kwargs``.
    engine_kwargs:
        Forwarded to the :class:`SpatialEngine` constructor when ``engine``
        is omitted.
    obs:
        The observability bundle.  Defaults to the *wrapped engine's*
        bundle, so stream-maintenance counters, the engine's query metrics
        and the spans of guard-violation re-executions land in one registry
        (and re-execution ``query`` spans nest under the push's
        ``stream-maintain`` root).
    """

    def __init__(
        self,
        engine: SpatialEngine | ShardedEngine | None = None,
        obs: Observability | None = None,
        **engine_kwargs: object,
    ) -> None:
        if engine is None:
            # A supplied bundle is forwarded so the created engine and this
            # stream layer share one registry/tracer (as when wrapping).
            if obs is not None:
                engine_kwargs.setdefault("obs", obs)
            engine = SpatialEngine(**engine_kwargs)  # type: ignore[arg-type]
        elif engine_kwargs:
            raise InvalidParameterError(
                "engine_kwargs are only valid when no engine is supplied"
            )
        #: The wrapped serving engine (exposed for direct queries and tests).
        self.engine = engine
        #: The observability bundle (shared with the wrapped engine by default).
        self.obs = obs if obs is not None else engine.obs
        self._sharded = isinstance(engine, ShardedEngine)
        self._subs: dict[str, Subscription] = {}
        self._by_relation: dict[str, set[str]] = {}
        self._lock = threading.RLock()
        #: ``(thread id, relation)`` of a push currently applying its batch —
        #: used to tell our own mutation notification apart from a direct
        #: engine mutation racing in from another thread.
        self._applying: tuple[int, str] | None = None
        self._closed = False
        #: True while subscribe() builds a state (whose constructor runs the
        #: query once) — suppresses the refeed counter for that first run.
        self._subscribing = False
        registry = self.obs.registry
        self._batches = registry.counter("stream_batches_total")
        self._updates = registry.counter("stream_updates_total")
        #: Full re-executions routed through the wrapped engine (guard
        #: violations and stale-subscription reconciles; a subscription's
        #: *initial* execution is not counted).  Every one of them feeds the
        #: engine's planner-calibration store, so a standing query that
        #: keeps violating its guard converges to the strategy whose
        #: observed cost is lowest — see ``docs/planner.md``.
        self._refeeds = registry.counter("stream_refeeds_total")
        self._guard_violations = registry.counter("stream_guard_violations_total")
        self._push_latency = registry.histogram(
            "stream_push_latency_seconds", LATENCY_BUCKETS
        )
        self._delta_rows = registry.histogram("stream_delta_rows", SIZE_BUCKETS)
        registry.gauge("stream_subscriptions", fn=lambda: len(self._subs))
        registry.gauge(
            "stream_stale_subscriptions",
            fn=lambda: sum(1 for s in self._subs.values() if s.stale),
        )
        engine.add_mutation_listener(self._on_engine_mutation)

    @property
    def batches_pushed(self) -> int:
        """Update batches pushed (view over ``stream_batches_total``)."""
        return int(self._batches.value)

    @property
    def updates_pushed(self) -> int:
        """Individual operations pushed — inserts + removes + moves (view
        over ``stream_updates_total``)."""
        return int(self._updates.value)

    @property
    def calibration_refeeds(self) -> int:
        """Full re-executions that re-fed the planner's calibration store
        (view over ``stream_refeeds_total``)."""
        return int(self._refeeds.value)

    @property
    def guard_violations(self) -> int:
        """Pushes that violated a subscription's guard region and forced a
        full re-execution (view over ``stream_guard_violations_total``)."""
        return int(self._guard_violations.value)

    # ------------------------------------------------------------------
    # Registration (delegated)
    # ------------------------------------------------------------------
    def register(self, *args: object, **kwargs: object):
        """Register a relation on the wrapped engine (same signature)."""
        return self.engine.register(*args, **kwargs)  # type: ignore[arg-type]

    def unregister(self, name: str) -> None:
        """Remove a relation; subscriptions still touching it are dropped."""
        with self._lock:
            for sub_id in sorted(self._by_relation.get(name, set())):
                self._drop(self._subs[sub_id])
            self.engine.unregister(name)

    # ------------------------------------------------------------------
    # Subscriptions
    # ------------------------------------------------------------------
    def subscribe(self, query: Query, sub_id: str | None = None) -> Subscription:
        """Install ``query`` as a standing query; returns its subscription.

        The query is planned and executed once (through the wrapped engine's
        caches); from then on every :meth:`push` to one of its relations
        maintains the result incrementally and reports the change as a
        :class:`Delta`.
        """
        with self._lock:
            self._require_open()
            with self.obs.tracer.span("subscribe") as span:
                plan = self.engine.plan(query)
                if sub_id is None:
                    sub_id = f"sub-{next(_IDS)}"
                if sub_id in self._subs:
                    raise InvalidParameterError(
                        f"subscription id {sub_id!r} already exists"
                    )
                span.annotate(
                    subscription=sub_id,
                    query_class=plan.query_class,
                    strategy=plan.strategy,
                )
                self._subscribing = True
                try:
                    state = make_state(plan.query_class, query, self)
                finally:
                    self._subscribing = False
                sub = Subscription(sub_id, query, plan.query_class, state)
                self._subs[sub_id] = sub
                for relation in sub.relations:
                    self._by_relation.setdefault(relation, set()).add(sub_id)
                return sub

    def unsubscribe(self, sub: Subscription | str) -> None:
        """Remove a standing query (by handle or id)."""
        with self._lock:
            sub_id = sub if isinstance(sub, str) else sub.id
            if sub_id not in self._subs:
                raise UnsupportedQueryError(f"no subscription with id {sub_id!r}")
            self._drop(self._subs[sub_id])

    def _drop(self, sub: Subscription) -> None:
        del self._subs[sub.id]
        for relation in sub.relations:
            members = self._by_relation.get(relation)
            if members is not None:
                members.discard(sub.id)
                if not members:
                    del self._by_relation[relation]

    def subscription(self, sub_id: str) -> Subscription:
        """The subscription with the given id."""
        try:
            return self._subs[sub_id]
        except KeyError:
            raise UnsupportedQueryError(f"no subscription with id {sub_id!r}") from None

    @property
    def subscriptions(self) -> Mapping[str, Subscription]:
        """Read-only view of the active subscriptions (id → subscription)."""
        return dict(self._subs)

    def __len__(self) -> int:
        return len(self._subs)

    # ------------------------------------------------------------------
    # The update stream
    # ------------------------------------------------------------------
    def stream(self, relation: str) -> UpdateStream:
        """A buffered update stream bound to one relation (flush → push)."""
        return UpdateStream(self, relation)

    def push(self, relation: str, batch: UpdateBatch) -> dict[str, Delta]:
        """Apply one update batch and maintain every affected subscription.

        The batch is applied to the wrapped engine as a single mutation
        (indexes repaired locally, caches invalidated once), then offered to
        each subscription touching ``relation``; the guard regions decide per
        subscription whether the batch is skipped, repaired locally or — on a
        guard violation — answered by one re-execution.  Returns one delta
        per touching subscription (empty deltas included, so consumers can
        observe the tick).
        """
        tracer, events = self.obs.tracer, self.obs.events
        with self._lock:
            self._require_open()
            started = perf_counter()
            with tracer.span("stream-maintain", relation=relation, size=batch.size) as root:
                self._applying = (threading.get_ident(), relation)
                try:
                    with tracer.span("apply-update"):
                        applied = self.engine.apply_update(relation, batch)
                finally:
                    self._applying = None
                deltas: dict[str, Delta] = {}
                maintained = 0
                for sub_id in sorted(self._by_relation.get(relation, set())):
                    sub = self._subs[sub_id]
                    was_stale = sub.stale
                    skips_before = sub.skips
                    with tracer.span("maintain", subscription=sub_id) as span:
                        delta = sub.apply(applied, relation, self)
                        # A refresh on a non-stale subscription means the
                        # batch violated its guard region: a current result
                        # member was removed or relocated, forcing the full
                        # re-execution (whose "query" span nests just above).
                        if delta.refreshed and not was_stale:
                            self._guard_violations.inc()
                            events.emit(
                                "guard_violation",
                                subscription=sub_id,
                                relation=relation,
                                rows_changed=len(delta),
                            )
                        span.annotate(
                            outcome=(
                                "refresh"
                                if delta.refreshed
                                else ("skip" if sub.skips > skips_before else "repair")
                            ),
                            rows_changed=len(delta),
                        )
                    self._delta_rows.observe(len(delta))
                    deltas[sub_id] = delta
                    maintained += 1
                root.annotate(subscriptions=maintained)
            self._batches.inc()
            self._updates.inc(batch.size)
            wall = perf_counter() - started
            self._push_latency.observe(wall)
            slow = self.obs.slow
            if slow.would_record(wall):
                # Slow pushes land in the shared slow-query log so operators
                # see maintenance stalls next to slow reads.
                slow.record(
                    signature=f"stream-push:{relation}",
                    query_class="stream-push",
                    strategy="maintain",
                    wall_seconds=wall,
                    explain=(
                        f"stream push relation={relation} size={batch.size} "
                        f"subscriptions={maintained}"
                    ),
                    trace_summary=(
                        Trace(root).summary_lines() if root.enabled else ()
                    ),
                )
            return deltas

    def poll(self, sub: Subscription | str) -> Delta:
        """Reconcile a (possibly stale) subscription without pushing updates.

        Returns an empty delta when the subscription is current; a stale
        subscription (out-of-band engine mutation) is refreshed and the
        resulting change returned.
        """
        with self._lock:
            handle = sub if isinstance(sub, Subscription) else self.subscription(sub)
            if not handle.stale:
                return Delta(subscription_id=handle.id)
            return handle.reconcile(self)

    def _on_engine_mutation(self, name: str) -> None:
        """Mutation-listener hook: mark out-of-band mutations' subscriptions stale.

        Our own push is recognized by ``(thread id, relation)`` — a direct
        engine mutation on the same relation racing in from *another* thread
        must still stale the subscriptions.  The engines fire listeners
        outside their locks, so taking the stream lock here cannot deadlock:
        a concurrent push merely serializes this notification after it.
        """
        if self._applying == (threading.get_ident(), name):
            return  # our own push; maintenance handles it
        with self._lock:
            for sub_id in self._by_relation.get(name, ()):
                sub = self._subs[sub_id]
                if not sub.stale:
                    self.obs.events.emit(
                        "subscription_stale", subscription=sub_id, relation=name
                    )
                sub.stale = True

    # ------------------------------------------------------------------
    # MaintenanceContext protocol (see repro.stream.maintain)
    # ------------------------------------------------------------------
    def knn(self, relation: str, focal: Point, k: int) -> Neighborhood:
        """Exact k-neighborhood over the named relation (cross-shard if sharded)."""
        if self._sharded:
            return sharded_knn(self.engine.sharded_dataset(relation), focal, k)  # type: ignore[union-attr]
        return get_knn(self.engine.dataset(relation).index, focal, k)  # type: ignore[union-attr]

    def knn_batch(self, relation: str, coords: np.ndarray, k: int) -> list[Neighborhood]:
        """Exact k-neighborhoods of many coordinates, in input order."""
        if not len(coords):
            return []
        if self._sharded:
            sharded = self.engine.sharded_dataset(relation)  # type: ignore[union-attr]
            return sharded_knn_batch(
                sharded, np.asarray(coords, dtype=np.float64), k
            )
        return get_knn_batch(
            self.engine.dataset(relation).index,  # type: ignore[union-attr]
            np.asarray(coords, dtype=np.float64),
            k,
        )

    def store(self, relation: str) -> PointStore:
        """The named relation's current (authoritative) columnar store."""
        if self._sharded:
            return self.engine.sharded_dataset(relation).base.store  # type: ignore[union-attr]
        return self.engine.dataset(relation).store  # type: ignore[union-attr]

    def bounds(self, relation: str) -> Rect | None:
        """The relation's extent — the same frame every evaluation layer uses
        for grid-cell decomposition (declared bounds, else index/shard union),
        so incrementally maintained aggregate cells line up with re-executed
        ones."""
        if self._sharded:
            return relation_bounds(self.engine.sharded_dataset(relation))  # type: ignore[union-attr]
        dataset = self.engine.dataset(relation)  # type: ignore[union-attr]
        if dataset.bounds is not None:
            return dataset.bounds
        try:
            return dataset.index.bounds
        except AttributeError:  # pragma: no cover - every index exposes bounds
            return None

    def run(self, query: Query) -> QueryResult:
        """Execute a query from scratch through the wrapped engine.

        This is the maintenance layer's fallback path (guard violations,
        stale reconciles); it runs through the engine's plan cache *and*
        calibration loop, so repeated re-executions of a standing query keep
        teaching the planner its observed cost.  A subscription's initial
        execution (during :meth:`subscribe`) is not counted as a refeed.
        """
        if not self._subscribing:
            self._refeeds.inc()
        return self.engine.run(query)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _require_open(self) -> None:
        if self._closed:
            raise InvalidParameterError("stream engine is closed")

    def close(self) -> None:
        """Detach from the wrapped engine and drop every subscription.

        Idempotent.  A stream engine registers a mutation listener on the
        engine it wraps; services that layer short-lived stream engines over
        one long-lived serving engine must close them, or each discarded
        instance stays referenced (and notified) by the engine forever.  The
        wrapped engine itself is left untouched and fully usable.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self.engine.remove_mutation_listener(self._on_engine_mutation)
            for sub_id in sorted(self._subs):
                self._drop(self._subs[sub_id])

    def __enter__(self) -> "StreamEngine":
        """Context-manager support: ``with StreamEngine(engine) as stream:``."""
        return self

    def __exit__(self, *exc: object) -> None:
        """Close (detach listener, drop subscriptions) on context exit."""
        self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def metrics(self) -> dict[str, object]:
        """Counters describing the maintenance behaviour."""
        subs = list(self._subs.values())
        return {
            "subscriptions": len(subs),
            "batches_pushed": self.batches_pushed,
            "updates_pushed": self.updates_pushed,
            "skips": sum(s.skips for s in subs),
            "local_repairs": sum(s.local_repairs for s in subs),
            "refreshes": sum(s.refreshes for s in subs),
            "stale": sum(1 for s in subs if s.stale),
            "calibration_refeeds": self.calibration_refeeds,
            "guard_violations": self.guard_violations,
        }

    def metrics_snapshot(self) -> dict[str, object]:
        """JSON-able snapshot of the shared registry (stream + wrapped engine)."""
        return self.obs.snapshot()

    def prometheus_metrics(self) -> str:
        """Prometheus text-format exposition of the shared registry."""
        return self.obs.prometheus()

    def traces(self, n: int | None = None) -> tuple[Trace, ...]:
        """The most recent completed traces (pushes, queries), oldest first."""
        return self.obs.tracer.recent(n)

    def events(self, kind: str | None = None, n: int | None = None) -> tuple[Event, ...]:
        """Recent structured events (guard violations, stale subscriptions, ...)."""
        return self.obs.events.events(kind, n)

    def slow_queries(self, n: int | None = None) -> list[dict]:
        """Recent slow records from the shared log — slow queries of the
        wrapped engine plus threshold-exceeding stream pushes."""
        return self.obs.slow.records(n)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StreamEngine(subscriptions={len(self._subs)}, "
            f"batches={self.batches_pushed}, sharded={self._sharded})"
        )
