"""Incremental result deltas and canonical row keys.

A standing query's maintained answer is represented as a tuple of **canonical
row keys**, ordered deterministically, so that any two result states can be
compared (and diffed) without materializing point objects:

* kNN-select subscriptions — ``(distance, pid)`` pairs in ascending
  ``(distance, pid)`` order (exactly the library-wide neighborhood order);
* range-select subscriptions — member pids in ascending order;
* kNN-join subscriptions — ``(outer pid, inner pid)`` pairs in ascending
  order;
* two-predicate subscriptions — pids / pid-pairs / pid-triples of the
  result rows, sorted (the paper's two-predicate answers are sets; the sort
  makes the key order canonical).

A :class:`Delta` is the difference between two such states: the rows that
entered the result and the rows that left it.  Applying a subscription's
deltas, in push order, to its initial snapshot always reproduces its current
:meth:`~repro.stream.subscription.Subscription.result` — that is the delta
soundness invariant ``docs/stream.md`` proves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.point import Point
from repro.query.results import QueryResult

__all__ = ["Delta", "diff_rows", "result_rows"]


@dataclass(frozen=True)
class Delta:
    """The incremental change of one subscription after one update batch.

    ``added`` and ``removed`` hold canonical row keys (see the module
    docstring for the per-class key shape), each sorted ascending.  A kNN
    rank change caused by a fallback re-execution appears as the same pid
    leaving with its old distance and re-entering with its new one.
    """

    subscription_id: str
    added: tuple = ()
    removed: tuple = ()
    #: True when the delta was produced by falling back to a from-scratch
    #: re-execution (a guard was violated); False for local repairs and
    #: skipped (provably unaffected) batches.
    refreshed: bool = False

    @property
    def is_empty(self) -> bool:
        """True when the update batch did not change this result at all."""
        return not self.added and not self.removed

    def __len__(self) -> int:
        return len(self.added) + len(self.removed)


def diff_rows(before: tuple, after: tuple) -> tuple[tuple, tuple]:
    """``(added, removed)`` between two canonical row-key tuples.

    States cache their row tuples, so an untouched result arrives as the
    *same* tuple object and short-circuits without building sets.
    """
    if before is after:
        return (), ()
    old = set(before)
    new = set(after)
    return tuple(sorted(new - old)), tuple(sorted(old - new))


def result_rows(result: QueryResult) -> tuple:
    """The canonical row keys of an engine result (sorted, hashable).

    Point results key on ``pid``, pair results on ``(outer pid, inner pid)``
    and triplet results on ``(a pid, b pid, c pid)`` — the same identifier
    keys the sharded merge sorts by, so from-scratch runs of either engine
    canonicalize identically.  Algebra record results key on the row itself
    (``(group key, value)`` aggregate rows) or, for deep-join point rows, on
    the row's pid tuple.
    """
    if result.pairs:
        return tuple(sorted(pair.pids for pair in result.pairs))
    if result.triplets:
        return tuple(sorted(triplet.pids for triplet in result.triplets))
    if result.records:
        first = result.records[0]
        if isinstance(first, tuple) and first and isinstance(first[0], Point):
            return tuple(sorted(tuple(p.pid for p in row) for row in result.records))
        return tuple(sorted(result.records))
    return tuple(sorted(point.pid for point in result.points))
