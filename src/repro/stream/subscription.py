"""The ``Subscription`` handle: one standing query and its maintained result.

A subscription is created by :meth:`repro.stream.StreamEngine.subscribe` and
stays valid until unsubscribed.  It exposes the maintained answer as
canonical row keys (:meth:`Subscription.result`), plus per-subscription
counters that make the maintenance behaviour observable: how many update
batches were provably irrelevant (``skips``), how many were absorbed by
local repair (``local_repairs``) and how many violated a guard and fell back
to re-execution (``refreshes``).
"""

from __future__ import annotations

from repro.query.query import Query
from repro.stream.delta import Delta, diff_rows
from repro.stream.maintain import (
    REFRESHED,
    REPAIRED,
    SKIPPED,
    MaintenanceContext,
    MaintenanceState,
)
from repro.storage.update import AppliedUpdate

__all__ = ["Subscription"]


class Subscription:
    """A standing query with an incrementally maintained result.

    Not constructed directly — use :meth:`repro.stream.StreamEngine.subscribe`.
    """

    __slots__ = (
        "id",
        "query",
        "query_class",
        "relations",
        "stale",
        "updates_seen",
        "skips",
        "local_repairs",
        "refreshes",
        "_state",
        "_direct_delta",
    )

    def __init__(
        self, sub_id: str, query: Query, query_class: str, state: MaintenanceState
    ) -> None:
        #: The subscription's identifier (unique within its stream engine).
        self.id = sub_id
        #: The standing query.
        self.query = query
        #: The paper's query class the engine planned this query into.
        self.query_class = query_class
        #: Names of the relations the query touches.
        self.relations = query.relations()
        #: True when an out-of-band engine mutation may have staled the
        #: maintained result; the next push (or ``poll``) reconciles it.
        self.stale = False
        #: Update batches this subscription has been offered.
        self.updates_seen = 0
        #: Batches whose guard region proved them irrelevant (no work done).
        self.skips = 0
        #: Batches absorbed by local result repair.
        self.local_repairs = 0
        #: Batches that violated a guard and fell back to re-execution.
        self.refreshes = 0
        self._state = state
        self._direct_delta = hasattr(state, "take_delta")

    def result(self) -> tuple:
        """The maintained result as canonical row keys.

        Row shape depends on :attr:`query_class` — see
        :mod:`repro.stream.delta`: ``(distance, pid)`` pairs for a kNN-select,
        pids for range/point results, pid pairs/triples for joins.
        """
        return self._state.rows()

    def apply(
        self, applied: AppliedUpdate, relation: str, ctx: MaintenanceContext
    ) -> Delta:
        """Offer one effective update batch to the maintenance state.

        Called by the stream engine for every batch pushed to a relation this
        subscription touches; a stale subscription is reconciled by a full
        refresh first.  Returns the resulting :class:`Delta` (possibly
        empty).
        """
        state = self._state
        direct = self._direct_delta and not self.stale
        before = None if direct else state.rows()
        if self.stale:
            # An out-of-band mutation bypassed maintenance: the state can no
            # longer be trusted to repair incrementally — reconcile first.
            state.refresh(ctx)
            self.stale = False
            outcome = REFRESHED
        else:
            outcome = state.apply(applied, relation, ctx)
        self.updates_seen += 1
        if outcome == SKIPPED:
            self.skips += 1
        elif outcome == REPAIRED:
            self.local_repairs += 1
        else:
            self.refreshes += 1
        if direct:
            # The state's kernel recorded exactly which rows entered/left.
            added, removed = state.take_delta() or ((), ())
        else:
            added, removed = diff_rows(before, state.rows())
        return Delta(
            subscription_id=self.id,
            added=added,
            removed=removed,
            refreshed=outcome == REFRESHED,
        )

    def reconcile(self, ctx: MaintenanceContext) -> Delta:
        """Refresh the maintained result from scratch and return the diff.

        Used by :meth:`repro.stream.StreamEngine.poll` to repair a
        subscription staled by out-of-band mutations without waiting for the
        next pushed batch.
        """
        before = self._state.rows()
        self._state.refresh(ctx)
        self.stale = False
        self.refreshes += 1
        added, removed = diff_rows(before, self._state.rows())
        return Delta(subscription_id=self.id, added=added, removed=removed, refreshed=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Subscription(id={self.id!r}, class={self.query_class!r}, "
            f"rows={len(self._state.rows())}, repairs={self.local_repairs}, "
            f"refreshes={self.refreshes}, skips={self.skips})"
        )
