"""``repro.algebra`` — composable logical query algebra.

The generalization layer over the paper's six fixed query classes: operator
trees (:mod:`~repro.algebra.tree`) composed of scans, per-point filters
(range ∧ kNN ∧ payload attributes), arbitrarily chained kNN joins, spatial
aggregates and top-k; a rewrite-rule engine (:mod:`~repro.algebra.rules`)
whose catalog subsumes the paper's select/join validity results; a compiler
(:mod:`~repro.algebra.compile`) producing cacheable physical plans with
per-operator calibrated estimates; an index-backed evaluator
(:mod:`~repro.algebra.evaluate`); and an independent brute-force reference
implementation (:mod:`~repro.algebra.reference`) that defines the semantics
the parity suite checks every layer against.

Entry point for users: build a tree and wrap it in a query::

    from repro.algebra import GridAggregate, RangeFilter, Scan, TopK
    from repro.query import Query

    hotspots = Query.from_tree(
        TopK(GridAggregate(RangeFilter(Scan("vehicles"), downtown), 24), 5)
    )
    result = engine.run(hotspots)   # result.records: ((ix, iy), count) rows

See ``docs/algebra.md`` for the tree grammar, the rule catalog with validity
arguments, and the stream guard-composition soundness sketch.
"""

from repro.algebra.compile import NODE_PROFILE_STRATEGY, compile_tree, rewritten_tree
from repro.algebra.decompose import (
    ScanGuard,
    chain_window,
    local_decomposition,
    scan_guards,
)
from repro.algebra.evaluate import DatasetContext, EvalContext, EvalOutput, evaluate
from repro.algebra.reference import reference_evaluate, reference_rows
from repro.algebra.rules import (
    DEFAULT_RULES,
    RewriteRule,
    RuleEngine,
    default_engine,
    validate_tree,
)
from repro.algebra.tree import (
    AlgebraNode,
    AttrFilter,
    GridAggregate,
    KnnFilter,
    KnnJoinOp,
    RangeFilter,
    RegionAggregate,
    Scan,
    TopK,
    tree_from_signature,
)

__all__ = [
    "AlgebraNode",
    "AttrFilter",
    "DEFAULT_RULES",
    "DatasetContext",
    "EvalContext",
    "EvalOutput",
    "GridAggregate",
    "KnnFilter",
    "KnnJoinOp",
    "NODE_PROFILE_STRATEGY",
    "RangeFilter",
    "RegionAggregate",
    "RewriteRule",
    "RuleEngine",
    "Scan",
    "ScanGuard",
    "TopK",
    "chain_window",
    "compile_tree",
    "default_engine",
    "evaluate",
    "local_decomposition",
    "scan_guards",
    "reference_evaluate",
    "reference_rows",
    "rewritten_tree",
    "tree_from_signature",
    "validate_tree",
]
