"""Structural decompositions of algebra trees, shared across layers.

Two consumers need to reason about a tree's *shape* without evaluating it:

* the sharded coordinator (:mod:`repro.shard.executor`) fans
  local-decomposable trees out over the driving relation's shards and needs
  to know which trees qualify (:func:`local_decomposition`) and which shards
  can be pruned (:func:`chain_window`);
* the stream maintainer (:mod:`repro.stream.maintain`) derives each standing
  tree's **compositional guard regions** (:func:`scan_guards`) — the
  per-relation relevance tests that let provably answer-preserving update
  batches be skipped without re-execution.

Keeping both here means the fan-out layer and the maintenance layer can
never disagree about what a "filter chain over one scan" is.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.tree import (
    AlgebraNode,
    AttrFilter,
    GridAggregate,
    KnnFilter,
    KnnJoinOp,
    RangeFilter,
    RegionAggregate,
    Scan,
    TopK,
)
from repro.geometry.rectangle import Rect

__all__ = [
    "ScanGuard",
    "chain_window",
    "local_decomposition",
    "scan_guards",
]


def local_decomposition(
    tree: AlgebraNode,
) -> "tuple[AlgebraNode, GridAggregate | RegionAggregate | None, TopK | None, str] | None":
    """Split ``tree`` into shard-local parts, or ``None`` when not possible.

    A tree is local-decomposable when it is a chain of point-column
    range/attribute filters over one scan, optionally topped by a spatial
    aggregate and a top-k: filters distribute over the driving relation's
    partition (survivors per shard concatenate losslessly), and count-based
    aggregates distribute as summable per-group partials.  kNN filters and
    joins do not (a shard's k nearest are not the relation's), so trees
    containing them evaluate coordinator-side instead.

    Returns ``(filter chain, aggregate node or None, TopK or None, driving
    relation)``.
    """
    topk: TopK | None = None
    node = tree
    if isinstance(node, TopK):
        topk = node
        node = node.child
    agg: GridAggregate | RegionAggregate | None = None
    if isinstance(node, (GridAggregate, RegionAggregate)):
        agg = node
        node = node.children()[0]
    elif topk is not None:  # pragma: no cover - TopK requires aggregate input
        return None
    chain = node
    while isinstance(node, (RangeFilter, AttrFilter)):
        if node.on != "point":  # pragma: no cover - width-1 chains are "point"
            return None
        node = node.child
    if not isinstance(node, Scan):
        return None
    return chain, agg, topk, node.relation


def chain_window(chain: AlgebraNode) -> Rect | None:
    """Intersection of a filter chain's range windows (``None`` = unbounded).

    Every row a chain emits passed each of its windows, so anything outside
    their intersection — a shard's extent, an update's coordinates — cannot
    contribute to (or leave) the chain's output.  Disjoint windows make the
    chain provably empty; a degenerate zero-area marker rectangle is
    returned so containment/intersection tests stay conservative.
    """
    window: Rect | None = None
    node = chain
    while isinstance(node, (RangeFilter, AttrFilter)):
        if isinstance(node, RangeFilter):
            if window is None:
                window = node.window
            else:
                merged = window.intersection(node.window)
                if merged is None:
                    # Disjoint windows: an empty result; keep a degenerate
                    # marker rectangle that intersects (almost) nothing.
                    return Rect(
                        node.window.xmin, node.window.ymin,
                        node.window.xmin, node.window.ymin,
                    )
                window = merged
        node = node.child
    return window


@dataclass(frozen=True)
class ScanGuard:
    """The guard region one :class:`Scan` leaf contributes to its relation.

    An update batch on ``relation`` is *relevant* to the standing tree if it
    triggers any of the relation's scan guards; a batch triggering none is
    provably answer-preserving (see ``docs/algebra.md`` for the soundness
    sketch) and the maintainer skips it.

    Resolution order: ``always`` dominates (any update relevant), then
    ``empty`` (chain provably produces nothing — no update relevant), then
    ``window`` (relevant iff some update coordinate lies inside); a guard
    with neither flag nor window has no spatial constraint and treats every
    update as relevant.
    """

    relation: str
    window: Rect | None
    always: bool
    empty: bool = False


def scan_guards(tree: AlgebraNode) -> list[ScanGuard]:
    """Derive the compositional guard region of every scan in ``tree``.

    Guards compose structurally, top-down:

    * point-column :class:`RangeFilter` windows on a scan's chain
      **intersect** (conjunction narrows relevance — a point outside any
      window can neither enter nor leave the chain's output, whether
      inserted, removed or moved, because containment is a necessary
      condition for a row's existence);
    * :class:`AttrFilter` and ``on="outer"`` filters are ignored — dropping
      a constraint only *widens* a guard, which is always sound;
    * :class:`KnnFilter` marks every scan beneath it **always-relevant**.
      This is deliberate: the filtered-subset k-th-neighbor distance is at
      least the whole-relation one, so a ball guard derived from a global
      kNN under-covers the subset query and would be *unsound* — any update
      to the feeding relations can change which points survive into the
      subset and therefore the subset's k nearest;
    * :class:`KnnJoinOp` marks its inner relation always-relevant (an inner
      mutation can displace any row's neighbors) and resets the outer side's
      window to the filters *below* the join (those above constrain the
      joined inner column, not the outer rows);
    * aggregates and top-k pass guards through unchanged — every surviving
      input point contributes to some group, so the child's relevance is the
      aggregate's.
    """
    guards: list[ScanGuard] = []

    def visit(node: AlgebraNode, window: Rect | None, always: bool, empty: bool) -> None:
        if isinstance(node, Scan):
            guards.append(ScanGuard(node.relation, window, always, empty))
            return
        if always:
            # Dominates every refinement below; no need to track windows.
            for child in node.children():
                visit(child, None, True, False)
            return
        if isinstance(node, KnnFilter):
            for child in node.children():
                visit(child, None, True, False)
            return
        if isinstance(node, KnnJoinOp):
            visit(node.outer, None, False, False)
            visit(node.inner, None, True, False)
            return
        if isinstance(node, RangeFilter) and node.on == "point":
            if window is None:
                window = node.window
            else:
                merged = window.intersection(node.window)
                if merged is None:
                    empty = True
                else:
                    window = merged
            visit(node.child, window, always, empty)
            return
        # AttrFilter, on="outer" filters, aggregates, top-k: ignoring the
        # constraint widens the guard, which is sound.
        for child in node.children():
            visit(child, window, always, empty)

    visit(tree, None, False, False)
    return guards
