"""Logical operator trees: the composable query algebra.

The paper studies six fixed two-predicate query classes.  This module
generalizes them into an *algebra* of composable operator trees:

* ``Scan(relation)`` — every point of a named relation;
* per-point filters — ``RangeFilter`` (window containment), ``AttrFilter``
  (payload side-table equality), ``KnnFilter`` (keep the k nearest to a
  focal point *among the input*); nesting filters is conjunction (∧);
* ``KnnJoinOp(outer, inner, k)`` — append each row's k nearest inner points,
  chainable to any depth (the output rows grow one point column per join);
* spatial aggregates — ``GridAggregate`` (count/density per grid cell),
  ``RegionAggregate`` (group-by-region counts) and ``TopK`` (windowed top-k
  over the aggregate's cell neighborhoods).

Filters above a join carry an ``on`` column selector: ``"point"`` tests the
row's *last* column (the most recently joined inner point — the paper's
"evaluate the join, then filter its output") and ``"outer"`` tests the row's
*first* column.  The distinction is what makes the paper's validity results
expressible as rewrite rules (see :mod:`repro.algebra.rules`): an
outer-column filter commutes with the join, an inner-column filter does not.

Every node carries a plan-cache :meth:`~AlgebraNode.signature` — a pure
nested tuple of strings and ints, excluding focal points and window
coordinates exactly like :meth:`repro.query.query.Query.signature` — and
:func:`tree_from_signature` rebuilds a placeholder tree from one, which is
how the durable tier warms algebra plans across restarts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields, replace
from typing import TYPE_CHECKING, Iterator, Mapping

from repro.exceptions import InvalidParameterError, InvalidPlanError
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.query.predicates import validate_window

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.query.dataset import Dataset

__all__ = [
    "AlgebraNode",
    "Scan",
    "RangeFilter",
    "AttrFilter",
    "KnnFilter",
    "KnnJoinOp",
    "GridAggregate",
    "RegionAggregate",
    "TopK",
    "tree_from_signature",
]


def _bucket_k(k: int) -> int:
    """Power-of-two k bucketing (shared with ``Query.signature``)."""
    if k <= 0:
        raise InvalidParameterError("k must be positive")
    return 1 << (k - 1).bit_length()


@dataclass(frozen=True)
class AlgebraNode:
    """Base class of every logical operator node.

    Nodes are frozen dataclasses: structural equality, hashability and
    pickling (the sharded executor ships subtrees to workers) come for free.
    """

    def children(self) -> tuple["AlgebraNode", ...]:
        """The node's child operators, left to right."""
        return tuple(
            value
            for f in fields(self)
            if isinstance(value := getattr(self, f.name), AlgebraNode)
        )

    def walk(self) -> Iterator["AlgebraNode"]:
        """Yield the node and every descendant, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    def relations(self) -> frozenset[str]:
        """Names of every relation scanned anywhere below this node."""
        return frozenset(
            node.relation for node in self.walk() if isinstance(node, Scan)
        )

    def width(self) -> int:
        """Number of point columns per output row (0 for aggregate rows)."""
        children = self.children()
        return children[0].width() if children else 0

    def target_relation(self) -> str:
        """The relation that produced the row's *last* point column."""
        children = self.children()
        if not children:
            raise InvalidParameterError(f"{type(self).__name__} has no input relation")
        return children[-1].target_relation()

    def signature(self, datasets: Mapping[str, "Dataset"]) -> tuple:
        """Canonical plan-relevant shape: nested tuples of strings and ints.

        Focal points, window coordinates, attribute values and region
        rectangles are excluded (plans do not depend on them); k values are
        power-of-two bucketed.  The tuple survives a JSON round trip through
        the durable tier's list re-tuplification unchanged.
        """
        raise NotImplementedError

    def label(self) -> str:
        """Compact one-line rendering for EXPLAIN output and span names."""
        raise NotImplementedError


def _point_producing(node: AlgebraNode, what: str) -> None:
    if node.width() < 1:
        raise InvalidParameterError(
            f"{what} requires point-producing rows, "
            f"got aggregate rows from {type(node).__name__}"
        )


@dataclass(frozen=True)
class Scan(AlgebraNode):
    """Leaf: every point of the named relation."""

    relation: str

    def __post_init__(self) -> None:
        if not self.relation:
            raise InvalidParameterError("Scan.relation must be non-empty")

    def width(self) -> int:
        return 1

    def target_relation(self) -> str:
        return self.relation

    def signature(self, datasets: Mapping[str, "Dataset"]) -> tuple:
        return ("scan", self.relation, str(datasets[self.relation].index_kind))

    def label(self) -> str:
        return f"scan({self.relation})"


def _validate_on(node: AlgebraNode, on: str, child: AlgebraNode) -> None:
    """Shared ``on`` column-selector validation for the three filters."""
    if on not in ("point", "outer"):
        raise InvalidParameterError(
            f"{type(node).__name__}.on must be 'point' or 'outer', got {on!r}"
        )
    if on == "outer" and not isinstance(child, KnnJoinOp):
        raise InvalidParameterError(
            f"{type(node).__name__}.on='outer' is only meaningful above a join"
        )


def _filter_target(node: AlgebraNode) -> str:
    """Relation a filter's tested column comes from (honors ``on``)."""
    on = getattr(node, "on", "point")
    child = node.children()[0]
    if on == "outer":
        while isinstance(child, KnnJoinOp):
            child = child.outer
        return child.target_relation()
    return child.target_relation()


@dataclass(frozen=True)
class RangeFilter(AlgebraNode):
    """Keep rows whose tested column lies inside a rectangular window."""

    child: AlgebraNode
    window: Rect
    on: str = "point"

    def __post_init__(self) -> None:
        validate_window(self.window, "RangeFilter.window")
        _validate_on(self, self.on, self.child)

    def width(self) -> int:
        return self.child.width()

    def signature(self, datasets: Mapping[str, "Dataset"]) -> tuple:
        return ("range", self.child.signature(datasets), self.on)

    def label(self) -> str:
        tag = "" if self.on == "point" else f"@{self.on}"
        return f"range{tag}({self.child.label()})"


@dataclass(frozen=True)
class AttrFilter(AlgebraNode):
    """Keep rows whose tested column's payload attribute equals ``value``.

    The attribute lives in the relation's payload side-table
    (:attr:`repro.storage.pointstore.PointStore.payloads`); points without a
    mapping payload, or without the key, never match.
    """

    child: AlgebraNode
    key: str
    value: object = None
    on: str = "point"

    def __post_init__(self) -> None:
        if not isinstance(self.key, str) or not self.key:
            raise InvalidParameterError(
                "AttrFilter.key must be a non-empty string (empty attribute-"
                f"filter clause): {self.key!r}"
            )
        _validate_on(self, self.on, self.child)

    def width(self) -> int:
        return self.child.width()

    def signature(self, datasets: Mapping[str, "Dataset"]) -> tuple:
        return ("attr", self.child.signature(datasets), self.key, self.on)

    def label(self) -> str:
        tag = "" if self.on == "point" else f"@{self.on}"
        return f"attr[{self.key}]{tag}({self.child.label()})"


@dataclass(frozen=True)
class KnnFilter(AlgebraNode):
    """Keep rows whose tested column is among the k nearest to ``focal``.

    The k nearest are taken *among the distinct points the input produces
    for that column* — over a bare :class:`Scan` this is exactly the paper's
    kNN-select; over a filtered input it is a kNN within the filtered subset.
    Ties break ascending ``(distance, pid)``, the library-wide order.
    """

    child: AlgebraNode
    focal: Point
    k: int
    on: str = "point"

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise InvalidParameterError("KnnFilter.k must be positive")
        if not math.isfinite(self.focal.x) or not math.isfinite(self.focal.y):
            raise InvalidParameterError("KnnFilter.focal must have finite coordinates")
        _validate_on(self, self.on, self.child)

    def width(self) -> int:
        return self.child.width()

    def signature(self, datasets: Mapping[str, "Dataset"]) -> tuple:
        return ("knn", self.child.signature(datasets), _bucket_k(self.k), self.on)

    def label(self) -> str:
        tag = "" if self.on == "point" else f"@{self.on}"
        return f"knn[{self.k}]{tag}({self.child.label()})"


@dataclass(frozen=True)
class KnnJoinOp(AlgebraNode):
    """Append each row's k nearest ``inner`` points (one new point column).

    The row's *last* column is the join's focal side, so nesting joins
    chains them: ``KnnJoinOp(KnnJoinOp(Scan(a), Scan(b), k1), Scan(c), k2)``
    is the paper's chained A→B→C query generalized to any depth.

    The inner input must be a bare :class:`Scan`.  This is the paper's
    central validity result made structural: a kNN over a *restricted* inner
    relation ranks neighbors within the restriction, which is not the
    intended answer of any select-above-join query — the Counting and
    Block-Marking strategies exist precisely because that shortcut is
    invalid.  Filter the join's *output* (``on="point"``) instead.

    ``batch_inner`` is a physical annotation set by the rewrite engine's
    ``batch-inner-chain`` rule: deduplicate repeated focal points so each
    distinct neighborhood is computed once (the chained-join precomputation).
    """

    outer: AlgebraNode
    inner: AlgebraNode
    k: int
    batch_inner: bool = False

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise InvalidParameterError("KnnJoinOp.k must be positive")
        _point_producing(self.outer, "KnnJoinOp.outer")
        if not isinstance(self.inner, Scan):
            raise InvalidPlanError(
                "KnnJoinOp.inner must be a bare Scan: restricting the inner "
                "relation changes every neighborhood (the paper's select-"
                "inner-of-join invalidity); filter the join output instead"
            )

    def children(self) -> tuple[AlgebraNode, ...]:
        return (self.outer, self.inner)

    def width(self) -> int:
        return self.outer.width() + 1

    def target_relation(self) -> str:
        return self.inner.target_relation()

    def signature(self, datasets: Mapping[str, "Dataset"]) -> tuple:
        return (
            "join",
            self.outer.signature(datasets),
            self.inner.signature(datasets),
            _bucket_k(self.k),
        )

    def label(self) -> str:
        return f"join[{self.k}]({self.outer.label()}, {self.inner.label()})"


#: Aggregate measures supported by :class:`GridAggregate`.
_MEASURES = ("count", "density")


@dataclass(frozen=True)
class GridAggregate(AlgebraNode):
    """Per-grid-cell aggregate over the input rows' last point column.

    The target relation's declared bounds are divided into
    ``cells_per_side × cells_per_side`` cells (the same decomposition as
    :class:`repro.index.grid.GridIndex`); output rows are
    ``((ix, iy), value)`` for every non-empty cell, sorted by cell.
    ``measure="count"`` counts points, ``"density"`` divides by cell area.

    ``prune`` is a physical annotation set by the rewrite engine's
    ``prune-aggregate-window`` rule: every surviving input point lies inside
    it, so executors (sharded fan-out, stream dirty-set maintenance) may
    skip cells disjoint from it.
    """

    child: AlgebraNode
    cells_per_side: int
    measure: str = "count"
    prune: Rect | None = None

    def __post_init__(self) -> None:
        _point_producing_or_rows(self.child, "GridAggregate.child")
        if self.cells_per_side <= 0:
            raise InvalidParameterError("GridAggregate.cells_per_side must be positive")
        if self.measure not in _MEASURES:
            raise InvalidParameterError(
                f"GridAggregate.measure must be one of {_MEASURES}, got {self.measure!r}"
            )

    def children(self) -> tuple[AlgebraNode, ...]:
        return (self.child,)

    def width(self) -> int:
        return 0

    def target_relation(self) -> str:
        return self.child.target_relation()

    def signature(self, datasets: Mapping[str, "Dataset"]) -> tuple:
        return (
            "grid_agg",
            self.child.signature(datasets),
            int(self.cells_per_side),
            self.measure,
        )

    def label(self) -> str:
        return (
            f"grid_agg[{self.cells_per_side}x{self.cells_per_side} "
            f"{self.measure}]({self.child.label()})"
        )


@dataclass(frozen=True)
class RegionAggregate(AlgebraNode):
    """Group-by-region counts over the input rows' last point column.

    ``regions`` is a tuple of ``(name, Rect)`` groups; output rows are
    ``(name, count)`` in the given order, zero counts included (a stable
    schema — consumers see every region every time).
    """

    child: AlgebraNode
    regions: tuple[tuple[str, Rect], ...]

    def __post_init__(self) -> None:
        _point_producing_or_rows(self.child, "RegionAggregate.child")
        if not self.regions:
            raise InvalidParameterError("RegionAggregate.regions must be non-empty")
        seen: set[str] = set()
        for entry in self.regions:
            if not isinstance(entry, tuple) or len(entry) != 2:
                raise InvalidParameterError(
                    f"RegionAggregate.regions entries must be (name, Rect): {entry!r}"
                )
            name, rect = entry
            if not name or not isinstance(name, str):
                raise InvalidParameterError("RegionAggregate region names must be non-empty")
            if name in seen:
                raise InvalidParameterError(f"duplicate region name: {name!r}")
            seen.add(name)
            validate_window(rect, f"RegionAggregate region {name!r}")

    def children(self) -> tuple[AlgebraNode, ...]:
        return (self.child,)

    def width(self) -> int:
        return 0

    def target_relation(self) -> str:
        return self.child.target_relation()

    def signature(self, datasets: Mapping[str, "Dataset"]) -> tuple:
        return ("region_agg", self.child.signature(datasets), len(self.regions))

    def label(self) -> str:
        return f"region_agg[{len(self.regions)}]({self.child.label()})"


@dataclass(frozen=True)
class TopK(AlgebraNode):
    """Keep the ``limit`` highest-valued aggregate rows (the hotspots).

    Rows rank by descending value with ties broken by ascending group key,
    so the answer is deterministic.  The input must be an aggregate
    (grid cells are the "neighborhoods" the top-k windows over).
    """

    child: AlgebraNode
    limit: int

    def __post_init__(self) -> None:
        if self.limit <= 0:
            raise InvalidParameterError("TopK.limit must be positive")
        if self.child.width() != 0:
            raise InvalidParameterError(
                "TopK requires an aggregate input (GridAggregate/RegionAggregate)"
            )

    def children(self) -> tuple[AlgebraNode, ...]:
        return (self.child,)

    def width(self) -> int:
        return 0

    def target_relation(self) -> str:
        return self.child.target_relation()

    def signature(self, datasets: Mapping[str, "Dataset"]) -> tuple:
        return ("topk", self.child.signature(datasets), int(self.limit))

    def label(self) -> str:
        return f"topk[{self.limit}]({self.child.label()})"


def _point_producing_or_rows(node: AlgebraNode, what: str) -> None:
    """Aggregates consume point columns: reject aggregate-over-aggregate."""
    if node.width() < 1:
        raise InvalidParameterError(f"{what} must produce point rows, not aggregates")


# ----------------------------------------------------------------------
# Signature → placeholder tree (durable warm restarts)
# ----------------------------------------------------------------------
_UNIT_WINDOW = (0.0, 0.0, 1.0, 1.0)


def tree_from_signature(entry: tuple) -> AlgebraNode:
    """Rebuild a placeholder tree from a node :meth:`~AlgebraNode.signature`.

    Focal points, windows, attribute values and region rectangles were
    excluded from the signature, so the placeholders carry origin focals,
    unit windows and ``None`` values — exactly enough that the placeholder
    tree re-plans (and re-caches) under the *same* signature, which is what
    :meth:`repro.query.query.Query.from_signature` needs for durable
    warm restarts.  Raises :class:`InvalidParameterError` on malformed input.
    """
    try:
        kind = entry[0]
        if kind == "scan":
            _, relation, _index_kind = entry
            return Scan(str(relation))
        if kind == "range":
            _, child, on = entry
            return RangeFilter(tree_from_signature(child), Rect(*_UNIT_WINDOW), on=str(on))
        if kind == "attr":
            _, child, key, on = entry
            return AttrFilter(tree_from_signature(child), str(key), None, on=str(on))
        if kind == "knn":
            _, child, k, on = entry
            return KnnFilter(
                tree_from_signature(child), Point(0.0, 0.0), int(k), on=str(on)
            )
        if kind == "join":
            _, outer, inner, k = entry
            return KnnJoinOp(
                tree_from_signature(outer), tree_from_signature(inner), int(k)
            )
        if kind == "grid_agg":
            _, child, cells, measure = entry
            return GridAggregate(tree_from_signature(child), int(cells), str(measure))
        if kind == "region_agg":
            _, child, count = entry
            regions = tuple(
                (f"r{i}", Rect(float(i), 0.0, float(i) + 1.0, 1.0))
                for i in range(int(count))
            )
            return RegionAggregate(tree_from_signature(child), regions)
        if kind == "topk":
            _, child, limit = entry
            return TopK(tree_from_signature(child), int(limit))
        raise InvalidParameterError(f"unknown algebra signature kind: {kind!r}")
    except InvalidParameterError:
        raise
    except (TypeError, ValueError, IndexError) as exc:
        raise InvalidParameterError(f"malformed algebra signature: {entry!r}") from exc


def replace_child(node: AlgebraNode, **changes: object) -> AlgebraNode:
    """``dataclasses.replace`` for nodes (re-runs ``__post_init__`` checks)."""
    return replace(node, **changes)
