"""Tree evaluation: execute a (rewritten) algebra tree against an engine context.

Evaluation is row-at-a-time over tuples of :class:`~repro.geometry.point.Point`
columns, with three index-backed fast paths that carry the performance story:

* ``RangeFilter(Scan)`` → one index range-select (block pruning instead of a
  full scan);
* ``KnnFilter(Scan)`` → one index kNN (the paper's kNN-select);
* ``KnnJoinOp`` → one batched kNN over the focal column's coordinates, with
  focal deduplication when the rewrite engine set ``batch_inner``.

The :class:`EvalContext` protocol abstracts where points and neighborhoods
come from, so the same evaluator runs unsharded (:class:`DatasetContext`),
against the sharded runtime (exact cross-shard kNN — see
:mod:`repro.shard.executor`), and inside stream refreshes.  Per-node work is
accumulated into ``node_costs`` — the engine records those under each node's
signature, which is how calibration learns **per-operator** profiles.
"""

from __future__ import annotations

from collections.abc import Mapping as _abc_Mapping
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Protocol, Sequence

import numpy as np

from repro.core.stats import PruningStats
from repro.exceptions import UnsupportedQueryError
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.locality.batch import get_knn_batch
from repro.locality.knn import get_knn
from repro.locality.neighborhood import Neighborhood
from repro.operators.range_select import range_select
from repro.operators.results import JoinPair, JoinTriplet, pair_key
from repro.algebra.tree import (
    AlgebraNode,
    AttrFilter,
    GridAggregate,
    KnnFilter,
    KnnJoinOp,
    RangeFilter,
    RegionAggregate,
    Scan,
    TopK,
)

__all__ = [
    "EvalContext",
    "DatasetContext",
    "EvalOutput",
    "cell_of",
    "evaluate",
    "package_output",
]

#: One result row: a tuple of point columns, or an aggregate ``(key, value)``.
Row = tuple


class EvalContext(Protocol):
    """What tree evaluation may ask of its engine/runtime."""

    def points(self, relation: str) -> list[Point]:
        """Every point of the named relation (any order)."""
        ...

    def bounds(self, relation: str) -> Rect | None:
        """The relation's declared bounds (grid-cell decomposition frame)."""
        ...

    def knn(self, relation: str, focal: Point, k: int) -> Neighborhood:
        """Exact k-neighborhood over the whole relation."""
        ...

    def knn_batch(self, relation: str, coords: np.ndarray, k: int) -> list[Neighborhood]:
        """Exact k-neighborhoods of many query coordinates, in input order."""
        ...

    def range(self, relation: str, window: Rect) -> list[Point]:
        """Points of the relation inside ``window`` (index-pruned)."""
        ...


class DatasetContext:
    """The unsharded :class:`EvalContext`: answers straight from the indexes."""

    def __init__(self, datasets: Mapping[str, "object"]) -> None:
        self.datasets = datasets
        #: Abstract work counters shared by every fast path in one evaluation.
        self.stats = PruningStats()

    def points(self, relation: str) -> list[Point]:
        """Materialized points of the relation's store."""
        return list(self.datasets[relation].store.iter_points())

    def bounds(self, relation: str) -> Rect | None:
        """Declared dataset bounds, falling back to the index's bounds."""
        dataset = self.datasets[relation]
        if dataset.bounds is not None:
            return dataset.bounds
        try:
            return dataset.index.bounds
        except AttributeError:  # pragma: no cover - every index exposes bounds
            return None

    def knn(self, relation: str, focal: Point, k: int) -> Neighborhood:
        """One exact index kNN (counted as one neighborhood)."""
        self.stats.neighborhoods_computed += 1
        return get_knn(self.datasets[relation].index, focal, k)

    def knn_batch(self, relation: str, coords: np.ndarray, k: int) -> list[Neighborhood]:
        """Batched exact index kNN (one neighborhood per coordinate)."""
        self.stats.neighborhoods_computed += len(coords)
        return get_knn_batch(self.datasets[relation].index, coords, k)

    def range(self, relation: str, window: Rect) -> list[Point]:
        """One index range-select (block-pruned window scan)."""
        return list(range_select(self.datasets[relation].index, window))


@dataclass
class EvalOutput:
    """The rows a (sub)tree produced plus the per-node work ledger."""

    #: ``width`` point columns per row, or ``(key, value)`` aggregate rows.
    rows: list[Row]
    #: Point columns per row; 0 marks aggregate output.
    width: int
    #: Abstract work units per node, keyed by the node object (structural
    #: equality merges repeated identical subtrees — deliberately).
    node_costs: dict[AlgebraNode, float] = field(default_factory=dict)


def evaluate(
    tree: AlgebraNode, ctx: EvalContext, stats: PruningStats | None = None
) -> EvalOutput:
    """Execute ``tree`` against ``ctx`` and return its rows.

    ``stats`` (when given) accumulates the neighborhood counters the
    six-class executors report, so the engine's calibration and EXPLAIN
    feedback work unchanged; per-point work lands in ``node_costs``.
    """
    out = _Evaluator(ctx, stats or PruningStats()).run(tree)
    return out


class _Evaluator:
    """Single-evaluation state: the context plus the shared counters."""

    def __init__(self, ctx: EvalContext, stats: PruningStats) -> None:
        self.ctx = ctx
        self.stats = stats
        self.node_costs: dict[AlgebraNode, float] = {}

    def run(self, tree: AlgebraNode) -> EvalOutput:
        rows, width = self._eval(tree)
        return EvalOutput(rows=rows, width=width, node_costs=self.node_costs)

    def _charge(self, node: AlgebraNode, units: float) -> None:
        self.node_costs[node] = self.node_costs.get(node, 0.0) + float(units)

    # -- dispatch -------------------------------------------------------
    def _eval(self, node: AlgebraNode) -> tuple[list[Row], int]:
        if isinstance(node, Scan):
            points = self.ctx.points(node.relation)
            self._charge(node, len(points))
            return [(p,) for p in points], 1
        if isinstance(node, RangeFilter):
            return self._eval_range(node)
        if isinstance(node, AttrFilter):
            return self._eval_attr(node)
        if isinstance(node, KnnFilter):
            return self._eval_knn(node)
        if isinstance(node, KnnJoinOp):
            return self._eval_join(node)
        if isinstance(node, GridAggregate):
            return self._eval_grid(node)
        if isinstance(node, RegionAggregate):
            return self._eval_region(node)
        if isinstance(node, TopK):
            return self._eval_topk(node)
        raise UnsupportedQueryError(f"unknown algebra node: {type(node).__name__}")

    @staticmethod
    def _column(width: int, on: str) -> int:
        return 0 if on == "outer" else width - 1

    def _eval_range(self, node: RangeFilter) -> tuple[list[Row], int]:
        if isinstance(node.child, Scan):
            # Fast path: the index prunes blocks disjoint from the window.
            points = self.ctx.range(node.child.relation, node.window)
            self._charge(node, len(points))
            return [(p,) for p in points], 1
        rows, width = self._eval(node.child)
        self._charge(node, len(rows))
        col = self._column(width, node.on)
        window = node.window
        kept = [row for row in rows if window.contains_point(row[col])]
        return kept, width

    def _eval_attr(self, node: AttrFilter) -> tuple[list[Row], int]:
        rows, width = self._eval(node.child)
        self._charge(node, len(rows))
        col = self._column(width, node.on)
        kept = [row for row in rows if _attr_match(row[col], node.key, node.value)]
        return kept, width

    def _eval_knn(self, node: KnnFilter) -> tuple[list[Row], int]:
        if isinstance(node.child, Scan):
            # Fast path: one index kNN instead of scanning the relation.
            nbr = self.ctx.knn(node.child.relation, node.focal, node.k)
            self._charge(node, 1.0)
            return [(p,) for p in nbr], 1
        rows, width = self._eval(node.child)
        self._charge(node, len(rows))
        col = self._column(width, node.on)
        selected = _knn_of_subset(
            {row[col].pid: row[col] for row in rows}.values(), node.focal, node.k
        )
        kept = [row for row in rows if row[col].pid in selected]
        return kept, width

    def _eval_join(self, node: KnnJoinOp) -> tuple[list[Row], int]:
        rows, width = self._eval(node.outer)
        if not rows:
            self._charge(node, 0.0)
            return [], width + 1
        assert isinstance(node.inner, Scan)
        inner = node.inner.relation
        if node.batch_inner:
            # Chained-join precomputation: one neighborhood per *distinct*
            # focal, shared by every row that repeats it.
            focals: dict[int, Point] = {row[-1].pid: row[-1] for row in rows}
            order = list(focals.values())
            coords = np.array([(p.x, p.y) for p in order], dtype=np.float64)
            neighborhoods = self.ctx.knn_batch(inner, coords, node.k)
            by_pid = {p.pid: nbr for p, nbr in zip(order, neighborhoods)}
            self._charge(node, len(order))
            joined = [row + (e2,) for row in rows for e2 in by_pid[row[-1].pid]]
        else:
            coords = np.array([(row[-1].x, row[-1].y) for row in rows], dtype=np.float64)
            neighborhoods = self.ctx.knn_batch(inner, coords, node.k)
            self._charge(node, len(rows))
            joined = [
                row + (e2,) for row, nbr in zip(rows, neighborhoods) for e2 in nbr
            ]
        return joined, width + 1

    def _eval_grid(self, node: GridAggregate) -> tuple[list[Row], int]:
        rows, _width = self._eval(node.child)
        self._charge(node, len(rows))
        bounds = self._grid_bounds(node)
        counts: dict[tuple[int, int], int] = {}
        for row in rows:
            cell = cell_of(row[-1], bounds, node.cells_per_side)
            counts[cell] = counts.get(cell, 0) + 1
        return grid_rows(counts, node, bounds), 0

    def _grid_bounds(self, node: GridAggregate) -> Rect:
        bounds = self.ctx.bounds(node.target_relation())
        if bounds is None:
            raise UnsupportedQueryError(
                "GridAggregate needs the target relation's bounds; build the "
                "dataset with explicit bounds"
            )
        return bounds

    def _eval_region(self, node: RegionAggregate) -> tuple[list[Row], int]:
        rows, _width = self._eval(node.child)
        self._charge(node, len(rows) * len(node.regions))
        out: list[Row] = []
        for name, rect in node.regions:
            count = sum(1 for row in rows if rect.contains_point(row[-1]))
            out.append((name, count))
        return out, 0

    def _eval_topk(self, node: TopK) -> tuple[list[Row], int]:
        rows, _width = self._eval(node.child)
        self._charge(node, len(rows))
        return topk_rows(rows, node.limit), 0


def package_output(out: EvalOutput) -> dict[str, tuple]:
    """Canonicalize an evaluation's rows into ``QueryResult`` field values.

    Returns a single-entry dict naming the populated field: ``points``
    (width 1, sorted by pid), ``pairs`` (width 2, sorted by pid key),
    ``triplets`` (width 3, sorted by pid triple), or ``records``
    (aggregate rows as produced; joins deeper than three as pid-sorted
    point tuples).  Shared by the unsharded runner and the sharded
    coordinator so both layers canonicalize identically.
    """
    if out.width == 1:
        points = sorted((row[0] for row in out.rows), key=lambda p: p.pid)
        return {"points": tuple(points)}
    if out.width == 2:
        pairs = sorted((JoinPair(*row) for row in out.rows), key=pair_key)
        return {"pairs": tuple(pairs)}
    if out.width == 3:
        triplets = sorted((JoinTriplet(*row) for row in out.rows), key=lambda t: t.pids)
        return {"triplets": tuple(triplets)}
    if out.width == 0:
        return {"records": tuple(out.rows)}
    records = sorted(out.rows, key=lambda row: tuple(p.pid for p in row))
    return {"records": tuple(records)}


# ----------------------------------------------------------------------
# Shared aggregate helpers (the sharded coordinator and the stream
# maintainer reuse these so every layer canonicalizes identically)
# ----------------------------------------------------------------------
def cell_of(p: Point, bounds: Rect, cells_per_side: int) -> tuple[int, int]:
    """Grid cell ``(ix, iy)`` of a point — same clipping as ``GridIndex``."""
    cw = bounds.width / cells_per_side
    ch = bounds.height / cells_per_side
    ix = int((p.x - bounds.xmin) / cw) if cw > 0 else 0
    iy = int((p.y - bounds.ymin) / ch) if ch > 0 else 0
    ix = min(max(ix, 0), cells_per_side - 1)
    iy = min(max(iy, 0), cells_per_side - 1)
    return ix, iy


def grid_rows(
    counts: Mapping[tuple[int, int], int], node: GridAggregate, bounds: Rect
) -> list[Row]:
    """Canonical ``((ix, iy), value)`` rows: non-empty cells, sorted by cell."""
    if node.measure == "density":
        area = (bounds.width / node.cells_per_side) * (bounds.height / node.cells_per_side)
        scale = 1.0 / area if area > 0 else 0.0
        return [
            (cell, counts[cell] * scale) for cell in sorted(counts) if counts[cell]
        ]
    return [(cell, counts[cell]) for cell in sorted(counts) if counts[cell]]


def topk_rows(rows: Sequence[Row], limit: int) -> list[Row]:
    """Highest-valued aggregate rows: descending value, ascending key ties."""
    return sorted(rows, key=lambda row: (-row[1], row[0]))[:limit]


def _attr_match(point: Point, key: str, value: object) -> bool:
    """Payload side-table equality test (non-mapping payloads never match)."""
    payload = point.payload
    # collections.abc, not typing: this runs once per candidate row and the
    # typing alias pays a pure-Python __instancecheck__ on every call.
    if not isinstance(payload, _abc_Mapping):
        return False
    return key in payload and payload[key] == value


def _knn_of_subset(points: Iterable[Point], focal: Point, k: int) -> set[int]:
    """Pids of the k nearest points of a materialized subset.

    Ascending ``(distance, pid)`` order — identical tie-breaking to the
    index kNN, so filtered-subset kNN and bare-scan kNN agree on duplicates.
    """
    ranked = sorted(
        points, key=lambda p: ((p.x - focal.x) ** 2 + (p.y - focal.y) ** 2, p.pid)
    )
    return {p.pid for p in ranked[:k]}
