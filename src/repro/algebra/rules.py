"""The rewrite-rule engine: validity-checked logical-tree transformations.

This module generalizes :mod:`repro.planner.rules` — the paper's fixed
select/join validity results — into a catalog of :class:`RewriteRule` objects
applied to algebra trees until fixpoint.  The paper's central theorem shows
up as **two rules among many**:

* :data:`PUSH_FILTER_BELOW_JOIN_OUTER` *fires*: a filter on the join's
  outer column commutes with the join (pushing it down evaluates fewer
  neighborhoods but never changes any of them);
* :data:`NO_FILTER_BELOW_JOIN_INNER` *never fires*: pushing a filter below
  the inner relation would rank neighbors within the restriction — every
  neighborhood changes.  The rule exists so the catalog documents the
  invalidity; :func:`validate_tree` enforces it structurally on every
  rewritten tree (and :class:`~repro.algebra.tree.KnnJoinOp` refuses to
  construct a restricted inner in the first place).

Each rule's docstring carries its validity argument; ``docs/algebra.md``
collects them.  :meth:`RuleEngine.rewrite` returns the optimized tree plus
the ordered trail of fired rule names, which
:class:`~repro.engine.explain.Explain` renders alongside
estimated-vs-observed costs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro.exceptions import InvalidPlanError
from repro.algebra.tree import (
    AlgebraNode,
    AttrFilter,
    GridAggregate,
    KnnFilter,
    KnnJoinOp,
    RangeFilter,
    Scan,
)

__all__ = [
    "RewriteRule",
    "RuleEngine",
    "DEFAULT_RULES",
    "default_engine",
    "validate_tree",
]

#: Filters that test a single row column (share the ``on`` selector).
_FILTERS = (RangeFilter, AttrFilter, KnnFilter)


@dataclass(frozen=True)
class RewriteRule:
    """One named, validity-argued tree transformation.

    ``apply`` inspects a single node and returns the rewritten node, or
    ``None`` when the pattern does not match.  Rules must be semantics
    preserving — the validity argument lives in the rule's ``validity``
    string (and docs/algebra.md); the Hypothesis parity suite checks every
    rewritten tree against the brute-force reference evaluator.
    """

    name: str
    validity: str
    apply: Callable[[AlgebraNode], AlgebraNode | None]


def _push_outer_filter(node: AlgebraNode) -> AlgebraNode | None:
    """Push an outer-column filter below the join it sits on."""
    if not isinstance(node, _FILTERS) or node.on != "outer":
        return None
    join = node.child
    assert isinstance(join, KnnJoinOp)
    pushed_on = "outer" if isinstance(join.outer, KnnJoinOp) else "point"
    pushed = replace(node, child=join.outer, on=pushed_on)
    return replace(join, outer=pushed)


PUSH_FILTER_BELOW_JOIN_OUTER = RewriteRule(
    name="push-filter-below-join-outer",
    validity=(
        "A filter on the join's outer column commutes with the kNN join: the "
        "join computes one neighborhood per outer row, so dropping a row "
        "before the join removes exactly the pairs the filter would have "
        "dropped after it, and no other row's neighborhood is affected. "
        "Pushing down evaluates strictly fewer neighborhoods (the paper's "
        "select-outer-of-join pushdown, footnote 1 extends it to ranges)."
    ),
    apply=_push_outer_filter,
)


NO_FILTER_BELOW_JOIN_INNER = RewriteRule(
    name="no-filter-below-join-inner",
    validity=(
        "A filter on the join's inner column must NOT be pushed below the "
        "join: the join would then rank neighbors within the filtered "
        "subset, changing every neighborhood (the paper's select-inner-of-"
        "join invalidity, Sec. 3). The correct plans — evaluate the join "
        "then filter, or the Counting / Block-Marking prunings — keep the "
        "filter above; this rule never fires and validate_tree enforces it."
    ),
    apply=lambda node: None,
)


def _fuse_ranges(node: AlgebraNode) -> AlgebraNode | None:
    """Fuse adjacent same-column range filters into their intersection."""
    if not (isinstance(node, RangeFilter) and isinstance(node.child, RangeFilter)):
        return None
    inner = node.child
    if node.on != inner.on:
        return None
    merged = node.window.intersection(inner.window)
    if merged is None or merged.width <= 0.0 or merged.height <= 0.0:
        return None  # disjoint / degenerate: leave both, the result is empty anyway
    return replace(inner, window=merged)


FUSE_RANGE_FILTERS = RewriteRule(
    name="fuse-range-filters",
    validity=(
        "Window containment is a per-row predicate, so two nested range "
        "filters on the same column are the conjunction of two containment "
        "tests — exactly containment in the windows' intersection. Fusing "
        "halves the passes (select-fusion); disjoint windows are left "
        "unfused because their intersection is not a valid window (the "
        "result is empty either way)."
    ),
    apply=_fuse_ranges,
)


def _order_point_filters(node: AlgebraNode) -> AlgebraNode | None:
    """Sink a range filter below an adjacent attribute filter."""
    if not (isinstance(node, RangeFilter) and isinstance(node.child, AttrFilter)):
        return None
    attr = node.child
    if node.on != "point" or attr.on != "point":
        return None
    return replace(attr, child=replace(node, child=attr.child))


ORDER_POINT_FILTERS = RewriteRule(
    name="order-point-filters",
    validity=(
        "Range and attribute filters on the same column are independent "
        "per-row predicates; conjunction commutes, so any evaluation order "
        "yields the same rows. Canonically the range filter runs first "
        "(innermost): it is one vectorized window kernel — and over a bare "
        "scan an index range-select — while the attribute test is a "
        "per-point side-table lookup, cheapest on the fewest survivors."
    ),
    apply=_order_point_filters,
)


def _prune_aggregate(node: AlgebraNode) -> AlgebraNode | None:
    """Annotate an aggregate with the window bounding all its input points."""
    if not isinstance(node, GridAggregate) or node.prune is not None:
        return None
    child = node.child
    while isinstance(child, _FILTERS):
        if isinstance(child, RangeFilter) and child.on == "point":
            return replace(node, prune=child.window)
        child = child.child
    return None


PRUNE_AGGREGATE_WINDOW = RewriteRule(
    name="prune-aggregate-window",
    validity=(
        "Every point reaching the aggregate passed the point-column range "
        "filter below it, so grid cells disjoint from that window hold zero "
        "points. Recording the window on the aggregate (aggregate pushdown "
        "into the pruned phase) lets the sharded fan-out skip disjoint "
        "shards and the stream maintainer bound its dirty-cell set, without "
        "changing any emitted row."
    ),
    apply=_prune_aggregate,
)


def _batch_inner_chain(node: AlgebraNode) -> AlgebraNode | None:
    """Mark nested joins for deduplicated inner-neighborhood batching."""
    if (
        isinstance(node, KnnJoinOp)
        and isinstance(node.outer, KnnJoinOp)
        and not node.batch_inner
    ):
        return replace(node, batch_inner=True)
    return None


BATCH_INNER_CHAIN = RewriteRule(
    name="batch-inner-chain",
    validity=(
        "In a join chain the focal column of the second hop repeats (many "
        "rows share the same just-joined point), and kNN is a pure function "
        "of the focal coordinates — deduplicating focals computes each "
        "distinct neighborhood exactly once, the paper's chained-join "
        "precomputation generalized to any depth. A physical join-ordering "
        "annotation: output rows are unchanged."
    ),
    apply=_batch_inner_chain,
)


#: The default rule catalog, applied in order at every node until fixpoint.
DEFAULT_RULES: tuple[RewriteRule, ...] = (
    PUSH_FILTER_BELOW_JOIN_OUTER,
    NO_FILTER_BELOW_JOIN_INNER,
    FUSE_RANGE_FILTERS,
    ORDER_POINT_FILTERS,
    PRUNE_AGGREGATE_WINDOW,
    BATCH_INNER_CHAIN,
)

#: Rewrite passes are bounded; each fired rule strictly shrinks or annotates
#: the tree, so real trees converge in a handful of passes.
_MAX_PASSES = 32


class RuleEngine:
    """Applies a rule catalog to a tree until fixpoint, recording the trail."""

    def __init__(self, rules: tuple[RewriteRule, ...] = DEFAULT_RULES) -> None:
        self.rules = tuple(rules)

    def rewrite(self, tree: AlgebraNode) -> tuple[AlgebraNode, tuple[str, ...]]:
        """Return ``(optimized tree, ordered fired-rule names)``.

        Rules are applied bottom-up (children first, so a pushed-down filter
        immediately becomes fusable below), restarting after every changed
        pass; the rewritten tree is re-validated before being returned.
        """
        trail: list[str] = []
        for _ in range(_MAX_PASSES):
            rewritten = self._pass(tree, trail)
            if rewritten == tree:
                break
            tree = rewritten
        validate_tree(tree)
        return tree, tuple(trail)

    def _pass(self, node: AlgebraNode, trail: list[str]) -> AlgebraNode:
        rebuilt = node
        for child in node.children():
            new_child = self._pass(child, trail)
            if new_child is not child and new_child != child:
                rebuilt = _swap_child(rebuilt, child, new_child)
        for rule in self.rules:
            replacement = rule.apply(rebuilt)
            if replacement is not None and replacement != rebuilt:
                trail.append(rule.name)
                rebuilt = replacement
        return rebuilt


def _swap_child(node: AlgebraNode, old: AlgebraNode, new: AlgebraNode) -> AlgebraNode:
    """Rebuild ``node`` with ``old`` replaced by ``new`` (first match)."""
    from dataclasses import fields

    for f in fields(node):
        if getattr(node, f.name) == old:
            return replace(node, **{f.name: new})
    raise InvalidPlanError("rewrite lost track of a child node")  # pragma: no cover


def validate_tree(tree: AlgebraNode) -> None:
    """Reject trees that violate the paper's inner-restriction theorem.

    Subsumes :func:`repro.planner.rules.validate_plan` for algebra trees:
    every join's inner input must be a bare scan — a restricted inner
    relation computes neighborhoods within the restriction, which answers a
    different (and, for the paper's query classes, wrong) question.  The
    node constructor already enforces this; validating again here means a
    buggy rewrite rule can never smuggle a filter below an inner side.
    """
    for node in tree.walk():
        if isinstance(node, KnnJoinOp) and not isinstance(node.inner, Scan):
            raise InvalidPlanError(
                "rewritten tree pushed a filter below a join's inner relation"
            )


def default_engine() -> RuleEngine:
    """The engine over :data:`DEFAULT_RULES` (a fresh instance; rules are shared)."""
    return RuleEngine(DEFAULT_RULES)
