"""Brute-force reference evaluator: the algebra's executable semantics.

Evaluates a tree with plain Python loops over materialized point lists — no
index, no kernels, no rewrite rules, no fast paths.  Every operator is
implemented independently of :mod:`repro.algebra.evaluate`, so the Hypothesis
parity suite (``tests/test_property_algebra_parity.py``) cross-checks two
genuinely different implementations of the same semantics; the figure-33
benchmark uses it as the naive re-execution baseline.

Tie-breaking follows the library-wide neighborhood order: ascending
``(distance, pid)``.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.exceptions import UnsupportedQueryError
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.algebra.tree import (
    AlgebraNode,
    AttrFilter,
    GridAggregate,
    KnnFilter,
    KnnJoinOp,
    RangeFilter,
    RegionAggregate,
    Scan,
    TopK,
)

__all__ = ["reference_evaluate", "reference_rows"]


def reference_evaluate(
    tree: AlgebraNode,
    relations: Mapping[str, Sequence[Point]],
    bounds: Mapping[str, Rect] | None = None,
) -> tuple[list[tuple], int]:
    """Evaluate ``tree`` over plain point lists; returns ``(rows, width)``.

    ``relations`` maps names to point sequences; ``bounds`` supplies each
    relation's grid frame for aggregates (required only when the tree
    aggregates).  Rows are tuples of points (``width`` columns) or
    ``(key, value)`` aggregate rows (``width == 0``).
    """
    return _eval(tree, relations, bounds or {})


def reference_rows(
    tree: AlgebraNode,
    relations: Mapping[str, Sequence[Point]],
    bounds: Mapping[str, Rect] | None = None,
) -> tuple:
    """Canonical sorted row keys of the reference answer.

    Point rows canonicalize to sorted pid tuples (one pid per column);
    aggregate rows are already ``(key, value)`` and sort by key — the same
    canonical form :func:`repro.stream.delta.result_rows` produces for
    algebra results, so every layer can be compared against this.
    """
    rows, width = reference_evaluate(tree, relations, bounds)
    if width == 0:
        return tuple(sorted(rows))
    if width == 1:
        return tuple(sorted(row[0].pid for row in rows))
    return tuple(sorted(tuple(p.pid for p in row) for row in rows))


def _eval(
    node: AlgebraNode,
    relations: Mapping[str, Sequence[Point]],
    bounds: Mapping[str, Rect],
) -> tuple[list[tuple], int]:
    if isinstance(node, Scan):
        return [(p,) for p in relations[node.relation]], 1
    if isinstance(node, RangeFilter):
        rows, width = _eval(node.child, relations, bounds)
        col = _col(width, node.on)
        return [r for r in rows if _inside(r[col], node.window)], width
    if isinstance(node, AttrFilter):
        rows, width = _eval(node.child, relations, bounds)
        col = _col(width, node.on)
        return [r for r in rows if _matches(r[col], node.key, node.value)], width
    if isinstance(node, KnnFilter):
        rows, width = _eval(node.child, relations, bounds)
        col = _col(width, node.on)
        distinct = {r[col].pid: r[col] for r in rows}
        keep = {
            p.pid
            for p in sorted(
                distinct.values(), key=lambda p: (_d2(p, node.focal), p.pid)
            )[: node.k]
        }
        return [r for r in rows if r[col].pid in keep], width
    if isinstance(node, KnnJoinOp):
        rows, width = _eval(node.outer, relations, bounds)
        inner = list(relations[node.inner.relation])
        out: list[tuple] = []
        for row in rows:
            focal = row[-1]
            nearest = sorted(inner, key=lambda p: (_d2(p, focal), p.pid))[: node.k]
            out.extend(row + (e2,) for e2 in nearest)
        return out, width + 1
    if isinstance(node, GridAggregate):
        rows, _width = _eval(node.child, relations, bounds)
        frame = bounds[node.target_relation()]
        cps = node.cells_per_side
        counts: dict[tuple[int, int], int] = {}
        for row in rows:
            cell = _cell(row[-1], frame, cps)
            counts[cell] = counts.get(cell, 0) + 1
        if node.measure == "density":
            area = (frame.width / cps) * (frame.height / cps)
            scale = 1.0 / area if area > 0 else 0.0
            return [(c, counts[c] * scale) for c in sorted(counts) if counts[c]], 0
        return [(c, counts[c]) for c in sorted(counts) if counts[c]], 0
    if isinstance(node, RegionAggregate):
        rows, _width = _eval(node.child, relations, bounds)
        return [
            (name, sum(1 for r in rows if _inside(r[-1], rect)))
            for name, rect in node.regions
        ], 0
    if isinstance(node, TopK):
        rows, _width = _eval(node.child, relations, bounds)
        return sorted(rows, key=lambda r: (-r[1], r[0]))[: node.limit], 0
    raise UnsupportedQueryError(f"unknown algebra node: {type(node).__name__}")


def _col(width: int, on: str) -> int:
    return 0 if on == "outer" else width - 1


def _inside(p: Point, window: Rect) -> bool:
    return window.xmin <= p.x <= window.xmax and window.ymin <= p.y <= window.ymax


def _matches(p: Point, key: str, value: object) -> bool:
    payload = p.payload
    return isinstance(payload, Mapping) and key in payload and payload[key] == value


def _d2(p: Point, q: Point) -> float:
    return (p.x - q.x) ** 2 + (p.y - q.y) ** 2


def _cell(p: Point, frame: Rect, cps: int) -> tuple[int, int]:
    cw = frame.width / cps
    ch = frame.height / cps
    ix = int((p.x - frame.xmin) / cw) if cw > 0 else 0
    iy = int((p.y - frame.ymin) / ch) if ch > 0 else 0
    return (min(max(ix, 0), cps - 1), min(max(iy, 0), cps - 1))
