"""Compile an algebra tree into a :class:`~repro.planner.plan.PhysicalPlan`.

Compilation is rewrite + costing:

1. the :class:`~repro.algebra.rules.RuleEngine` rewrites the tree to
   fixpoint, recording the fired-rule trail;
2. every node of the optimized tree gets a cost estimate in the planner's
   abstract currency (neighborhood computations and tuple checks, see
   :mod:`repro.planner.cost`); nodes whose **per-operator calibration
   profile** is warm — observations recorded under the node's signature by
   the engine after previous executions — are estimated from observed work
   instead of the static model.

The resulting plan's ``query_class`` is ``"algebra"`` and its strategy
``"algebra-tree"``; ``decisions`` carries the optimized tree's rendering,
the rule trail (which :class:`~repro.engine.explain.Explain` shows), and the
per-node estimate table.  The plan is cached under the query's signature
exactly like six-class plans; because signatures exclude parameter values,
execution re-derives the rewritten tree from the *actual* query via
:func:`rewritten_tree` rather than trusting the cached rendering.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from repro.planner.plan import PhysicalPlan
from repro.algebra.rules import RuleEngine, default_engine
from repro.algebra.tree import (
    AlgebraNode,
    AttrFilter,
    GridAggregate,
    KnnFilter,
    KnnJoinOp,
    RangeFilter,
    RegionAggregate,
    Scan,
    TopK,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.planner.calibrate import CalibrationStore
    from repro.planner.cost import CostModel
    from repro.query.dataset import Dataset

__all__ = [
    "compile_tree",
    "observed_node_cost",
    "rewritten_tree",
    "NODE_PROFILE_STRATEGY",
]

#: Strategy name under which per-operator observations are recorded in the
#: calibration store (keyed by the node's signature).
NODE_PROFILE_STRATEGY = "algebra-node"

#: Fallback selectivity for predicates whose true fraction is unknowable
#: statically (attribute equality, windows over unbounded relations).
_DEFAULT_SELECTIVITY = 0.5


def rewritten_tree(tree: AlgebraNode, engine: RuleEngine | None = None) -> tuple[AlgebraNode, tuple[str, ...]]:
    """Rewrite ``tree`` to fixpoint; returns ``(optimized, rule trail)``."""
    return (engine or default_engine()).rewrite(tree)


def observed_node_cost(
    signature: tuple, units: float, cost_model: "CostModel"
) -> float:
    """Convert one node's evaluator work units into the estimate currency.

    The evaluator charges kNN/join nodes one unit per neighborhood (already
    the cost model's unit) and every other node one unit per row touched,
    which the estimates price at ``tuple_check_cost``.  Using the same
    conversion on the observed side keeps the per-node profiles
    unit-consistent with :func:`compile_tree`'s static estimates.
    """
    kind = signature[0] if isinstance(signature, tuple) and signature else ""
    if kind in ("knn", "join"):
        return float(units)
    return float(units) * cost_model.tuple_check_cost


def compile_tree(
    tree: AlgebraNode,
    datasets: Mapping[str, "Dataset"],
    cost_model: "CostModel",
    calibration: "CalibrationStore | None" = None,
    rule_engine: RuleEngine | None = None,
) -> PhysicalPlan:
    """Compile ``tree`` against ``datasets`` into a cacheable physical plan."""
    optimized, trail = rewritten_tree(tree, rule_engine)
    estimates: list[tuple[str, float]] = []
    calibrated = 0
    total = 0.0
    for node in optimized.walk():
        cost, _rows = _estimate(node, datasets, cost_model)
        profile = _node_profile(node, datasets, calibration)
        if profile is not None:
            cost = profile.observed_total
            calibrated += 1
        estimates.append((node.label(), cost))
        total += cost
    decisions: dict[str, object] = {
        "tree": optimized.label(),
        "rule_trail": trail,
        "node_estimates": tuple(estimates),
    }
    if calibrated:
        decisions["calibrated"] = True
        decisions["calibrated_nodes"] = calibrated
    return PhysicalPlan(
        "algebra", "algebra-tree", decisions, {"algebra-tree": total}
    )


def _node_profile(
    node: AlgebraNode,
    datasets: Mapping[str, "Dataset"],
    calibration: "CalibrationStore | None",
):
    if calibration is None:
        return None
    profile = calibration.profiles(node.signature(datasets)).get(NODE_PROFILE_STRATEGY)
    if profile is not None and profile.warm(calibration.min_observations):
        return profile
    return None


def _estimate(
    node: AlgebraNode, datasets: Mapping[str, "Dataset"], cost_model: "CostModel"
) -> tuple[float, float]:
    """Static ``(own cost, output rows)`` of one node — children excluded.

    Costs use the planner's currency: one unit per neighborhood computation,
    ``tuple_check_cost`` per per-row predicate test.  Cardinalities chain
    through children (a join multiplies by k, a window filter by its area
    fraction of the relation bounds), so each node's own cost can be summed
    over a tree walk without double counting.
    """
    tc = cost_model.tuple_check_cost
    if isinstance(node, Scan):
        n = float(len(datasets[node.relation]))
        return n * tc, n
    if isinstance(node, RangeFilter):
        _cost, rows_in = _estimate(node.child, datasets, cost_model)
        fraction = _window_fraction(node, datasets)
        rows_out = rows_in * fraction
        if isinstance(node.child, Scan):
            # Index fast path: blocks disjoint from the window are pruned, so
            # only the expected survivors (plus one block pass) are touched —
            # the Scan below was never materialized, hence the negative
            # correction is folded in by charging survivors only.
            return cost_model.block_check_cost + rows_out * tc, rows_out
        return rows_in * tc, rows_out
    if isinstance(node, AttrFilter):
        _cost, rows_in = _estimate(node.child, datasets, cost_model)
        return rows_in * tc, rows_in * _DEFAULT_SELECTIVITY
    if isinstance(node, KnnFilter):
        if isinstance(node.child, Scan):
            # Index fast path: one neighborhood, the scan is never touched.
            return 1.0, float(min(node.k, len(datasets[node.child.relation])))
        _cost, rows_in = _estimate(node.child, datasets, cost_model)
        return rows_in * tc, float(min(node.k, int(rows_in)))
    if isinstance(node, KnnJoinOp):
        _cost, rows_in = _estimate(node.outer, datasets, cost_model)
        # One neighborhood per outer row; batching dedupes repeated focals,
        # modelled as a flat discount on the chained second hop.
        per_row = 0.5 if node.batch_inner else 1.0
        return rows_in * per_row, rows_in * node.k
    if isinstance(node, (GridAggregate, RegionAggregate)):
        _cost, rows_in = _estimate(node.children()[0], datasets, cost_model)
        groups = (
            float(len(node.regions))
            if isinstance(node, RegionAggregate)
            else float(node.cells_per_side**2)
        )
        return rows_in * tc, min(rows_in, groups)
    if isinstance(node, TopK):
        _cost, rows_in = _estimate(node.child, datasets, cost_model)
        return rows_in * tc, float(min(node.limit, int(rows_in) or 1))
    raise AssertionError(f"unreachable node type {type(node).__name__}")  # pragma: no cover


def _window_fraction(node: RangeFilter, datasets: Mapping[str, "Dataset"]) -> float:
    relation = node.child.relations()
    for name in relation:
        dataset = datasets.get(name)
        if dataset is not None and dataset.bounds is not None and dataset.bounds.area > 0:
            return min(1.0, node.window.area / dataset.bounds.area)
    return _DEFAULT_SELECTIVITY
