"""The paper's core contribution: optimized evaluation of two-kNN-predicate queries.

Subpackages, one per combination of predicates studied in the paper:

* :mod:`repro.core.select_join` — a kNN-select interacting with a kNN-join
  (Section 3): the conceptually correct plan, the Counting algorithm
  (Procedure 1), the Block-Marking algorithm (Procedures 2–3) and the valid
  outer-relation push-down.
* :mod:`repro.core.two_joins` — two kNN-joins (Section 4): unchained joins
  (baseline ``∩B`` plan, Procedure 4, join-order heuristic) and chained joins
  (QEP1/QEP2/QEP3 with the neighborhood cache).
* :mod:`repro.core.two_selects` — two kNN-selects (Section 5): the independent
  evaluation baseline and the 2-kNN-select algorithm (Procedure 5).
"""

from repro.core.select_join import (
    select_join_baseline,
    select_join_counting,
    select_join_block_marking,
    outer_select_join_pushdown,
    outer_select_join_after,
)
from repro.core.two_joins import (
    unchained_joins_baseline,
    unchained_joins_block_marking,
    choose_unchained_join_order,
    chained_joins_qep1,
    chained_joins_qep2,
    chained_joins_nested,
)
from repro.core.two_selects import two_knn_selects_baseline, two_knn_selects_optimized

__all__ = [
    "select_join_baseline",
    "select_join_counting",
    "select_join_block_marking",
    "outer_select_join_pushdown",
    "outer_select_join_after",
    "unchained_joins_baseline",
    "unchained_joins_block_marking",
    "choose_unchained_join_order",
    "chained_joins_qep1",
    "chained_joins_qep2",
    "chained_joins_nested",
    "two_knn_selects_baseline",
    "two_knn_selects_optimized",
]
