"""The 2-kNN-select algorithm (Procedure 5 of the paper).

For two selects ``sigma_{k1,f1}(E)`` and ``sigma_{k2,f2}(E)`` with ``k1 <=
k2`` (the algorithm swaps them otherwise):

1. Compute the smaller neighborhood ``nbr1 = getkNN(f1, k1)`` normally.
2. The final answer is a subset of ``nbr1``, so only points of ``nbr1`` can
   survive the intersection.  Define the *search threshold* as the distance
   from ``f2`` to the member of ``nbr1`` farthest from ``f2``.
3. Build a **restricted locality** of ``f2``: run the MAXDIST phase of the
   locality algorithm to find the bound ``M`` (at least ``k2`` points lie
   within distance ``M`` of ``f2``), then admit exactly the blocks whose
   MINDIST from ``f2`` is at most ``min(M, searchThreshold)``.
4. Rank the points of the restricted locality around ``f2`` and intersect the
   top ``k2`` with ``nbr1``.

Correctness sketch (why the restricted locality suffices):

* Every point of ``nbr1`` is within ``searchThreshold`` of ``f2`` and within
  ``M`` of ``f2`` only if it is a true k2-neighbor; more precisely, every
  point of ``nbr1`` that is also a true k2-neighbor of ``f2`` lies in a block
  with MINDIST <= min(M, threshold), so it survives into the restricted
  candidate set, and removing *other* candidates can only promote it.
* A point that is **not** a true k2-neighbor cannot be reported: all the
  points that outrank it (there are at least ``k2`` of them within distance
  ``M``, and those closer than a ``nbr1`` member are within the threshold)
  remain in the restricted candidate set, so it cannot enter the restricted
  top-``k2`` either.

This mirrors the paper's argument that the locality of ``f2`` "can be adjusted
to cover just the neighborhood of f1" without affecting the intersection.

Deviation from the literal pseudocode (DESIGN.md note 3): the second scan is
expressed as "all blocks with MINDIST <= min(M, threshold)" rather than the
pseudocode's MAXDIST-based break, which is not monotone in a MINDIST ordering.
"""

from __future__ import annotations

import numpy as np

from repro.core.stats import PruningStats
from repro.exceptions import EmptyDatasetError, InvalidParameterError
from repro.geometry.point import Point
from repro.index.base import SpatialIndex
from repro.locality.knn import get_knn, maxdist_phase_bound, neighborhood_from_blocks
from repro.operators.intersection import intersect_points

__all__ = ["two_knn_selects_optimized"]


def two_knn_selects_optimized(
    index: SpatialIndex,
    focal1: Point,
    k1: int,
    focal2: Point,
    k2: int,
    stats: PruningStats | None = None,
) -> list[Point]:
    """Evaluate two kNN-selects with the 2-kNN-select algorithm (Procedure 5).

    Produces exactly the same point set as
    :func:`repro.core.two_selects.baseline.two_knn_selects_baseline`.

    Parameters
    ----------
    index:
        Spatial index over the relation ``E``.
    focal1, k1:
        First select's focal point and k value.
    focal2, k2:
        Second select's focal point and k value.
    stats:
        Optional counters; ``locality_blocks`` records the size of the
        restricted locality actually scanned for the larger select.
    """
    if k1 <= 0 or k2 <= 0:
        raise InvalidParameterError("k1 and k2 must be positive")
    if index.num_points == 0:
        raise EmptyDatasetError("cannot evaluate selects over an empty index")

    # Lines 1-4 of Procedure 5: make (f1, k1) the smaller-k predicate.
    if k1 > k2:
        focal1, focal2 = focal2, focal1
        k1, k2 = k2, k1

    small = get_knn(index, focal1, k1)  # nbr1
    if len(small) == 0:
        return []
    search_threshold = small.distance_to_farthest_member(focal2)

    # MAXDIST phase: find the bound M guaranteeing >= k2 points within M of f2
    # (one vectorized cumsum over the MAXDIST ordering — see maxdist_phase_bound).
    counts = index.block_counts
    maxdists = index.maxdists(focal2)
    maxdist_bound = maxdist_phase_bound(counts, maxdists, k2)

    # Restricted locality: blocks with MINDIST <= min(M, searchThreshold).
    cutoff = min(maxdist_bound, search_threshold)
    mindists = index.mindists(focal2)
    mask = (mindists <= cutoff) & (counts > 0)
    locality_blocks = [index.blocks[i] for i in np.nonzero(mask)[0]]
    if stats is not None:
        stats.locality_blocks += len(locality_blocks)
        stats.blocks_examined += index.num_blocks
        stats.blocks_pruned += index.num_blocks - len(locality_blocks)

    # Columnar tail: the restricted neighborhood ranking and the intersection
    # both run on id arrays; only the intersection's survivors materialize.
    large = neighborhood_from_blocks(focal2, k2, locality_blocks)
    return intersect_points(small, large)
