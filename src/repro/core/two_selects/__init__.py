"""Queries with two kNN-select predicates (Section 5 of the paper).

Evaluating either select first and feeding its output into the other is wrong
(Figures 14–15); the correct plan evaluates both selects independently over
the full relation and intersects their results (Figure 16).  The 2-kNN-select
algorithm (Procedure 5) keeps that semantics but restricts the locality of the
larger-k select to the region that can actually affect the intersection.
"""

from repro.core.two_selects.baseline import two_knn_selects_baseline
from repro.core.two_selects.optimized import two_knn_selects_optimized

__all__ = ["two_knn_selects_baseline", "two_knn_selects_optimized"]
