"""Conceptually correct QEP for two kNN-selects (Figure 16).

Both selects are evaluated independently over the full relation and their
results are intersected.  Correct, but when the two k values differ widely the
larger select's locality covers most of the space even though only the points
near the smaller select's result can survive the intersection — that waste is
what Procedure 5 removes.
"""

from __future__ import annotations

from repro.exceptions import InvalidParameterError
from repro.geometry.point import Point
from repro.index.base import SpatialIndex
from repro.locality.knn import get_knn
from repro.operators.intersection import intersect_points

__all__ = ["two_knn_selects_baseline"]


def two_knn_selects_baseline(
    index: SpatialIndex,
    focal1: Point,
    k1: int,
    focal2: Point,
    k2: int,
) -> list[Point]:
    """Evaluate ``sigma_{k1,f1}(E) ∩ sigma_{k2,f2}(E)`` the conceptually correct way.

    Returns the points of ``E`` that are simultaneously among the k1 nearest
    neighbors of ``focal1`` and the k2 nearest neighbors of ``focal2``.
    """
    if k1 <= 0 or k2 <= 0:
        raise InvalidParameterError("k1 and k2 must be positive")
    first = get_knn(index, focal1, k1)
    second = get_knn(index, focal2, k2)
    return intersect_points(first, second)
