"""Unchained kNN-joins: ``(A join_kNN B) ∩B (C join_kNN B)`` (Section 4.1).

The conceptually correct plan evaluates both joins independently and
intersects their pair sets on the shared inner relation B (Figure 10).  The
optimized plan (Procedure 4) evaluates the first join, marks the blocks of B
that received at least one join partner as *Candidate* (all others are
*Safe*), and then prunes blocks of the second join's outer relation whose
points' neighborhoods can only fall inside Safe blocks — those points cannot
produce triplets.

Join order matters for the amount of pruning (Section 4.1.2):
:func:`choose_unchained_join_order` implements the paper's heuristic (start
with the more clustered / smaller-coverage relation) and
:func:`unchained_joins_auto` applies it.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Sequence

from repro.core.stats import PruningStats
from repro.exceptions import InvalidParameterError
from repro.geometry.point import Point
from repro.index.base import SpatialIndex
from repro.index.block import Block
from repro.index.stats import IndexStats
from repro.locality.knn import get_knn
from repro.operators.intersection import intersect_pairs_on_inner
from repro.operators.knn_join import knn_join_pairs
from repro.operators.results import JoinPair, JoinTriplet

__all__ = [
    "unchained_joins_baseline",
    "unchained_joins_block_marking",
    "choose_unchained_join_order",
    "unchained_joins_auto",
]


def unchained_joins_baseline(
    a_points: Iterable[Point],
    c_points: Iterable[Point],
    b_index: SpatialIndex,
    k_ab: int,
    k_cb: int,
) -> list[JoinTriplet]:
    """The conceptually correct QEP of Figure 10.

    Both joins are evaluated independently and their outputs are intersected
    on B, producing triplets ``(a, b, c)``.
    """
    if k_ab <= 0 or k_cb <= 0:
        raise InvalidParameterError("k_ab and k_cb must be positive")
    ab_pairs = knn_join_pairs(a_points, b_index, k_ab)
    cb_pairs = knn_join_pairs(c_points, b_index, k_cb)
    return intersect_pairs_on_inner(ab_pairs, cb_pairs)


def _candidate_blocks(b_index: SpatialIndex, ab_pairs: Sequence[JoinPair]) -> set[int]:
    """Block ids of B blocks holding at least one joined inner point (Candidate)."""
    candidates: set[int] = set()
    for pair in ab_pairs:
        block = b_index.locate(pair.inner)
        if block is not None:
            candidates.add(block.block_id)
    return candidates


def _contributing_blocks(
    second_outer_index: SpatialIndex,
    b_index: SpatialIndex,
    candidate_ids: set[int],
    k_second: int,
    stats: PruningStats | None,
) -> list[Block]:
    """Preprocessing step of Procedure 4: mark second-outer blocks.

    A block of the second join's outer relation is Non-Contributing when every
    B block fully or partially inside its search threshold (the center's
    ``k``-neighborhood radius plus the block diagonal) is Safe; otherwise it is
    Contributing.
    """
    blocks_by_id = {b.block_id: b for b in b_index.blocks}
    candidate_blocks = [blocks_by_id[i] for i in sorted(candidate_ids)]
    contributing: list[Block] = []
    for block in second_outer_index.blocks:
        if block.is_empty:
            continue
        if stats is not None:
            stats.blocks_examined += 1
        center = block.center
        # Cheap shortcut: if the center already lies inside a Candidate block,
        # the threshold disk trivially touches a Candidate block.
        if any(cb.rect.contains_point(center) for cb in candidate_blocks):
            contributing.append(block)
            if stats is not None:
                stats.blocks_contributing += 1
            continue
        neighborhood = get_knn(b_index, center, k_second)
        threshold = neighborhood.farthest_distance + block.diagonal
        if any(cb.mindist(center) <= threshold for cb in candidate_blocks):
            contributing.append(block)
            if stats is not None:
                stats.blocks_contributing += 1
        else:
            if stats is not None:
                stats.blocks_pruned += 1
    return contributing


def unchained_joins_block_marking(
    a_points: Iterable[Point],
    c_index: SpatialIndex,
    b_index: SpatialIndex,
    k_ab: int,
    k_cb: int,
    stats: PruningStats | None = None,
) -> list[JoinTriplet]:
    """Procedure 4: evaluate the unchained joins with block-level pruning on C.

    The join ``A join_kNN B`` is evaluated first; the blocks of B touched by
    its output become Candidate blocks.  Blocks of C whose points cannot reach
    a Candidate block are skipped entirely in the second join.

    Produces exactly the same triplets as :func:`unchained_joins_baseline`.

    Parameters
    ----------
    a_points:
        Outer relation of the first join (A).
    c_index:
        Index over the outer relation of the second join (C); the algorithm
        needs its blocks.
    b_index:
        Index over the shared inner relation (B).
    k_ab, k_cb:
        The k values of ``A join_kNN B`` and ``C join_kNN B``.
    stats:
        Optional pruning counters.
    """
    if k_ab <= 0 or k_cb <= 0:
        raise InvalidParameterError("k_ab and k_cb must be positive")

    ab_pairs = knn_join_pairs(a_points, b_index, k_ab)
    candidate_ids = _candidate_blocks(b_index, ab_pairs)
    contributing = _contributing_blocks(c_index, b_index, candidate_ids, k_cb, stats)

    # Index the AB pairs by their inner (B) point for the ∩B step.
    ab_by_inner: dict[int, list[JoinPair]] = defaultdict(list)
    for pair in ab_pairs:
        ab_by_inner[pair.inner.pid].append(pair)

    triplets: list[JoinTriplet] = []
    computed = 0
    for block in contributing:
        for c in block:
            computed += 1
            neighborhood = get_knn(b_index, c, k_cb)
            for b in neighborhood:
                for ab in ab_by_inner.get(b.pid, ()):
                    triplets.append(JoinTriplet(ab.outer, ab.inner, c))
    if stats is not None:
        stats.neighborhoods_computed += computed
        stats.points_pruned += c_index.num_points - computed
    return triplets


def choose_unchained_join_order(
    a_index: SpatialIndex,
    c_index: SpatialIndex,
    a_stats: IndexStats | None = None,
    c_stats: IndexStats | None = None,
) -> str:
    """Section 4.1.2 heuristic: which outer relation's join to evaluate first.

    Returns ``"A"`` or ``"C"`` — the relation whose join should run first.
    The more clustered relation (smaller occupied area) goes first so that
    more blocks of B stay Safe and more blocks of the *other* outer relation
    get pruned.  When neither is clustered the order does not matter and
    ``"A"`` is returned.

    ``a_stats`` / ``c_stats`` let callers with cached statistics (the engine)
    skip the O(n) recomputation.
    """
    if a_stats is None:
        a_stats = IndexStats.from_index(a_index)
    if c_stats is None:
        c_stats = IndexStats.from_index(c_index)
    if c_stats.clustering_ratio > a_stats.clustering_ratio:
        return "C"
    return "A"


def unchained_joins_auto(
    a_index: SpatialIndex,
    c_index: SpatialIndex,
    b_index: SpatialIndex,
    k_ab: int,
    k_cb: int,
    stats: PruningStats | None = None,
    order: str | None = None,
    a_stats: IndexStats | None = None,
    c_stats: IndexStats | None = None,
) -> list[JoinTriplet]:
    """Evaluate the unchained joins with the paper's join-order heuristic.

    Regardless of the internal evaluation order, triplets are always returned
    as ``(a, b, c)``.  ``order`` forces ``"A"`` or ``"C"`` first (a cached
    planning decision); when ``None`` the heuristic decides, reusing
    ``a_stats`` / ``c_stats`` when given.
    """
    if order is None:
        order = choose_unchained_join_order(a_index, c_index, a_stats, c_stats)
    elif order not in ("A", "C"):
        raise InvalidParameterError(f"order must be 'A' or 'C', got {order!r}")
    if order == "A":
        return unchained_joins_block_marking(
            list(a_index.points()), c_index, b_index, k_ab, k_cb, stats=stats
        )
    swapped = unchained_joins_block_marking(
        list(c_index.points()), a_index, b_index, k_cb, k_ab, stats=stats
    )
    return [JoinTriplet(t.c, t.b, t.a) for t in swapped]
