"""Unchained kNN-joins: ``(A join_kNN B) ∩B (C join_kNN B)`` (Section 4.1).

The conceptually correct plan evaluates both joins independently and
intersects their pair sets on the shared inner relation B (Figure 10).  The
optimized plan (Procedure 4) evaluates the first join, marks the blocks of B
that received at least one join partner as *Candidate* (all others are
*Safe*), and then prunes blocks of the second join's outer relation whose
points' neighborhoods can only fall inside Safe blocks — those points cannot
produce triplets.

Join order matters for the amount of pruning (Section 4.1.2):
:func:`choose_unchained_join_order` implements the paper's heuristic (start
with the more clustered / smaller-coverage relation) and
:func:`unchained_joins_auto` applies it.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Sequence

import numpy as np

from repro.core.stats import PruningStats
from repro.exceptions import InvalidParameterError
from repro.geometry.point import Point
from repro.index.base import SpatialIndex
from repro.index.block import Block
from repro.index.stats import IndexStats
from repro.locality.batch import get_knn_batch
from repro.locality.knn import get_knn
from repro.operators.intersection import intersect_pairs_on_inner
from repro.operators.knn_join import knn_join_pairs
from repro.operators.results import JoinPair, JoinTriplet

__all__ = [
    "unchained_joins_baseline",
    "unchained_joins_block_marking",
    "choose_unchained_join_order",
    "unchained_joins_auto",
]


def unchained_joins_baseline(
    a_points: Iterable[Point],
    c_points: Iterable[Point],
    b_index: SpatialIndex,
    k_ab: int,
    k_cb: int,
) -> list[JoinTriplet]:
    """The conceptually correct QEP of Figure 10.

    Both joins are evaluated independently and their outputs are intersected
    on B, producing triplets ``(a, b, c)``.
    """
    if k_ab <= 0 or k_cb <= 0:
        raise InvalidParameterError("k_ab and k_cb must be positive")
    ab_pairs = knn_join_pairs(a_points, b_index, k_ab)
    cb_pairs = knn_join_pairs(c_points, b_index, k_cb)
    return intersect_pairs_on_inner(ab_pairs, cb_pairs)


def _candidate_blocks(b_index: SpatialIndex, ab_pairs: Sequence[JoinPair]) -> set[int]:
    """Block ids of B blocks holding at least one joined inner point (Candidate).

    When the index is store-backed the marking is columnar: the index's
    cached row → block-id table is gathered at the joined pids' rows
    (pid lookup via the store's cached sorted-pid index), replacing one
    ``locate`` tree/grid walk per pair without any per-query O(|B|) work.
    """
    store = b_index.store
    if store is not None and len(ab_pairs):
        inner_pids = np.fromiter(
            (pair.inner.pid for pair in ab_pairs), dtype=np.int64, count=len(ab_pairs)
        )
        rows = store.rows_of_pids(np.unique(inner_pids))
        return set(np.unique(b_index.row_block_ids[rows]).tolist())
    candidates: set[int] = set()
    for pair in ab_pairs:
        block = b_index.locate(pair.inner)
        if block is not None:
            candidates.add(block.block_id)
    return candidates


def _contributing_blocks(
    second_outer_index: SpatialIndex,
    b_index: SpatialIndex,
    candidate_ids: set[int],
    k_second: int,
    stats: PruningStats | None,
) -> list[Block]:
    """Preprocessing step of Procedure 4: mark second-outer blocks.

    A block of the second join's outer relation is Non-Contributing when every
    B block fully or partially inside its search threshold (the center's
    ``k``-neighborhood radius plus the block diagonal) is Safe; otherwise it is
    Contributing.

    The per-center Candidate tests (containment, MINDIST ≤ threshold) run
    vectorized over a ``(num_candidates, 4)`` bound table instead of looping
    Python rectangles.
    """
    blocks_by_id = {b.block_id: b for b in b_index.blocks}
    candidate_blocks = [blocks_by_id[i] for i in sorted(candidate_ids)]
    if candidate_blocks:
        cand_bounds = np.array(
            [cb.rect.as_tuple() for cb in candidate_blocks], dtype=np.float64
        )
        cxmin, cymin, cxmax, cymax = cand_bounds.T
    contributing: list[Block] = []
    for block in second_outer_index.blocks:
        if block.is_empty:
            continue
        if stats is not None:
            stats.blocks_examined += 1
        if not candidate_blocks:
            if stats is not None:
                stats.blocks_pruned += 1
            continue
        center = block.center
        # Cheap shortcut: if the center already lies inside a Candidate block,
        # the threshold disk trivially touches a Candidate block.
        inside = (
            (cxmin <= center.x)
            & (center.x <= cxmax)
            & (cymin <= center.y)
            & (center.y <= cymax)
        )
        if inside.any():
            contributing.append(block)
            if stats is not None:
                stats.blocks_contributing += 1
            continue
        neighborhood = get_knn(b_index, center, k_second)
        threshold = neighborhood.farthest_distance + block.diagonal
        dx = np.maximum(0.0, np.maximum(cxmin - center.x, center.x - cxmax))
        dy = np.maximum(0.0, np.maximum(cymin - center.y, center.y - cymax))
        if (np.hypot(dx, dy) <= threshold).any():
            contributing.append(block)
            if stats is not None:
                stats.blocks_contributing += 1
        else:
            if stats is not None:
                stats.blocks_pruned += 1
    return contributing


def unchained_joins_block_marking(
    a_points: Iterable[Point],
    c_index: SpatialIndex,
    b_index: SpatialIndex,
    k_ab: int,
    k_cb: int,
    stats: PruningStats | None = None,
) -> list[JoinTriplet]:
    """Procedure 4: evaluate the unchained joins with block-level pruning on C.

    The join ``A join_kNN B`` is evaluated first; the blocks of B touched by
    its output become Candidate blocks.  Blocks of C whose points cannot reach
    a Candidate block are skipped entirely in the second join.

    Produces exactly the same triplets as :func:`unchained_joins_baseline`.

    Parameters
    ----------
    a_points:
        Outer relation of the first join (A).
    c_index:
        Index over the outer relation of the second join (C); the algorithm
        needs its blocks.
    b_index:
        Index over the shared inner relation (B).
    k_ab, k_cb:
        The k values of ``A join_kNN B`` and ``C join_kNN B``.
    stats:
        Optional pruning counters.
    """
    if k_ab <= 0 or k_cb <= 0:
        raise InvalidParameterError("k_ab and k_cb must be positive")

    ab_pairs = knn_join_pairs(a_points, b_index, k_ab)
    candidate_ids = _candidate_blocks(b_index, ab_pairs)
    contributing = _contributing_blocks(c_index, b_index, candidate_ids, k_cb, stats)

    # Index the AB pairs by their inner (B) point for the ∩B step.
    ab_by_inner: dict[int, list[JoinPair]] = defaultdict(list)
    for pair in ab_pairs:
        ab_by_inner[pair.inner.pid].append(pair)

    # Second join over the Contributing blocks only, batched: the ∩B probe
    # walks each neighborhood's pid column and materializes no B point that
    # is not already part of an AB pair.
    c_points: list[Point] = []
    for block in contributing:
        c_points.extend(block.points)
    triplets: list[JoinTriplet] = []
    for c, neighborhood in zip(c_points, get_knn_batch(b_index, c_points, k_cb)):
        for b_pid in neighborhood.pid_array.tolist():
            for ab in ab_by_inner.get(b_pid, ()):
                triplets.append(JoinTriplet(ab.outer, ab.inner, c))
    if stats is not None:
        stats.neighborhoods_computed += len(c_points)
        stats.points_pruned += c_index.num_points - len(c_points)
    return triplets


def choose_unchained_join_order(
    a_index: SpatialIndex,
    c_index: SpatialIndex,
    a_stats: IndexStats | None = None,
    c_stats: IndexStats | None = None,
) -> str:
    """Section 4.1.2 heuristic: which outer relation's join to evaluate first.

    Returns ``"A"`` or ``"C"`` — the relation whose join should run first.
    The more clustered relation (smaller occupied area) goes first so that
    more blocks of B stay Safe and more blocks of the *other* outer relation
    get pruned.  When neither is clustered the order does not matter and
    ``"A"`` is returned.

    ``a_stats`` / ``c_stats`` let callers with cached statistics (the engine)
    skip the O(n) recomputation.
    """
    if a_stats is None:
        a_stats = IndexStats.from_index(a_index)
    if c_stats is None:
        c_stats = IndexStats.from_index(c_index)
    if c_stats.clustering_ratio > a_stats.clustering_ratio:
        return "C"
    return "A"


def unchained_joins_auto(
    a_index: SpatialIndex,
    c_index: SpatialIndex,
    b_index: SpatialIndex,
    k_ab: int,
    k_cb: int,
    stats: PruningStats | None = None,
    order: str | None = None,
    a_stats: IndexStats | None = None,
    c_stats: IndexStats | None = None,
) -> list[JoinTriplet]:
    """Evaluate the unchained joins with the paper's join-order heuristic.

    Regardless of the internal evaluation order, triplets are always returned
    as ``(a, b, c)``.  ``order`` forces ``"A"`` or ``"C"`` first (a cached
    planning decision); when ``None`` the heuristic decides, reusing
    ``a_stats`` / ``c_stats`` when given.
    """
    if order is None:
        order = choose_unchained_join_order(a_index, c_index, a_stats, c_stats)
    elif order not in ("A", "C"):
        raise InvalidParameterError(f"order must be 'A' or 'C', got {order!r}")
    if order == "A":
        return unchained_joins_block_marking(
            list(a_index.points()), c_index, b_index, k_ab, k_cb, stats=stats
        )
    swapped = unchained_joins_block_marking(
        list(c_index.points()), a_index, b_index, k_cb, k_ab, stats=stats
    )
    return [JoinTriplet(t.c, t.b, t.a) for t in swapped]
