"""Queries with two kNN-joins (Section 4 of the paper).

The kNN-join is not symmetric, so a query over three relations A, B, C can
combine its two joins in two non-equivalent ways:

* **unchained** — ``(A join_kNN B) ∩B (C join_kNN B)``: both joins share B as
  their inner relation.  Evaluating either join first and feeding its output
  into the other is *incorrect* (Figures 8–9); the correct plan evaluates the
  joins independently and intersects on B (Figure 10).  Procedure 4 adds
  block-level pruning on the second join's outer relation.
* **chained** — ``(A join_kNN B) ∩ (B join_kNN C)`` (A → B → C): all three
  QEPs of Figure 13 are equivalent; QEP3 (Nested Join) avoids computing
  neighborhoods for B points that never appear in the first join's output and
  becomes strictly better with a neighborhood cache.
"""

from repro.core.two_joins.unchained import (
    unchained_joins_baseline,
    unchained_joins_block_marking,
    choose_unchained_join_order,
    unchained_joins_auto,
)
from repro.core.two_joins.chained import (
    chained_joins_qep1,
    chained_joins_qep2,
    chained_joins_nested,
)

__all__ = [
    "unchained_joins_baseline",
    "unchained_joins_block_marking",
    "choose_unchained_join_order",
    "unchained_joins_auto",
    "chained_joins_qep1",
    "chained_joins_qep2",
    "chained_joins_nested",
]
