"""Chained kNN-joins: ``A → B → C`` (Section 4.2).

The query retrieves triplets ``(a, b, c)`` where ``b`` is a k_AB nearest
neighbor of ``a`` and ``c`` is a k_BC nearest neighbor of ``b``.  All three
QEPs of Figure 13 are equivalent:

* **QEP1** (right deep): materialize ``B join_kNN C`` first, then join A with
  its result.
* **QEP2** (join intersection): evaluate both joins independently and
  intersect on B.
* **QEP3** (nested join): for every ``a``, find its B neighbors, and only for
  those B points find C neighbors.  QEP3 skips B points that never appear in
  the first join's output, but recomputes the neighborhood of a B point that
  is the neighbor of several A points — unless a cache keyed by the B point is
  used (Section 4.2.1, Figure 24).
"""

from __future__ import annotations

from typing import Iterable, MutableMapping

from repro.core.stats import PruningStats
from repro.exceptions import InvalidParameterError
from repro.geometry.point import Point
from repro.index.base import SpatialIndex
from repro.locality.batch import get_knn_batch
from repro.locality.knn import get_knn
from repro.locality.neighborhood import Neighborhood
from repro.operators.intersection import pairs_to_triplets
from repro.operators.knn_join import knn_join_pairs
from repro.operators.results import JoinPair, JoinTriplet

__all__ = ["chained_joins_qep1", "chained_joins_qep2", "chained_joins_nested"]


def chained_joins_qep1(
    a_points: Iterable[Point],
    b_points: Iterable[Point],
    b_index: SpatialIndex,
    c_index: SpatialIndex,
    k_ab: int,
    k_bc: int,
) -> list[JoinTriplet]:
    """QEP1: right-deep plan — materialize ``B join_kNN C`` before joining A.

    No output can be produced until the inner join is complete, and the inner
    join computes a C-neighborhood for *every* B point, even those that never
    match any A point.
    """
    if k_ab <= 0 or k_bc <= 0:
        raise InvalidParameterError("k_ab and k_bc must be positive")
    bc_pairs = knn_join_pairs(b_points, c_index, k_bc)
    triplets: list[JoinTriplet] = []
    bc_by_outer: dict[int, list[JoinPair]] = {}
    for pair in bc_pairs:
        bc_by_outer.setdefault(pair.outer.pid, []).append(pair)
    for a in a_points:
        neighborhood = get_knn(b_index, a, k_ab)
        for b in neighborhood:
            for bc in bc_by_outer.get(b.pid, ()):
                triplets.append(JoinTriplet(a, b, bc.inner))
    return triplets


def chained_joins_qep2(
    a_points: Iterable[Point],
    b_points: Iterable[Point],
    b_index: SpatialIndex,
    c_index: SpatialIndex,
    k_ab: int,
    k_bc: int,
) -> list[JoinTriplet]:
    """QEP2: evaluate ``A join_kNN B`` and ``B join_kNN C`` independently, then ∩B.

    Like QEP1 it blindly computes the C-neighborhood of every B point; the
    extra ``∩B`` operator is the structural difference the paper points out.
    """
    if k_ab <= 0 or k_bc <= 0:
        raise InvalidParameterError("k_ab and k_bc must be positive")
    ab_pairs = knn_join_pairs(a_points, b_index, k_ab)
    bc_pairs = knn_join_pairs(b_points, c_index, k_bc)
    return pairs_to_triplets(ab_pairs, bc_pairs)


def chained_joins_nested(
    a_points: Iterable[Point],
    b_index: SpatialIndex,
    c_index: SpatialIndex,
    k_ab: int,
    k_bc: int,
    cache: bool = True,
    stats: PruningStats | None = None,
    neighborhood_cache: MutableMapping[int, Neighborhood] | None = None,
) -> list[JoinTriplet]:
    """QEP3: nested join, optionally caching B→C neighborhoods.

    The C-neighborhood of a B point is computed only when that point appears
    in the neighborhood of some A point.  With ``cache=True`` (the paper's
    recommended variant) the neighborhood of each distinct B point is computed
    at most once, even when it neighbors many A points.

    ``neighborhood_cache`` optionally supplies the B→C cache mapping (pid →
    neighborhood) so that several queries over the same B/C relations and
    ``k_bc`` — e.g. a batch executed by the engine — share one cache and warm
    it for each other.  Callers are responsible for only sharing a cache
    between compatible queries.

    Produces exactly the same triplets as QEP1 and QEP2.
    """
    if k_ab <= 0 or k_bc <= 0:
        raise InvalidParameterError("k_ab and k_bc must be positive")
    if neighborhood_cache is None:
        neighborhood_cache = {}
    a_list = a_points if isinstance(a_points, list) else list(a_points)
    triplets: list[JoinTriplet] = []
    for a, b_neighborhood in zip(a_list, get_knn_batch(b_index, a_list, k_ab)):
        # Probe the cache with the pid column; the member points themselves
        # are materialized once (they appear in every output triplet anyway).
        b_pids = b_neighborhood.pid_array.tolist()
        for b, b_pid in zip(b_neighborhood.points, b_pids):
            if cache:
                c_neighborhood = neighborhood_cache.get(b_pid)
                if c_neighborhood is None:
                    if stats is not None:
                        stats.cache_misses += 1
                        stats.neighborhoods_computed += 1
                    c_neighborhood = get_knn(c_index, b, k_bc)
                    neighborhood_cache[b_pid] = c_neighborhood
                else:
                    if stats is not None:
                        stats.cache_hits += 1
            else:
                if stats is not None:
                    stats.neighborhoods_computed += 1
                c_neighborhood = get_knn(c_index, b, k_bc)
            for c in c_neighborhood:
                triplets.append(JoinTriplet(a, b, c))
    return triplets
