"""Execution counters shared by the optimized algorithms.

The paper's figures are wall-clock times, but the *mechanism* behind every
speed-up is pruning: outer points or whole blocks whose neighborhoods are never
computed.  The optimized algorithms optionally fill a :class:`PruningStats`
object so tests and benchmarks can assert that pruning actually happened (and
how much), independently of machine speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PruningStats"]


@dataclass
class PruningStats:
    """Counters describing how much work an optimized algorithm avoided."""

    #: Outer points whose neighborhood was actually computed.
    neighborhoods_computed: int = 0
    #: Outer points pruned without a neighborhood computation.
    points_pruned: int = 0
    #: Blocks examined during a preprocessing phase.
    blocks_examined: int = 0
    #: Blocks marked Non-Contributing (their points are skipped wholesale).
    blocks_pruned: int = 0
    #: Blocks marked Contributing.
    blocks_contributing: int = 0
    #: Blocks never examined because a closed contour ended the scan early.
    blocks_skipped_by_contour: int = 0
    #: Cache hits (chained-join neighborhood cache).
    cache_hits: int = 0
    #: Cache misses.
    cache_misses: int = 0
    #: Index blocks admitted into a restricted locality (2-kNN-select).
    locality_blocks: int = 0

    def merge(self, other: "PruningStats") -> None:
        """Accumulate ``other`` into this object (used by multi-phase plans)."""
        self.neighborhoods_computed += other.neighborhoods_computed
        self.points_pruned += other.points_pruned
        self.blocks_examined += other.blocks_examined
        self.blocks_pruned += other.blocks_pruned
        self.blocks_contributing += other.blocks_contributing
        self.blocks_skipped_by_contour += other.blocks_skipped_by_contour
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.locality_blocks += other.locality_blocks

    @property
    def points_considered(self) -> int:
        """Total outer points the algorithm looked at."""
        return self.neighborhoods_computed + self.points_pruned

    @property
    def prune_fraction(self) -> float:
        """Fraction of outer points pruned (0.0 when nothing was considered)."""
        total = self.points_considered
        return self.points_pruned / total if total else 0.0
