"""kNN-select on the *outer* relation of a kNN-join (Section 3, Figure 3).

Unlike the inner-relation case, pushing the selection below the outer relation
of a kNN-join is a valid transformation:

    (E1 join_kNN E2) ∩ (sigma_{kσ,f}(E1) × E2)  ≡  sigma_{kσ,f}(E1) join_kNN E2

Outer points excluded by the selection would have their join output discarded
by the final filter anyway, so joining them is pure waste.  The push-down plan
is therefore both correct and cheaper; this module provides both plans (QEP1 =
push-down, QEP2 = select-after-join) so tests and benchmarks can confirm the
equivalence and quantify the saving.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.stats import PruningStats
from repro.exceptions import InvalidParameterError
from repro.geometry.point import Point
from repro.index.base import SpatialIndex
from repro.locality.knn import get_knn
from repro.operators.knn_join import knn_join_pairs
from repro.operators.results import JoinPair

__all__ = ["outer_select_join_pushdown", "outer_select_join_after"]


def outer_select_join_pushdown(
    outer_index: SpatialIndex,
    inner_index: SpatialIndex,
    focal: Point,
    k_join: int,
    k_select: int,
    stats: PruningStats | None = None,
) -> list[JoinPair]:
    """QEP1 of Figure 3: apply the kNN-select to E1 first, then join.

    Only the kσ points of ``E1`` nearest to ``focal`` are joined against
    ``E2``.  ``stats`` (optional) counts the selection's neighborhood plus
    one per selected outer point.
    """
    if k_join <= 0 or k_select <= 0:
        raise InvalidParameterError("k_join and k_select must be positive")
    selected_outer = get_knn(outer_index, focal, k_select)
    if stats is not None:
        stats.neighborhoods_computed += 1
    return knn_join_pairs(selected_outer.points, inner_index, k_join, stats=stats)


def outer_select_join_after(
    outer: Iterable[Point],
    outer_index: SpatialIndex,
    inner_index: SpatialIndex,
    focal: Point,
    k_join: int,
    k_select: int,
) -> list[JoinPair]:
    """QEP2 of Figure 3: join every outer point, then filter by the selection.

    Kept as the reference plan; produces the same pairs as the push-down.
    """
    if k_join <= 0 or k_select <= 0:
        raise InvalidParameterError("k_join and k_select must be positive")
    selected_outer = get_knn(outer_index, focal, k_select)
    selected_pids = selected_outer.pids
    pairs = knn_join_pairs(outer, inner_index, k_join)
    return [pair for pair in pairs if pair.outer.pid in selected_pids]
