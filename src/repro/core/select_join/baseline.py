"""Conceptually correct QEP for a kNN-select on the inner relation of a kNN-join.

The correct plan (Figure 1) performs the full kNN-join first and only then
applies the selection to the join's inner column:

1. ``sigma_{kσ, f}(E2)`` — the neighborhood of the focal point ``f`` in E2.
2. ``E1 join_kNN E2`` — for *every* outer point, compute its k⋈-neighborhood
   in E2.
3. Keep the pairs whose inner point also belongs to the selection result.

This plan is correct but wasteful: it computes a neighborhood for every outer
point even when that neighborhood cannot possibly overlap the selection
result.  It is the baseline that Figures 19–21 compare against.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.stats import PruningStats
from repro.exceptions import InvalidParameterError
from repro.geometry.point import Point
from repro.index.base import SpatialIndex
from repro.locality.batch import get_knn_batch
from repro.locality.knn import get_knn
from repro.operators.results import JoinPair

__all__ = ["select_join_baseline"]


def select_join_baseline(
    outer: Iterable[Point],
    inner_index: SpatialIndex,
    focal: Point,
    k_join: int,
    k_select: int,
    stats: PruningStats | None = None,
) -> list[JoinPair]:
    """Evaluate ``(E1 join_kNN E2) ∩ (E1 × sigma_{kσ,f}(E2))`` the conceptually correct way.

    The per-outer-point neighborhoods run through the batched columnar
    kernel (:func:`~repro.locality.batch.get_knn_batch`), as the optimized
    algorithms' join phases do.  This matters for the cost model's unit
    assumption: one baseline neighborhood must cost roughly the same as one
    optimized-join-phase neighborhood, otherwise "baseline = |E1| units" and
    "counting = survivors + per-tuple checks" are not comparable and the
    planner's ranking — static or calibrated — mispredicts wall-clock.

    Parameters
    ----------
    outer:
        The outer relation ``E1``.
    inner_index:
        Spatial index over the inner relation ``E2``.
    focal:
        Focal point ``f`` of the kNN-select on ``E2``.
    k_join:
        ``k⋈`` — the k value of the join.
    k_select:
        ``kσ`` — the k value of the selection.
    stats:
        Optional work counters (one neighborhood per outer point; nothing is
        ever pruned here).

    Returns
    -------
    list[JoinPair]
        All pairs ``(e1, e2)`` with ``e2`` in both the k⋈-neighborhood of
        ``e1`` and the kσ-neighborhood of ``f``.
    """
    if k_join <= 0 or k_select <= 0:
        raise InvalidParameterError("k_join and k_select must be positive")
    selection = get_knn(inner_index, focal, k_select)
    outer_list = outer if isinstance(outer, list) else list(outer)
    if stats is not None:
        stats.neighborhoods_computed += len(outer_list)
    pairs: list[JoinPair] = []
    for e1, neighborhood in zip(
        outer_list, get_knn_batch(inner_index, outer_list, k_join)
    ):
        for e2 in neighborhood.intersection(selection):
            pairs.append(JoinPair(e1, e2))
    return pairs
