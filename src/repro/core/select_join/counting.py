"""The Counting algorithm (Procedure 1 of the paper).

For each outer point ``e1`` the algorithm decides — *without* computing the
neighborhood of ``e1`` — whether that neighborhood could possibly intersect the
neighborhood of the focal point ``f``:

1. ``searchThreshold`` = distance from ``e1`` to the nearest point of
   ``nbr_f`` (the selection result).
2. Scan the blocks of E2 in increasing MAXDIST order from ``e1`` and sum the
   point counts of blocks *completely* contained within the search threshold.
3. If the count exceeds ``k⋈``, at least ``k⋈`` points of E2 are strictly
   closer to ``e1`` than every point of ``nbr_f``; the neighborhood of ``e1``
   cannot contain any point of ``nbr_f`` and ``e1`` is skipped.
4. Otherwise the neighborhood of ``e1`` is computed and intersected with
   ``nbr_f``.

The per-tuple block scan is the algorithm's overhead; Section 3.3 explains why
it wins for sparse outer relations and loses to Block-Marking for dense ones.

Deviation from the paper's pseudocode (see DESIGN.md, "Tie handling"): a block
is counted only when its MAXDIST is *strictly* below the search threshold,
which makes the pruning decision safe even when distances tie.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.stats import PruningStats
from repro.exceptions import InvalidParameterError
from repro.geometry.point import Point
from repro.index.base import SpatialIndex
from repro.locality.knn import get_knn
from repro.operators.results import JoinPair

__all__ = ["select_join_counting"]


def select_join_counting(
    outer: Iterable[Point],
    inner_index: SpatialIndex,
    focal: Point,
    k_join: int,
    k_select: int,
    stats: PruningStats | None = None,
) -> list[JoinPair]:
    """Evaluate a kNN-select on the inner relation of a kNN-join by Counting.

    Produces exactly the same pairs as
    :func:`repro.core.select_join.baseline.select_join_baseline`.

    Parameters
    ----------
    outer:
        The outer relation ``E1``.
    inner_index:
        Spatial index over the inner relation ``E2``.
    focal:
        Focal point ``f`` of the kNN-select on ``E2``.
    k_join, k_select:
        The join's and the selection's k values (``k⋈`` and ``kσ``).
    stats:
        Optional counters filled with pruning information.
    """
    if k_join <= 0 or k_select <= 0:
        raise InvalidParameterError("k_join and k_select must be positive")

    selection = get_knn(inner_index, focal, k_select)  # nbr_f
    pairs: list[JoinPair] = []
    for e1 in outer:
        if _can_skip(inner_index, e1, selection.distance_to_nearest_member(e1), k_join):
            if stats is not None:
                stats.points_pruned += 1
            continue
        if stats is not None:
            stats.neighborhoods_computed += 1
        neighborhood = get_knn(inner_index, e1, k_join)
        for e2 in neighborhood.intersection(selection):
            pairs.append(JoinPair(e1, e2))
    return pairs


def _can_skip(
    inner_index: SpatialIndex,
    e1: Point,
    search_threshold: float,
    k_join: int,
) -> bool:
    """True when the neighborhood of ``e1`` provably misses the selection result.

    Procedure 1 scans blocks in MAXDIST order, accumulating the counts of
    blocks completely inside ``search_threshold``, and stops as soon as the
    running count exceeds ``k_join`` or a block reaches beyond the threshold.
    Because the scan is in MAXDIST order, its final decision depends only on
    the *total* count of points in blocks whose MAXDIST is below the
    threshold; the early exit is a constant-factor optimization.  We therefore
    compute that total with one vectorized pass over the block table, which is
    both faster in Python and bit-for-bit the same decision.
    """
    maxdists = inner_index.maxdists(e1)
    count = int(inner_index.block_counts[maxdists < search_threshold].sum())
    return count > k_join
