"""The Counting algorithm (Procedure 1 of the paper).

For each outer point ``e1`` the algorithm decides — *without* computing the
neighborhood of ``e1`` — whether that neighborhood could possibly intersect the
neighborhood of the focal point ``f``:

1. ``searchThreshold`` = distance from ``e1`` to the nearest point of
   ``nbr_f`` (the selection result).
2. Scan the blocks of E2 in increasing MAXDIST order from ``e1`` and sum the
   point counts of blocks *completely* contained within the search threshold.
3. If the count exceeds ``k⋈``, at least ``k⋈`` points of E2 are strictly
   closer to ``e1`` than every point of ``nbr_f``; the neighborhood of ``e1``
   cannot contain any point of ``nbr_f`` and ``e1`` is skipped.
4. Otherwise the neighborhood of ``e1`` is computed and intersected with
   ``nbr_f``.

The per-tuple block scan is the algorithm's overhead; Section 3.3 explains why
it wins for sparse outer relations and loses to Block-Marking for dense ones.

Since the columnar refactor the prune phase runs as array kernels over the
whole outer relation at once: search thresholds come from one chunked
distance-matrix pass against the selection's coordinate columns, the
block-count test from a chunked MAXDIST matrix against E2's block-bound
table.  Only the surviving outer rows are materialized as points (each then
runs the ordinary ``getkNN`` + vectorized intersection); a pruned row never
becomes a Python object.

Deviation from the paper's pseudocode (see DESIGN.md, "Tie handling"): a block
is counted only when its MAXDIST is *strictly* below the search threshold,
which makes the pruning decision safe even when distances tie.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.stats import PruningStats
from repro.exceptions import InvalidParameterError
from repro.geometry.point import Point
from repro.index.base import SpatialIndex
from repro.locality.batch import get_knn_batch
from repro.locality.knn import get_knn
from repro.locality.neighborhood import Neighborhood
from repro.operators.results import JoinPair
from repro.storage.pointstore import PointStore

__all__ = ["select_join_counting"]

#: Outer rows per chunk of the vectorized prune phase.  Bounds the transient
#: (chunk x num_blocks) MAXDIST matrix to a few megabytes.
_PRUNE_CHUNK = 1024


def select_join_counting(
    outer: Iterable[Point] | PointStore,
    inner_index: SpatialIndex,
    focal: Point,
    k_join: int,
    k_select: int,
    stats: PruningStats | None = None,
) -> list[JoinPair]:
    """Evaluate a kNN-select on the inner relation of a kNN-join by Counting.

    Produces exactly the same pairs as
    :func:`repro.core.select_join.baseline.select_join_baseline`.

    Parameters
    ----------
    outer:
        The outer relation ``E1`` — an iterable of points or, on the columnar
        fast path, a :class:`PointStore` (pruned rows then never materialize
        point objects).
    inner_index:
        Spatial index over the inner relation ``E2``.
    focal:
        Focal point ``f`` of the kNN-select on ``E2``.
    k_join, k_select:
        The join's and the selection's k values (``k⋈`` and ``kσ``).
    stats:
        Optional counters filled with pruning information.
    """
    if k_join <= 0 or k_select <= 0:
        raise InvalidParameterError("k_join and k_select must be positive")

    selection = get_knn(inner_index, focal, k_select)  # nbr_f

    if isinstance(outer, PointStore):
        xs, ys = outer.xs, outer.ys
        survivors = _surviving_rows(xs, ys, inner_index, selection, k_join)
        if stats is not None:
            stats.points_pruned += len(xs) - len(survivors)
        outer_points = outer.materialize(survivors)
    else:
        outer_list = list(outer)
        n = len(outer_list)
        xs = np.fromiter((p.x for p in outer_list), dtype=np.float64, count=n)
        ys = np.fromiter((p.y for p in outer_list), dtype=np.float64, count=n)
        survivors = _surviving_rows(xs, ys, inner_index, selection, k_join)
        if stats is not None:
            stats.points_pruned += n - len(survivors)
        outer_points = [outer_list[int(row)] for row in survivors]

    if stats is not None:
        stats.neighborhoods_computed += len(outer_points)
    pairs: list[JoinPair] = []
    for e1, neighborhood in zip(
        outer_points, get_knn_batch(inner_index, outer_points, k_join)
    ):
        for e2 in neighborhood.intersection(selection):
            pairs.append(JoinPair(e1, e2))
    return pairs


def _surviving_rows(
    xs: np.ndarray,
    ys: np.ndarray,
    inner_index: SpatialIndex,
    selection: Neighborhood,
    k_join: int,
) -> np.ndarray:
    """Row indices of the outer points Procedure 1 cannot skip.

    Procedure 1 scans blocks in MAXDIST order, accumulating the counts of
    blocks completely inside the per-point ``searchThreshold``, and skips the
    point as soon as the running count exceeds ``k⋈``.  Because the scan is
    in MAXDIST order, its final decision depends only on the *total* count of
    points in blocks whose MAXDIST is strictly below the threshold, so the
    whole prune phase collapses into two chunked matrix kernels — thresholds
    against the selection's coordinate columns, block counts against the
    block-bound table — that make bit-for-bit the same decision as the
    per-point scan.
    """
    sel_coords = selection.coords  # (m, 2); the selection is non-empty (k >= 1)
    counts = inner_index.block_counts.astype(np.float64)
    bounds = inner_index.block_bounds
    bxmin, bymin, bxmax, bymax = bounds.T

    survivors: list[np.ndarray] = []
    for start in range(0, len(xs), _PRUNE_CHUNK):
        cx = xs[start : start + _PRUNE_CHUNK, None]
        cy = ys[start : start + _PRUNE_CHUNK, None]
        # searchThreshold per outer point: distance to the nearest selection member.
        thresholds = np.hypot(
            cx - sel_coords[None, :, 0], cy - sel_coords[None, :, 1]
        ).min(axis=1)
        # MAXDIST from every chunk point to every E2 block.
        dx = np.maximum(np.abs(cx - bxmin[None, :]), np.abs(cx - bxmax[None, :]))
        dy = np.maximum(np.abs(cy - bymin[None, :]), np.abs(cy - bymax[None, :]))
        inside = np.hypot(dx, dy) < thresholds[:, None]
        enclosed_counts = inside @ counts
        keep = np.nonzero(enclosed_counts <= k_join)[0] + start
        survivors.append(keep)
    return np.concatenate(survivors) if survivors else np.empty(0, dtype=np.int64)
