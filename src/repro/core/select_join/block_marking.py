"""The Block-Marking algorithm (Procedures 2 and 3 of the paper).

Instead of testing every outer point individually (as Counting does), Block-
Marking spends a preprocessing pass on the *blocks* of the outer relation E1:
a block is marked Non-Contributing when no point inside it can possibly have a
neighborhood (in E2) that intersects the neighborhood of the focal point
``f``; otherwise it is Contributing.  Only points in Contributing blocks are
then joined.

The Non-Contributing test for a block ``NC`` (Figure 5 / Theorem 1):

    r + d + f_farthest < f_center

where ``r`` is the distance from the block's center to the farthest of the
center's ``k⋈`` nearest E2 points, ``d`` is the block diagonal, ``f_farthest``
is the distance from ``f`` to the farthest point of its neighborhood, and
``f_center`` is the distance from ``f`` to the block center.  Theorem 1 shows
the block center yields the tightest such bound.

Preprocessing scans E1's blocks in MINDIST order from ``f`` and stops early
when a *closed contour* of Non-Contributing blocks has been found: once every
block scanned after the first Non-Contributing one (at MAXDIST ``M`` from
``f``) is also Non-Contributing and a block with MINDIST >= M is reached, all
remaining blocks are Non-Contributing without being examined (Figure 6).

Deviation from the paper's pseudocode (see DESIGN.md): the early-exit test
applies only once a contour has started (``M > 0``); the literal pseudocode
would exit immediately because ``M`` is initialised to 0.

Columnar behaviour: blocks hold member-row arrays, not point objects, so the
preprocessing pass touches no points at all — only the Contributing blocks'
rows are materialized in the join phase, and each per-point neighborhood
intersection runs on pid arrays (:meth:`Neighborhood.intersection`).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.stats import PruningStats
from repro.exceptions import InvalidParameterError
from repro.geometry.point import Point
from repro.index.base import SpatialIndex
from repro.index.block import Block
from repro.locality.batch import get_knn_batch
from repro.locality.knn import get_knn
from repro.locality.neighborhood import Neighborhood
from repro.operators.results import JoinPair

__all__ = ["select_join_block_marking", "preprocess_contributing_blocks"]


def preprocess_contributing_blocks(
    outer_index: SpatialIndex,
    inner_index: SpatialIndex,
    focal: Point,
    selection: Neighborhood,
    k_join: int,
    stats: PruningStats | None = None,
) -> list[Block]:
    """Procedure 3: mark the blocks of E1 as Contributing / Non-Contributing.

    Returns the list of Contributing blocks of ``outer_index``.  Blocks that
    the contour-based early exit never examines are treated as
    Non-Contributing, exactly as in the paper.

    Parameters
    ----------
    outer_index:
        Index over the outer relation ``E1`` (provides the blocks to mark).
    inner_index:
        Index over the inner relation ``E2`` (provides the neighborhoods of
        block centers).
    focal:
        The selection's focal point ``f``.
    selection:
        The already-computed neighborhood of ``f`` in E2 (``nbr_f``).
    k_join:
        The join's k value.
    stats:
        Optional pruning counters.
    """
    if k_join <= 0:
        raise InvalidParameterError("k_join must be positive")
    f_farthest = selection.farthest_distance

    contributing: list[Block] = []
    contour_maxdist = 0.0  # The paper's M; 0 means "no open contour".
    examined = 0
    for entry in outer_index.mindist_order(focal):
        block = entry.block
        if contour_maxdist > 0.0 and entry.distance >= contour_maxdist:
            # A full cycle of Non-Contributing blocks has been closed: every
            # remaining block lies outside the contour and is Non-Contributing.
            if stats is not None:
                stats.blocks_skipped_by_contour += outer_index.num_blocks - examined
            break
        examined += 1
        if stats is not None:
            stats.blocks_examined += 1
        # The geometric check runs for every block — including blocks with no
        # outer points.  An empty block never joins the Contributing list, but
        # whether it can participate in (or must break) a Non-Contributing
        # contour depends on the same geometric condition: the contour's
        # early-exit argument needs every block of the closed cycle to satisfy
        # the shielding inequality.
        center = block.center
        center_neighborhood = get_knn(inner_index, center, k_join)
        r = center_neighborhood.farthest_distance
        f_center = center.distance_to(focal)
        if r + block.diagonal + f_farthest < f_center:
            # Non-Contributing: every point of the block has k_join E2 points
            # strictly closer than any member of the selection result.
            if stats is not None:
                stats.blocks_pruned += 1
            if contour_maxdist == 0.0:
                contour_maxdist = block.maxdist(focal)
        else:
            if not block.is_empty:
                contributing.append(block)
                if stats is not None:
                    stats.blocks_contributing += 1
            contour_maxdist = 0.0  # Start a new cycle.
    return contributing


def select_join_block_marking(
    outer_index: SpatialIndex,
    inner_index: SpatialIndex,
    focal: Point,
    k_join: int,
    k_select: int,
    stats: PruningStats | None = None,
) -> list[JoinPair]:
    """Procedure 2: evaluate the select-inside-join query via Block-Marking.

    Produces exactly the same pairs as
    :func:`repro.core.select_join.baseline.select_join_baseline` run over the
    points of ``outer_index``.

    Parameters
    ----------
    outer_index:
        Index over the outer relation ``E1``.  (The algorithm is block based,
        so unlike Counting it takes the outer *index*, not a point iterable.)
    inner_index:
        Index over the inner relation ``E2``.
    focal:
        Focal point ``f`` of the kNN-select on ``E2``.
    k_join, k_select:
        The join's and the selection's k values.
    stats:
        Optional pruning counters.
    """
    if k_join <= 0 or k_select <= 0:
        raise InvalidParameterError("k_join and k_select must be positive")

    selection = get_knn(inner_index, focal, k_select)  # nbr_f
    contributing = preprocess_contributing_blocks(
        outer_index, inner_index, focal, selection, k_join, stats=stats
    )

    # Join phase: only the Contributing blocks' rows are materialized, their
    # neighborhoods are computed through the batched columnar kernel, and
    # each intersection runs on pid arrays.
    outer_points: list[Point] = []
    for block in contributing:
        outer_points.extend(block.points)
    if stats is not None:
        stats.neighborhoods_computed += len(outer_points)
    pairs: list[JoinPair] = []
    for e1, neighborhood in zip(
        outer_points, get_knn_batch(inner_index, outer_points, k_join)
    ):
        for e2 in neighborhood.intersection(selection):
            pairs.append(JoinPair(e1, e2))
    if stats is not None:
        stats.points_pruned += outer_index.num_points - len(outer_points)
    return pairs
