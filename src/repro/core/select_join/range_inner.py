"""Range-select on the inner relation of a kNN-join (footnote 1 of Section 3).

The query is ``(E1 join_kNN E2) ∩ (E1 × range(E2))``: report the pairs
``(e1, e2)`` where ``e2`` is among the k nearest E2 points to ``e1`` *and*
lies inside a rectangular window.  Exactly as with a kNN-select, pushing the
range predicate below the join's inner relation changes the answer, so the
window must be applied to the join's output — and the same block-level pruning
idea applies:

A block of E1 is Non-Contributing when the k-neighborhood of *any* point
inside it provably cannot reach the window.  Using the block center ``c`` with
``r`` = distance from ``c`` to the farthest of its k nearest E2 points and
``d`` = block diagonal, every point of the block has k E2-points within
``r + d`` of itself (Theorem 1's argument), so the block can be skipped when

    MINDIST(c, window) > r + d.

The window's role replaces the focal neighborhood of the kNN-select variant;
the rest of the Block-Marking machinery is unchanged.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.stats import PruningStats
from repro.exceptions import InvalidParameterError
from repro.geometry.distance import mindist_point_rect
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.index.base import SpatialIndex
from repro.locality.knn import get_knn
from repro.locality.neighborhood import Neighborhood
from repro.operators.results import JoinPair

__all__ = ["range_inner_join_baseline", "range_inner_join_block_marking"]


def _pairs_in_window(e1: Point, nbr: Neighborhood, window: Rect) -> list[JoinPair]:
    """Pairs for the members of ``nbr`` inside ``window`` (columnar filter).

    The window test runs over the neighborhood's coordinate columns; only
    matching members are materialized.
    """
    coords = nbr.coords
    if not len(coords):
        return []
    mask = (
        (coords[:, 0] >= window.xmin)
        & (coords[:, 0] <= window.xmax)
        & (coords[:, 1] >= window.ymin)
        & (coords[:, 1] <= window.ymax)
    )
    return [JoinPair(e1, nbr._member_at(int(i))) for i in np.nonzero(mask)[0]]


def range_inner_join_baseline(
    outer: Iterable[Point],
    inner_index: SpatialIndex,
    window: Rect,
    k_join: int,
) -> list[JoinPair]:
    """Conceptually correct plan: full kNN-join, then filter by the window."""
    if k_join <= 0:
        raise InvalidParameterError("k_join must be positive")
    pairs: list[JoinPair] = []
    for e1 in outer:
        neighborhood = get_knn(inner_index, e1, k_join)
        pairs.extend(JoinPair(e1, e2) for e2 in neighborhood if window.contains_point(e2))
    return pairs


def range_inner_join_block_marking(
    outer_index: SpatialIndex,
    inner_index: SpatialIndex,
    window: Rect,
    k_join: int,
    stats: PruningStats | None = None,
) -> list[JoinPair]:
    """Block-Marking adaptation for a rectangular range on the inner relation.

    Produces exactly the same pairs as :func:`range_inner_join_baseline` over
    the points of ``outer_index``.
    """
    if k_join <= 0:
        raise InvalidParameterError("k_join must be positive")

    pairs: list[JoinPair] = []
    pruned_points = 0
    for block in outer_index.blocks:
        if block.is_empty:
            continue
        if stats is not None:
            stats.blocks_examined += 1
        center = block.center
        center_neighborhood = get_knn(inner_index, center, k_join)
        reach = center_neighborhood.farthest_distance + block.diagonal
        if mindist_point_rect(center, window) > reach:
            # No point of this block can have a k-neighborhood that reaches
            # into the window; skip the whole block.
            if stats is not None:
                stats.blocks_pruned += 1
            pruned_points += block.count
            continue
        if stats is not None:
            stats.blocks_contributing += 1
        for e1 in block:
            if stats is not None:
                stats.neighborhoods_computed += 1
            neighborhood = get_knn(inner_index, e1, k_join)
            pairs.extend(_pairs_in_window(e1, neighborhood, window))
    if stats is not None:
        stats.points_pruned += pruned_points
    return pairs
