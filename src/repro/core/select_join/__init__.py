"""kNN-select combined with a kNN-join (Section 3 of the paper).

The query evaluated here is

    (E1 join_kNN E2) ∩ (E1 × sigma_{kσ, f}(E2))

i.e. report the pairs ``(e1, e2)`` such that ``e2`` is among the k⋈ nearest
neighbors of ``e1`` *and* among the kσ nearest neighbors of the focal point
``f``.  Pushing the selection below the join's inner relation would change the
answer (Figures 1–2), so the paper introduces the Counting and Block-Marking
algorithms, which keep the conceptually correct semantics but prune outer
points/blocks that provably cannot contribute.

The symmetric case — a kNN-select on the *outer* relation — is a valid
push-down and is provided for completeness (:mod:`outer_select`).
"""

from repro.core.select_join.baseline import select_join_baseline
from repro.core.select_join.counting import select_join_counting
from repro.core.select_join.block_marking import (
    select_join_block_marking,
    preprocess_contributing_blocks,
)
from repro.core.select_join.outer_select import (
    outer_select_join_pushdown,
    outer_select_join_after,
)
from repro.core.select_join.range_inner import (
    range_inner_join_baseline,
    range_inner_join_block_marking,
)

__all__ = [
    "select_join_baseline",
    "select_join_counting",
    "select_join_block_marking",
    "preprocess_contributing_blocks",
    "outer_select_join_pushdown",
    "outer_select_join_after",
    "range_inner_join_baseline",
    "range_inner_join_block_marking",
]
