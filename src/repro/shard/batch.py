"""Batched cross-shard kNN: many query points against a sharded relation.

The worker-side join fan-out used to run one scalar
:func:`~repro.shard.knn.sharded_knn` per driving point — a Python-level loop
whose per-point locality phase re-did the same block math thousands of
times.  This module batches the whole driving shard through a two-round
scheme built on :func:`~repro.locality.batch.get_knn_batch`:

1. **Round 1** — assign every query point to its *primary* shard (smallest
   squared MINDIST to the shard extent, via the ``block_matrices`` kernel)
   and run one batched kNN per primary-shard group.  Each point's k-th
   distance (``inf`` when the shard held fewer than k points) becomes its
   border-expansion bound ``b1``.
2. **Round 2** — for every other shard whose MINDIST can reach a point's
   bound, run one batched kNN per ``(shard, point-subset)`` and merge each
   point's partials with :func:`~repro.operators.merge.merge_neighborhoods`.

Exactness: the final k-th distance is never larger than ``b1``, so any
shard pruned by ``b1`` is also pruned by the final bound — the visited set
is a superset of what the scalar search needs, and per-shard top-k partials
merged under the library's ``(distance, pid)`` order reproduce the
unsharded neighborhood exactly (ties included: shards *at* the bound are
visited, only strictly farther ones are pruned, and the squared-space
comparison is widened by a relative epsilon so ULP noise can only widen the
visited superset, never narrow it).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro import kernels
from repro.exceptions import EmptyDatasetError, InvalidParameterError
from repro.geometry.point import Point
from repro.locality.batch import get_knn_batch
from repro.locality.neighborhood import Neighborhood
from repro.obs.flight import task_counters
from repro.operators.merge import merge_neighborhoods

__all__ = ["sharded_knn_batch"]

#: Relative widening of the squared-space bound comparison; covers the
#: ~1e-15 relative difference between ``sqrt(x*x + y*y)`` and ``hypot``.
_BOUND_SLACK = 1e-12


def sharded_knn_batch(sharded, coords, k: int) -> list[Neighborhood]:
    """Exact k-neighborhoods of many coordinates over all shards, in order.

    ``sharded`` is a :class:`~repro.shard.dataset.ShardedDataset` or a
    worker-side :class:`~repro.shard.shm.AttachedRuntime` (anything with a
    ``search_plan()``); ``coords`` is an ``(n, 2)`` array or a sequence of
    points.  Each result equals ``sharded_knn(sharded, p, k)`` member for
    member; centers of coordinate-only queries are anonymous (``pid == -1``).
    """
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    if isinstance(coords, np.ndarray):
        pts: Sequence[Point] | None = None
        coords = np.asarray(coords, dtype=np.float64)
        if coords.ndim != 2 or coords.shape[1] != 2:
            raise InvalidParameterError(
                f"expected an (n, 2) query array, got shape {coords.shape}"
            )
    else:
        pts = list(coords)
        coords = np.array([(p.x, p.y) for p in pts], dtype=np.float64)
    n = len(coords)
    if n == 0:
        return []
    datasets, extents = sharded.search_plan()
    if not len(datasets):
        raise EmptyDatasetError(f"sharded dataset {sharded.name!r} has no points")
    if len(datasets) == 1:
        queries = pts if pts is not None else coords
        return get_knn_batch(datasets[0].index, queries, k)

    ext = np.asarray(extents, dtype=np.float64)
    mind2, _ = kernels.block_matrices(
        coords[:, 0], coords[:, 1], ext[:, 0], ext[:, 1], ext[:, 2], ext[:, 3]
    )
    primary = np.argmin(mind2, axis=1)

    def group_queries(group: np.ndarray):
        # Preserve the callers' Point identities (center pids) when given;
        # coordinate-only queries stay anonymous arrays.
        if pts is not None:
            return [pts[i] for i in group.tolist()]
        return coords[group]

    # Round 1: one batched kNN per primary-shard group.
    partials: list[list[Neighborhood]] = [[] for _ in range(n)]
    bound2 = np.empty(n, dtype=np.float64)
    for sid in np.unique(primary):
        group = np.nonzero(primary == sid)[0]
        nbrs = get_knn_batch(datasets[sid].index, group_queries(group), k)
        for qi, nbr in zip(group.tolist(), nbrs):
            partials[qi].append(nbr)
            if len(nbr) >= k:
                b = nbr.farthest_distance
                bound2[qi] = b * b
            else:
                bound2[qi] = np.inf

    # Round 2: every other shard a point's bound can still reach.
    reach = mind2 <= bound2[:, None] * (1.0 + _BOUND_SLACK)
    reach[np.isinf(bound2)] = True  # under-filled: every shard may contribute
    reach[np.arange(n), primary] = False
    counters = task_counters()
    if counters is not None:
        # (point, shard) pairs the bound proved unreachable — the primary
        # visits from round 1 are neither visited-again nor pruned here.
        counters.candidates_pruned += int(
            n * len(datasets) - np.count_nonzero(reach) - n
        )
    for sid in np.nonzero(reach.any(axis=0))[0]:
        group = np.nonzero(reach[:, sid])[0]
        nbrs = get_knn_batch(datasets[sid].index, group_queries(group), k)
        for qi, nbr in zip(group.tolist(), nbrs):
            if len(nbr):
                partials[qi].append(nbr)

    out: list[Neighborhood] = []
    for qi in range(n):
        parts = partials[qi]
        if len(parts) == 1:
            out.append(parts[0])
            continue
        center = (
            pts[qi]
            if pts is not None
            else Point(float(coords[qi, 0]), float(coords[qi, 1]))
        )
        out.append(merge_neighborhoods(center, k, parts))
    return out
