"""Shared-memory shard segments: zero-copy columns for process workers.

The fork-inheritance pool (see :mod:`repro.shard.pool`) ships a shard
runtime to process workers once, at fork time.  Under that protocol every
mutation makes the forked snapshot permanently stale, so the engine had to
discard and re-fork the whole pool.  This module replaces re-forking with
**segment generations**:

- The coordinator *publishes* each relation's sharded state into one
  ``multiprocessing.shared_memory`` segment per ``(relation, version)``:
  a small pickled descriptor (shard layout, index options, payloads,
  extents) followed by the concatenated ``xs``/``ys``/``pids`` columns of
  every populated shard.
- Workers *attach* the segment named by a task's version stamp and wrap the
  columns in read-only, zero-copy numpy views — no pickling, no column
  copies, no re-fork.  Per-shard datasets (and their indexes) are rebuilt
  lazily inside the worker and cached for the generation's lifetime.
- A mutation publishes a new generation and unlinks the previous one.  On
  Linux an unlinked segment stays readable for workers still attached, so
  in-flight tasks finish against their own generation; workers drop their
  attachment when a newer generation is requested.

Segment names embed the publishing process id, so (a) workers derive names
from ``(pid, token, relation, version)`` without any side channel beyond
the fork-inherited token metadata, and (b) :func:`sweep_orphan_segments`
can garbage-collect segments whose publisher died without cleanup.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
from typing import TYPE_CHECKING, Iterator, Sequence

import numpy as np

from repro.query.dataset import Dataset
from repro.storage.pointstore import PointStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.shard.dataset import ShardedDataset

__all__ = [
    "AttachedRuntime",
    "SegmentPublisher",
    "attach_segment",
    "segment_name",
    "sweep_orphan_segments",
]

#: Array data starts at the next multiple of this after the descriptor.
_ALIGN = 16

#: ``/dev/shm`` prefix of every segment this module creates.
_PREFIX = "repro-"


def segment_name(token: str, relation: str, version: int, pid: int | None = None) -> str:
    """Deterministic segment name for one ``(publisher, relation, version)``.

    ``repro-<pid>-<digest12>`` stays under the 31-character portable limit
    for shared-memory names; the digest folds the pool token, relation and
    version, and the publisher pid prefix makes orphan sweeping possible.
    """
    digest = hashlib.sha1(
        f"{token}|{relation}|{version}".encode("utf-8")
    ).hexdigest()[:12]
    return f"{_PREFIX}{pid if pid is not None else os.getpid()}-{digest}"


def _attach_untracked(name: str):
    """Attach an existing segment without resource-tracker registration.

    The coordinator owns (and unlinks) every segment; its creation-time
    registration must be the *only* one.  The tracker's cache is a set
    keyed by name, so an attach-register/unregister pair from a worker
    would silently delete the coordinator's entry (and concurrent pairs
    race each other).  Python 3.13 has ``track=False``; older versions
    need the register call suppressed for the duration of the attach
    (safe: attaches happen on single-threaded worker processes).
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def publish_segment(token: str, sharded: "ShardedDataset"):
    """Write one relation's current sharded state into a new shm segment.

    Layout: ``<u64 descriptor length> <pickled descriptor> <pad to 16>
    <xs float64[n]> <ys float64[n]> <pids int64[n]>`` with every populated
    shard's rows contiguous.  Returns the creating segment handle; the
    caller owns its lifecycle and must eventually ``unlink`` (which also
    clears the handle's resource-tracker registration).
    """
    from multiprocessing import shared_memory

    shards = []
    columns_x: list[np.ndarray] = []
    columns_y: list[np.ndarray] = []
    columns_p: list[np.ndarray] = []
    cursor = 0
    for sid, ds in sharded.populated():
        store = ds.store
        n = len(store)
        shards.append(
            {
                "sid": sid,
                "name": ds.name,
                "start": cursor,
                "stop": cursor + n,
                "index_kind": ds.index_kind,
                "options": ds.index_options,
                "payloads": dict(store.payloads),
                "extent": ds.index.bounds.as_tuple(),
            }
        )
        columns_x.append(store.xs)
        columns_y.append(store.ys)
        columns_p.append(store.pids)
        cursor += n
    descriptor = {
        "relation": sharded.name,
        "version": sharded.version,
        "num_shards": sharded.num_shards,
        "count": cursor,
        "shards": shards,
    }
    blob = pickle.dumps(descriptor, protocol=pickle.HIGHEST_PROTOCOL)
    data_offset = ((8 + len(blob) + _ALIGN - 1) // _ALIGN) * _ALIGN
    total = data_offset + cursor * 24
    name = segment_name(token, sharded.name, sharded.version)
    try:
        shm = shared_memory.SharedMemory(name=name, create=True, size=max(total, 1))
    except FileExistsError:
        # A crashed predecessor (same pid, recycled) left the name behind.
        # Attach *tracked* so the unlink's unregister balances the attach's
        # register (pre-3.13 trackers pair them unconditionally).
        stale = shared_memory.SharedMemory(name=name)
        stale.unlink()
        stale.close()
        shm = shared_memory.SharedMemory(name=name, create=True, size=max(total, 1))
    # The creating handle stays tracker-registered on purpose: the
    # publisher's explicit unlink unregisters it (balanced), and if the
    # publisher dies without unlinking, the tracker reclaims the segment.
    try:
        shm.buf[:8] = struct.pack("<Q", len(blob))
        shm.buf[8 : 8 + len(blob)] = blob
        if cursor:
            xs = np.ndarray(cursor, np.float64, buffer=shm.buf, offset=data_offset)
            ys = np.ndarray(
                cursor, np.float64, buffer=shm.buf, offset=data_offset + cursor * 8
            )
            pids = np.ndarray(
                cursor, np.int64, buffer=shm.buf, offset=data_offset + cursor * 16
            )
            np.concatenate(columns_x, out=xs)
            np.concatenate(columns_y, out=ys)
            np.concatenate(columns_p, out=pids)
            del xs, ys, pids  # release the buffer views before handing off
    except BaseException:
        shm.unlink()
        shm.close()
        raise
    return shm


class _LazyShards(Sequence):
    """Sequence facade over an attached runtime's shards, built on demand."""

    def __init__(self, runtime: "AttachedRuntime", sids: list[int]) -> None:
        self._runtime = runtime
        self._sids = sids

    def __len__(self) -> int:
        return len(self._sids)

    def __getitem__(self, i):
        """The i-th populated shard's dataset (lazily constructed)."""
        if isinstance(i, slice):
            return [self[j] for j in range(*i.indices(len(self)))]
        return self._runtime.shard(self._sids[i])


class AttachedRuntime:
    """A worker-side, read-only view of one published relation generation.

    Implements the subset of the :class:`~repro.shard.dataset.ShardedDataset`
    protocol the task executor reads (``version`` / ``synced_version`` /
    ``shard`` / ``populated`` / ``search_plan``).  Columns are zero-copy
    views into the shared segment; per-shard datasets and their indexes are
    constructed on first touch and cached for the runtime's lifetime.
    """

    def __init__(self, shm, descriptor: dict) -> None:
        self._shm = shm
        self.name: str = descriptor["relation"]
        #: The published base-dataset version (shards are always synced).
        self.version: int = descriptor["version"]
        self.num_shards: int = descriptor["num_shards"]
        n = descriptor["count"]
        blob_len = struct.unpack("<Q", bytes(shm.buf[:8]))[0]
        data_offset = ((8 + blob_len + _ALIGN - 1) // _ALIGN) * _ALIGN
        self._xs = np.ndarray(n, np.float64, buffer=shm.buf, offset=data_offset)
        self._ys = np.ndarray(
            n, np.float64, buffer=shm.buf, offset=data_offset + n * 8
        )
        self._pids = np.ndarray(
            n, np.int64, buffer=shm.buf, offset=data_offset + n * 16
        )
        for arr in (self._xs, self._ys, self._pids):
            arr.flags.writeable = False
        self._by_sid = {entry["sid"]: entry for entry in descriptor["shards"]}
        self._shards: dict[int, Dataset] = {}
        self._plan: tuple[Sequence[Dataset], list[tuple]] | None = None

    @property
    def synced_version(self) -> int:
        """Published segments are reconciled by construction."""
        return self.version

    @property
    def nbytes(self) -> int:
        """Size of the attached shared-memory segment in bytes.

        The worker-telemetry capture path charges this to a task's
        ``shm_bytes_attached`` resource counter at attach time.
        """
        return int(self._shm.size)

    def shard(self, shard_id: int) -> Dataset | None:
        """The dataset of one shard over the segment's columns (lazy, cached)."""
        ds = self._shards.get(shard_id)
        if ds is None:
            entry = self._by_sid.get(shard_id)
            if entry is None:
                return None
            start, stop = entry["start"], entry["stop"]
            store = PointStore(
                self._xs[start:stop],
                self._ys[start:stop],
                self._pids[start:stop],
                payloads=dict(entry["payloads"]),
                validate=False,
            )
            ds = Dataset(
                entry["name"],
                store,
                index_kind=entry["index_kind"],
                **entry["options"],
            )
            self._shards[shard_id] = ds
        return ds

    def populated(self) -> Iterator[tuple[int, Dataset]]:
        """Iterate ``(shard_id, dataset)`` over the non-empty shards."""
        for sid in sorted(self._by_sid):
            yield sid, self.shard(sid)

    def search_plan(self) -> tuple[Sequence[Dataset], list[tuple]]:
        """Shards + extents for cross-shard kNN, without eager index builds.

        Extents come from the descriptor (the coordinator recorded each
        shard index's true bounds at publish time), so only the shards the
        border expansion actually visits ever build an index in the worker.
        """
        if self._plan is None:
            sids = sorted(self._by_sid)
            extents = [tuple(self._by_sid[sid]["extent"]) for sid in sids]
            self._plan = (_LazyShards(self, sids), extents)
        return self._plan

    def __len__(self) -> int:
        return len(self._xs)

    def close(self) -> None:
        """Drop cached shards and detach from the segment.

        Any still-referenced view keeps the mapping alive (``BufferError``
        is swallowed); results never hold views because neighborhoods
        pickle eagerly on their way back to the coordinator.
        """
        self._shards.clear()
        self._plan = None
        self._by_sid.clear()
        self._xs = self._ys = self._pids = None  # type: ignore[assignment]
        try:
            self._shm.close()
        except BufferError:  # a live view still pins the buffer; leave it
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AttachedRuntime(relation={self.name!r}, version={self.version}, "
            f"points={len(self)})"
        )


def attach_segment(name: str) -> AttachedRuntime:
    """Attach the named segment and wrap it in an :class:`AttachedRuntime`.

    Raises ``FileNotFoundError`` when the generation has already been
    unlinked (callers translate that into a
    :class:`~repro.exceptions.StaleShardError` retry).
    """
    shm = _attach_untracked(name)
    try:
        blob_len = struct.unpack("<Q", bytes(shm.buf[:8]))[0]
        descriptor = pickle.loads(bytes(shm.buf[8 : 8 + blob_len]))
        return AttachedRuntime(shm, descriptor)
    except BaseException:
        shm.close()
        raise


class SegmentPublisher:
    """Coordinator-side generation manager: one live segment per relation.

    ``publish`` writes the relation's current state and unlinks the
    previously published generation; ``close`` unlinks everything.  The
    publisher never re-publishes an unchanged version.
    """

    def __init__(self, token: str) -> None:
        self.token = token
        self._live: dict[str, tuple[int, str, object]] = {}

    def publish(self, sharded: "ShardedDataset") -> str:
        """Publish ``sharded``'s current version; returns the segment name.

        Idempotent per version: re-publishing the live generation is a
        no-op.  The previous generation is unlinked (attached workers keep
        reading it until they drop their attachment).
        """
        current = self._live.get(sharded.name)
        if current is not None and current[0] == sharded.version:
            return current[1]
        handle = publish_segment(self.token, sharded)
        if current is not None:
            self._unlink(current[2])
        self._live[sharded.name] = (sharded.version, handle.name, handle)
        return handle.name

    def forget(self, relation: str) -> None:
        """Unlink the live generation of one relation (unregistered dataset)."""
        current = self._live.pop(relation, None)
        if current is not None:
            self._unlink(current[2])

    @staticmethod
    def _unlink(handle) -> None:
        try:
            handle.unlink()
        except FileNotFoundError:
            pass
        try:
            handle.close()
        except BufferError:  # pragma: no cover - defensive
            pass

    def names(self) -> dict[str, str]:
        """Relation → live segment name (the leak tests scan these)."""
        return {rel: name for rel, (_, name, _) in self._live.items()}

    def close(self) -> None:
        """Unlink every live generation."""
        for current in self._live.values():
            self._unlink(current[2])
        self._live.clear()

    def __enter__(self) -> "SegmentPublisher":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def sweep_orphan_segments(shm_dir: str = "/dev/shm") -> list[str]:
    """Unlink ``repro-*`` segments whose publishing process is dead.

    A coordinator killed without ``close()`` leaks its live generations;
    the embedded pid makes them identifiable.  Returns the names removed.
    Harmless (and empty) on platforms without a visible shm directory.
    """
    removed: list[str] = []
    try:
        entries = os.listdir(shm_dir)
    except OSError:
        return removed
    for entry in entries:
        if not entry.startswith(_PREFIX):
            continue
        parts = entry.split("-")
        if len(parts) != 3 or not parts[1].isdigit():
            continue
        pid = int(parts[1])
        try:
            os.kill(pid, 0)
            continue  # publisher alive; not an orphan
        except ProcessLookupError:
            pass
        except PermissionError:
            continue  # alive, owned by someone else
        try:
            stale = _attach_untracked(entry)
            stale.unlink()
            stale.close()
            removed.append(entry)
        except FileNotFoundError:  # pragma: no cover - raced another sweeper
            continue
    return removed
