"""The :class:`ShardedEngine`: plan once, fan out across shards, merge.

The sharded engine wraps a :class:`~repro.engine.session.SpatialEngine` for
everything PR 1 already amortizes — the signature-keyed plan cache, the
per-version statistics cache, EXPLAIN records — and replaces *execution*:
each registered relation is spatially partitioned into per-shard datasets
with their own indexes (:class:`~repro.shard.dataset.ShardedDataset`), and a
planned query fans out across the shards of its driving relation on a worker
pool (:class:`~repro.shard.pool.ShardWorkerPool`), with cross-shard kNN
semantics handled by border expansion and a global merge/re-rank
(:mod:`repro.shard.knn`, :mod:`repro.operators.merge`).

The inner engine never builds a monolithic index: it is constructed with
``eager_build=False`` and a ``stats_compute`` override that aggregates
per-shard statistics (:meth:`IndexStats.aggregate`), so the planner sees
relation-level statistics without the O(n) full-index walk.

Consistency model.  Mutations route to the owning shard and invalidate the
inner engine's caches; the worker pool is *refreshed*, not discarded: under
the shared-memory generation protocol (:mod:`repro.shard.shm`) the mutated
relation is published as a new segment generation and process workers attach
it zero-copy, so the pool — and the fork-inherited snapshot it amortizes —
survives the mutation (``shard_pool_reuses_total``).  Only when segments are
off (or the registration set itself changes) is the pool discarded and
re-forked (``shard_pool_respawns_total``).  Every dispatched task carries
the dataset versions its plan was derived against and re-validates them at
execution time; a :class:`~repro.exceptions.StaleShardError` makes the
engine resync, re-plan and retry — a plan is never served against stale
per-shard state, even when the base dataset was mutated behind the engine's
back.
"""

from __future__ import annotations

import itertools
import os
import threading
from time import perf_counter
from typing import Callable, Iterable, Mapping, Sequence

from repro import kernels
from repro.engine.executor import ReadWriteLock
from repro.engine.explain import Explain
from repro.engine.session import SpatialEngine
from repro.exceptions import StaleShardError, UnsupportedQueryError
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.index.stats import IndexStats
from repro.kernels import dispatch
from repro.obs import Observability
from repro.obs.events import Event
from repro.obs.flight import ResourceUsage, record_usage
from repro.obs.metrics import LATENCY_BUCKETS
from repro.obs.trace import Span, Trace
from repro.planner.optimizer import Optimizer
from repro.planner.plan import PhysicalPlan
from repro.query.dataset import Dataset, IndexKind
from repro.query.query import Query
from repro.query.results import QueryResult
from repro.shard.dataset import ShardedDataset
from repro.shard.executor import sharded_execute
from repro.shard.partitioner import ShardMap
from repro.shard.pool import ShardWorkerPool, available_cpus
from repro.storage.update import AppliedUpdate, UpdateBatch

__all__ = ["ShardedEngine"]

_TOKENS = itertools.count()


class ShardedEngine:
    """A sharded, data-parallel serving engine over spatial relations.

    Parameters
    ----------
    num_shards:
        Default shard count for registered relations.  ``None`` asks the
        optimizer to choose per relation from its size and the worker count
        (:meth:`Optimizer.choose_shard_count`).
    strategy:
        Default partitioning strategy: ``"sample"`` (population-balanced,
        right for clustered data) or ``"grid"`` (equal-area tiles).
    backend:
        Worker-pool backend — ``"auto"`` (default), ``"serial"``,
        ``"thread"`` or ``"process"``; see :mod:`repro.shard.pool`.
    max_workers:
        Worker-pool width (default: available CPU count, affinity-aware).
    segment_mode:
        Shared-memory generation protocol for the process backend —
        ``"auto"`` (default) publishes each relation into a
        :mod:`repro.shard.shm` segment per version so mutations *reuse*
        the pool; ``"off"`` restores the respawn-per-mutation protocol.
    optimizer / plan_cache_size:
        Forwarded to the wrapped :class:`SpatialEngine`.
    seed:
        Sampling seed for the ``"sample"`` partitioner.
    prefer_fanout:
        Force the coordinator's fan-out decision for top-level kNN/range
        selects: ``True`` always fans out over every shard, ``False``
        always answers coordinator-side via border expansion, ``None``
        (default) follows the pool's parallelism.  Pinning this makes the
        distributed trace shape identical across backends — the
        trace-stitching invariant tests rely on it.
    slow_query_threshold:
        When given, overrides the bundle's slow-query log latency threshold
        (seconds); queries at or above it are recorded in
        :meth:`slow_queries`.
    obs:
        The observability bundle (:class:`~repro.obs.Observability`),
        *shared* with the wrapped planning engine so coordinator counters,
        per-shard aggregates and the plan/statistics-cache instruments land
        in one registry.  A fresh per-engine bundle is created when omitted.
    """

    def __init__(
        self,
        num_shards: int | None = None,
        strategy: str = "sample",
        backend: str = "auto",
        max_workers: int | None = None,
        segment_mode: str = "auto",
        optimizer: Optimizer | None = None,
        plan_cache_size: int = 256,
        seed: int = 0,
        prefer_fanout: bool | None = None,
        slow_query_threshold: float | None = None,
        obs: Observability | None = None,
    ) -> None:
        self.num_shards = num_shards
        self.strategy = strategy
        self.backend = backend
        self.max_workers = max_workers
        self.segment_mode = segment_mode
        self.seed = seed
        self.prefer_fanout = prefer_fanout
        #: The observability bundle, shared with the wrapped engine.
        self.obs = obs if obs is not None else Observability(name="sharded-engine")
        if slow_query_threshold is not None:
            self.obs.slow.threshold_seconds = slow_query_threshold
        self._engine = SpatialEngine(
            optimizer=optimizer,
            plan_cache_size=plan_cache_size,
            eager_build=False,
            stats_compute=self._aggregate_stats,
            obs=self.obs,
        )
        self._sharded: dict[str, ShardedDataset] = {}
        self._rw = ReadWriteLock()
        self._pool: ShardWorkerPool | None = None
        self._pool_lock = threading.Lock()
        self._mutation_listeners: list[Callable[[str], None]] = []
        # Per-relation (rebuilds, repairs) totals over the shard datasets at
        # the last sample — diffed after every routed mutation / recovery so
        # shard-level index activity lands in metrics and events.
        self._index_activity: dict[str, tuple[int, int]] = {}
        registry = self.obs.registry
        self._queries = registry.counter("sharded_queries_total")
        self._batches = registry.counter("sharded_batches_total")
        self._tasks = registry.counter("sharded_tasks_total")
        self._stale = registry.counter("sharded_stale_retries_total")
        self._fanout_latency = registry.histogram(
            "sharded_fanout_latency_seconds", LATENCY_BUCKETS
        )
        self._pool_respawns = registry.counter("shard_pool_respawns_total")
        self._pool_reuses = registry.counter("shard_pool_reuses_total")
        registry.gauge(
            "sharded_pool_workers",
            fn=lambda: self._pool.max_workers if self._pool is not None else 0,
        )

    @property
    def queries_executed(self) -> int:
        """Queries executed (view over ``sharded_queries_total``)."""
        return int(self._queries.value)

    @property
    def batches_executed(self) -> int:
        """Batches executed via :meth:`run_many` (view over ``sharded_batches_total``)."""
        return int(self._batches.value)

    @property
    def tasks_dispatched(self) -> int:
        """Per-shard tasks fanned out (view over ``sharded_tasks_total``)."""
        return int(self._tasks.value)

    @property
    def stale_retries(self) -> int:
        """Executions retried after racing a mutation (view over
        ``sharded_stale_retries_total``)."""
        return int(self._stale.value)

    @property
    def pool_respawns(self) -> int:
        """Worker pools discarded and re-forked (view over
        ``shard_pool_respawns_total``)."""
        return int(self._pool_respawns.value)

    @property
    def pool_reuses(self) -> int:
        """Mutations absorbed by publishing a segment generation instead of
        respawning the pool (view over ``shard_pool_reuses_total``)."""
        return int(self._pool_reuses.value)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(
        self,
        dataset: Dataset | None = None,
        *,
        name: str | None = None,
        points: Iterable[Point | tuple[float, float]] | None = None,
        index_kind: IndexKind = "grid",
        bounds: Rect | None = None,
        num_shards: int | None = None,
        strategy: str | None = None,
        shard_map: ShardMap | None = None,
        **index_options: object,
    ) -> ShardedDataset:
        """Register a relation, splitting it into per-shard datasets.

        Accepts the same inputs as :meth:`SpatialEngine.register` plus the
        sharding controls.  Per-shard indexes are built eagerly and the
        aggregated statistics warmed before the method returns; the
        monolithic index of the base dataset is never built.
        """
        if dataset is None:
            if name is None or points is None:
                raise UnsupportedQueryError(
                    "register() needs a Dataset or both name= and points="
                )
            dataset = Dataset.from_points(
                name, points, index_kind=index_kind, bounds=bounds, **index_options
            )
        with self._rw.write():
            sharded = ShardedDataset(
                dataset,
                num_shards=self._resolve_shard_count(dataset, num_shards),
                strategy=strategy or self.strategy,
                shard_map=shard_map,
                seed=self.seed,
            )
            self._sharded[dataset.name] = sharded
            self._engine.register(dataset)
            self._engine.stats(dataset.name)  # warm the aggregated statistics
            # Baseline the shard-index activity counters *after* the initial
            # per-shard builds so registration itself is not reported as a
            # rebuild storm; later diffs are routed-mutation activity only.
            self._index_activity[dataset.name] = self._index_totals(dataset.name)
            self.obs.registry.gauge(
                "sharded_shards",
                fn=lambda name=dataset.name: (
                    self._sharded[name].num_shards if name in self._sharded else 0
                ),
                relation=dataset.name,
            )
            self._invalidate_pool()
        return sharded

    def _resolve_shard_count(self, dataset: Dataset, num_shards: int | None) -> int:
        if num_shards is not None:
            return num_shards
        if self.num_shards is not None:
            return self.num_shards
        n = len(dataset)
        size_only = IndexStats(
            num_points=n,
            num_blocks=1,
            num_nonempty_blocks=1,
            mean_points_per_nonempty_block=float(n),
            max_points_per_block=n,
            occupied_area_fraction=1.0,
            total_area=1.0,
        )
        # Cost the candidates against the pool's *effective* width, not the
        # shard count itself — otherwise every candidate looks fully
        # parallel and large relations over-shard far beyond the hardware.
        effective_workers = self.max_workers or min(32, available_cpus())
        return self._engine.optimizer.choose_shard_count(
            size_only, max_workers=effective_workers
        )

    def unregister(self, name: str) -> None:
        """Remove a relation, its shards and every cache entry touching it."""
        with self._rw.write():
            if name not in self._sharded:
                raise UnsupportedQueryError(f"no dataset registered as {name!r}")
            del self._sharded[name]
            self._index_activity.pop(name, None)
            self._engine.unregister(name)
            self._invalidate_pool()

    def sharded_dataset(self, name: str) -> ShardedDataset:
        """The sharded view of the relation called ``name``."""
        try:
            return self._sharded[name]
        except KeyError:
            raise UnsupportedQueryError(f"no dataset registered as {name!r}") from None

    @property
    def datasets(self) -> Mapping[str, ShardedDataset]:
        """Read-only view of the registered relations (name → sharded dataset)."""
        return dict(self._sharded)

    def __contains__(self, name: str) -> bool:
        return name in self._sharded

    def __len__(self) -> int:
        return len(self._sharded)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def _aggregate_stats(self, dataset: Dataset) -> IndexStats:
        """``stats_compute`` hook for the wrapped engine's statistics cache."""
        return self.sharded_dataset(dataset.name).aggregated_stats()

    def stats(self, name: str) -> IndexStats:
        """Cached relation-level statistics aggregated from the shards.

        Runs under the read lock: a statistics compute must never observe a
        half-mutated shard set (the write side holds mutations exclusive).
        """
        with self._rw.read():
            self._require(name)
            return self._engine.stats(name)

    def shard_stats(self, name: str) -> dict[int, IndexStats]:
        """Per-shard statistics of one relation (shard id → stats)."""
        with self._rw.read():
            return self.sharded_dataset(name).shard_stats()

    # ------------------------------------------------------------------
    # Incremental updates (routed to the owning shard)
    # ------------------------------------------------------------------
    def insert(self, name: str, points: Iterable[Point | tuple[float, float]]) -> int:
        """Insert points, rebuilding only the owning shards' indexes."""
        with self._rw.write():
            added = self.sharded_dataset(name).insert(points)
            if added:
                self._on_mutation(name)
        if added:
            self._notify_mutation(name)
        return added

    def remove(self, name: str, pids: Iterable[int]) -> int:
        """Remove points (by pid), rebuilding only the owning shards' indexes."""
        with self._rw.write():
            removed = self.sharded_dataset(name).remove(pids)
            if removed:
                self._on_mutation(name)
        if removed:
            self._notify_mutation(name)
        return removed

    def move(self, name: str, moves: Iterable[tuple[int, float, float]]) -> int:
        """Relocate points, routing each move to the shards it touches.

        Same-shard moves repair that shard's index in place; cross-shard
        moves transfer the point between the two shard datasets (see
        :meth:`ShardedDataset.move`).  Only the touched shards rebuild.
        """
        with self._rw.write():
            moved = self.sharded_dataset(name).move(moves)
            if moved:
                self._on_mutation(name)
        if moved:
            self._notify_mutation(name)
        return moved

    def apply_update(self, name: str, batch: UpdateBatch) -> AppliedUpdate:
        """Apply one insert/remove/move batch, routed to the owning shards.

        The streaming entry point: one write-lock acquisition and one cache
        invalidation for the whole batch.  Returns the effective mutation
        (see :meth:`ShardedDataset.apply_update`).
        """
        with self._rw.write():
            applied = self.sharded_dataset(name).apply_update(batch)
            if applied.size:
                self._on_mutation(name)
        if applied.size:
            self._notify_mutation(name)
        return applied

    def add_mutation_listener(self, listener: Callable[[str], None]) -> None:
        """Register a callback fired after every engine-routed mutation.

        Mirrors :meth:`SpatialEngine.add_mutation_listener`: the stream
        layer's subscription registry hooks in here so direct mutations mark
        the affected standing queries stale.  Listeners run outside the
        engine's locks.
        """
        self._mutation_listeners.append(listener)

    def remove_mutation_listener(self, listener: Callable[[str], None]) -> None:
        """Unregister a callback added with :meth:`add_mutation_listener`."""
        self._mutation_listeners.remove(listener)

    def _notify_mutation(self, name: str) -> None:
        for listener in tuple(self._mutation_listeners):
            listener(name)

    def _on_mutation(self, name: str) -> None:
        self._engine.invalidate(name)
        self._engine.stats(name)  # re-warm aggregated statistics
        self._record_index_activity(name)
        self._refresh_pool(name)

    def _index_totals(self, name: str) -> tuple[int, int]:
        """Current (rebuilds, repairs) summed over the relation's shards."""
        sharded = self._sharded.get(name)
        if sharded is None:
            return (0, 0)
        rebuilds = repairs = 0
        for _, dataset in sharded.populated():
            rebuilds += dataset.index_rebuilds
            repairs += dataset.index_repairs
        return (rebuilds, repairs)

    def _record_index_activity(self, name: str) -> None:
        """Diff shard-index counters since the last sample into metrics/events.

        Clamped to increases only: a shard emptied by removals drops out of
        the sum, which must not drive the cumulative counters backwards.
        """
        rebuilds, repairs = self._index_totals(name)
        prev_rebuilds, prev_repairs = self._index_activity.get(name, (0, 0))
        registry, events = self.obs.registry, self.obs.events
        if rebuilds > prev_rebuilds:
            registry.counter("index_rebuilds_total", relation=name).inc(
                rebuilds - prev_rebuilds
            )
            events.emit(
                "index_rebuild", relation=name, shards=rebuilds - prev_rebuilds
            )
        if repairs > prev_repairs:
            registry.counter("index_repairs_total", relation=name).inc(
                repairs - prev_repairs
            )
            events.emit("index_repair", relation=name, shards=repairs - prev_repairs)
        self._index_activity[name] = (rebuilds, repairs)

    # ------------------------------------------------------------------
    # Planning / EXPLAIN (delegated to the wrapped engine's caches)
    # ------------------------------------------------------------------
    def plan(self, query: Query) -> PhysicalPlan:
        """The (cached) physical plan sharded execution will interpret.

        Planning happens under the read lock (as in :meth:`run`): a cache
        miss computes aggregated statistics over the shard set, which a
        concurrent routed mutation must not be rebuilding mid-walk — the
        resulting entry would carry the post-mutation version stamp over
        mixed-state data.
        """
        self._resync_if_stale(query.relations())
        with self._rw.read():
            return self._engine.plan(query)

    def explain(self, query: Query) -> Explain:
        """The (cached) EXPLAIN record for ``query``."""
        self._resync_if_stale(query.relations())
        with self._rw.read():
            return self._engine.explain(query)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, query: Query) -> QueryResult:
        """Plan (cached) and execute ``query`` across the shards.

        Results contain exactly the rows the unsharded engine would return,
        in canonical order (kNN rows by ``(distance, pid)``, pair/triplet
        rows by pid keys).  On a version-check failure during execution the
        engine resyncs its shards, re-plans and retries once.

        With instrumentation enabled, every shard task executes under
        worker-side telemetry capture: the coordinator grafts the returned
        ``shard-task`` span subtrees under its ``shard-fan-out`` span,
        merges process-worker kernel-dispatch deltas into the hub registry
        and attaches a :class:`~repro.obs.flight.ResourceUsage` to the plan
        entry (and root span) — see ``docs/observability.md``.
        """
        tracer = self.obs.tracer
        capture = self.obs.enabled
        last_error: StaleShardError | None = None
        for attempt in range(2):
            self._resync_if_stale(query.relations())
            usage = ResourceUsage() if capture else None
            with tracer.span("query", sharded=True, attempt=attempt) as root:
                with self._rw.read():
                    self._require(*query.relations())
                    with tracer.span("plan"):
                        entry = self._engine.plan_entry(query)
                    plan = entry.plan
                    root.annotate(
                        signature=str(entry.signature),
                        query_class=plan.query_class,
                        strategy=plan.strategy,
                        kernel_backend=kernels.backend(),
                    )
                    pool = self._ensure_pool()
                    prefer = (
                        pool.parallel
                        if self.prefer_fanout is None
                        else self.prefer_fanout
                    )
                    try:
                        started = perf_counter()
                        kernel_before = dispatch.counter_values() if capture else None
                        with tracer.span("shard-fan-out", backend=pool.backend) as fan:
                            if capture:
                                runner = lambda tasks: self._run_stitched(  # noqa: E731
                                    pool, fan, usage, tasks
                                )
                            else:
                                runner = pool.run
                            result, ntasks = sharded_execute(
                                plan, query, self._sharded, runner, prefer
                            )
                            fan.annotate(tasks=ntasks)
                        wall = perf_counter() - started
                    except StaleShardError as error:
                        last_error = error
                if last_error is not None:
                    root.annotate(stale_retry=True)
                else:
                    # Feed the aggregated per-shard work counters back into
                    # the wrapped engine's calibration store (and
                    # misprediction check): the sharded executor's costs
                    # differ from the single-partition ones, and the plans
                    # it is served must converge to *its* observed reality,
                    # not the static constants'.
                    with tracer.span("calibrate"):
                        observed = self._engine.record_execution(entry, result, wall)
                    if observed is not None:
                        root.annotate(observed_cost=round(observed, 4))
                    if usage is not None:
                        # Worker deltas were merged during stitching, so the
                        # coordinator-side registry delta is the fleet total.
                        usage.wall_seconds = wall
                        usage.kernel_dispatches = int(
                            sum(
                                d["delta"]
                                for d in dispatch.counter_deltas(kernel_before)
                            )
                        )
                        root.annotate(resources=usage.to_dict())
            if last_error is not None:
                self._stale.inc()
                self.obs.events.emit(
                    "stale_shard_retry",
                    relations=",".join(sorted(query.relations())),
                    error=str(last_error),
                )
                self._recover()
                last_error = None
                continue
            if root.enabled:
                entry.last_trace = Trace(root)
            if usage is not None:
                entry.last_resources = usage
                record_usage(self.obs.registry, str(entry.signature), usage)
                slow = self.obs.slow
                if slow.would_record(wall):
                    slow.record(
                        signature=str(entry.signature),
                        query_class=plan.query_class,
                        strategy=plan.strategy,
                        wall_seconds=wall,
                        resources=usage,
                        explain=entry.explain_with_feedback().render(),
                        trace_summary=Trace(root).summary_lines(),
                    )
            self._queries.inc()
            self._tasks.inc(ntasks)
            self._fanout_latency.observe(wall)
            return result
        raise StaleShardError(
            "sharded execution kept racing dataset mutations; giving up after retry"
        )

    def _run_stitched(
        self,
        pool: ShardWorkerPool,
        fan: Span,
        usage: ResourceUsage,
        tasks: Sequence,
    ) -> list[object]:
        """Capture-enabled task runner: execute, then stitch worker telemetry.

        Each task's detached ``shard-task`` span (annotated ``shard=`` /
        ``worker_pid=`` plus its resource counters) is grafted under the
        open ``shard-fan-out`` span; kernel-dispatch deltas from *other*
        processes are merged into this process's hub-registered registry
        (serial/thread tasks already incremented it live — merging theirs
        would double-count).  Per-shard resource counters accumulate into
        the query's :class:`~repro.obs.flight.ResourceUsage`.
        """
        pairs = pool.run_captured(tasks)
        coordinator_pid = os.getpid()
        results: list[object] = []
        for result, telemetry in pairs:
            results.append(result)
            fan.graft(Span.from_dict(telemetry["span"]))
            if telemetry["worker_pid"] != coordinator_pid:
                dispatch.merge_counts(telemetry["counters"])
            resources = telemetry["resources"]
            usage.rows_scanned += resources["rows_scanned"]
            usage.candidates_pruned += resources["candidates_pruned"]
            usage.shm_bytes_attached += resources["shm_bytes_attached"]
            usage.shards_touched += 1
        return results

    def slow_queries(self, n: int | None = None) -> list[dict]:
        """Recent slow-query records, oldest first (see
        :class:`~repro.obs.flight.SlowQueryLog`)."""
        return self.obs.slow.records(n)

    def run_many(self, queries: Sequence[Query]) -> list[QueryResult]:
        """Execute a batch of queries, returning results in input order.

        Each query fans its shard tasks out on the shared worker pool; plans
        are cache lookups after the first occurrence of each shape.
        """
        results = [self.run(query) for query in queries]
        self._batches.inc()
        return results

    # ------------------------------------------------------------------
    # Consistency plumbing
    # ------------------------------------------------------------------
    def _require(self, *names: str) -> None:
        missing = sorted(n for n in names if n not in self._sharded)
        if missing:
            raise UnsupportedQueryError(
                f"datasets missing for relations: {', '.join(missing)}"
            )

    def _resync_if_stale(self, relations: Iterable[str]) -> None:
        """Repair shards whose base dataset was mutated out-of-band."""
        stale = [
            name
            for name in relations
            if name in self._sharded
            and self._sharded[name].version != self._sharded[name].synced_version
        ]
        if not stale:
            return
        with self._rw.write():
            for name in stale:
                if name in self._sharded and self._sharded[name].ensure_synced():
                    self._engine.invalidate(name)
                    self._refresh_pool(name)

    def _recover(self) -> None:
        """After a stale-version execution failure: resync everything."""
        with self._rw.write():
            for name, sharded in self._sharded.items():
                if sharded.ensure_synced():
                    self._engine.invalidate(name)
                    self._refresh_pool(name)
                self._record_index_activity(name)

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> ShardWorkerPool:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ShardWorkerPool(
                    token=f"sharded-engine-{id(self)}-{next(_TOKENS)}",
                    datasets=dict(self._sharded),
                    backend=self.backend,
                    max_workers=self.max_workers,
                    segments=self.segment_mode,
                )
            return self._pool

    def _refresh_pool(self, name: str) -> None:
        """Absorb a mutation of relation ``name`` into the live pool.

        Under the segment protocol the mutated relation is published as a
        new shared-memory generation and the pool survives
        (``shard_pool_reuses_total``); when the pool cannot be patched —
        process backend with segments off, or a publish failure — it is
        discarded and the next query re-forks it
        (``shard_pool_respawns_total``).
        """
        with self._pool_lock:
            pool = self._pool
            if pool is None:
                return  # nothing live: the next query forks a fresh pool
            sharded = self._sharded.get(name)
            if sharded is not None:
                try:
                    if pool.refresh(sharded):
                        self._pool_reuses.inc()
                        return
                except OSError:
                    pass  # shm unavailable/exhausted: fall back to respawning
            pool.close()
            self._pool = None
            self._pool_respawns.inc()

    def _invalidate_pool(self, count: bool = True) -> None:
        with self._pool_lock:
            if self._pool is not None:
                self._pool.close()
                self._pool = None
                if count:
                    self._pool_respawns.inc()

    def close(self) -> None:
        """Release the worker pool (idempotent; the engine stays usable)."""
        self._invalidate_pool(count=False)

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter shutdown
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def metrics(self) -> dict[str, object]:
        """Cache counters of the wrapped engine plus shard/pool counters."""
        inner = self._engine.metrics()
        pool = self._pool
        inner.update(
            {
                "queries_executed": self.queries_executed,
                "batches_executed": self.batches_executed,
                "tasks_dispatched": self.tasks_dispatched,
                "stale_retries": self.stale_retries,
                "pool_respawns": self.pool_respawns,
                "pool_reuses": self.pool_reuses,
                "kernel_backend": kernels.backend(),
                "shards": {
                    name: {
                        "num_shards": sharded.num_shards,
                        "populated": sum(1 for _ in sharded.populated()),
                        "balance": sharded.balance(),
                    }
                    for name, sharded in self._sharded.items()
                },
                "pool": {
                    "backend": pool.backend if pool is not None else None,
                    "max_workers": pool.max_workers if pool is not None else None,
                    "segments": pool.segments_enabled if pool is not None else None,
                },
            }
        )
        return inner

    def metrics_snapshot(self) -> dict[str, object]:
        """JSON-able snapshot of the shared registry (coordinator + inner engine)."""
        return self.obs.snapshot()

    def prometheus_metrics(self) -> str:
        """Prometheus text-format exposition of the shared registry."""
        return self.obs.prometheus()

    def traces(self, n: int | None = None) -> tuple[Trace, ...]:
        """The most recent completed execution traces, oldest first."""
        return self.obs.tracer.recent(n)

    def events(self, kind: str | None = None, n: int | None = None) -> tuple[Event, ...]:
        """Recent structured events (stale-shard retries, demotions, ...)."""
        return self.obs.events.events(kind, n)

    @property
    def engine(self) -> SpatialEngine:
        """The wrapped planning engine (exposed for tests and monitoring)."""
        return self._engine

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShardedEngine(datasets={sorted(self._sharded)}, "
            f"backend={self.backend!r}, queries={self.queries_executed})"
        )
