"""Sharded execution: per-shard tasks, worker dispatch, per-class coordinators.

A planned query is decomposed into :class:`ShardTask` units — one per shard
of the *driving* relation (the outer relation of a join, the selected
relation of a select) — that a worker executes against the shard runtime,
returning a **mergeable partial result** (per-shard kNN candidates, pair
lists, triplet lists; see :mod:`repro.operators.merge`).  The coordinator
(:func:`sharded_execute`) builds the tasks for the plan's query class, runs
them through the engine's worker pool, and merges the partials into the
exact global answer.

Correct cross-shard semantics come from two mechanisms:

* the driving relation is a true partition, so per-shard join outputs
  concatenate without loss or duplication, and
* every per-point kNN inside a worker uses
  :func:`repro.shard.knn.sharded_knn` — border expansion over the *inner*
  relation's shards — so a point near a shard boundary still finds its true
  k nearest neighbors in adjacent shards.

Every task carries the dataset versions its plan was derived against;
:func:`execute_shard_task` re-validates them *at execution time* and raises
:class:`~repro.exceptions.StaleShardError` on any mismatch, so a plan is
never served against stale per-shard state (e.g. a process-pool worker whose
forked snapshot predates a mutation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from repro import kernels
from repro.algebra.compile import rewritten_tree
from repro.algebra.decompose import chain_window, local_decomposition
from repro.algebra.evaluate import cell_of, evaluate, grid_rows, package_output, topk_rows
from repro.algebra.tree import AlgebraNode, GridAggregate, RegionAggregate, TopK
from repro.exceptions import StaleShardError, UnsupportedQueryError
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.locality.knn import get_knn
from repro.locality.neighborhood import Neighborhood
from repro.obs.flight import task_counters
from repro.operators.intersection import intersect_pairs_on_inner, intersect_points
from repro.operators.merge import (
    merge_neighborhoods,
    merge_pair_partials,
    merge_point_partials,
    merge_triplet_partials,
)
from repro.operators.range_select import range_select
from repro.operators.results import JoinPair, JoinTriplet, pair_key
from repro.core.stats import PruningStats
from repro.planner.plan import PhysicalPlan
from repro.query.predicates import KnnJoin, KnnSelect, RangeSelect
from repro.query.query import Query
from repro.query.results import QueryResult
from repro.shard.batch import sharded_knn_batch
from repro.shard.dataset import ShardedDataset
from repro.shard.knn import sharded_knn, sharded_range_select

__all__ = [
    "ShardTask",
    "batched_fanout",
    "execute_shard_task",
    "relation_bounds",
    "set_batched_fanout",
    "sharded_execute",
]

#: Whether join/chained workers batch their per-point cross-shard kNNs
#: through :func:`~repro.shard.batch.sharded_knn_batch`.  Module-level so a
#: fork-inherited worker sees the same setting as its coordinator; the
#: benchmark harness flips it off to measure the pre-kernel per-point path.
_BATCHED_FANOUT = True


def set_batched_fanout(enabled: bool) -> bool:
    """Enable/disable the batched join fan-out; returns the previous setting.

    Intended for benchmarks and A/B tests — the batched path is exact and
    always preferable in production.  Flip *before* a process pool forks so
    workers inherit the setting.
    """
    global _BATCHED_FANOUT
    previous = _BATCHED_FANOUT
    _BATCHED_FANOUT = bool(enabled)
    return previous


def batched_fanout() -> bool:
    """Whether join/chained shard tasks use the batched kNN fan-out."""
    return _BATCHED_FANOUT

#: ``(relation, version)`` stamps a task was planned against.
VersionStamps = tuple[tuple[str, int], ...]

#: Runs a batch of tasks, preserving order (the engine's worker pool).
TaskRunner = Callable[[Sequence["ShardTask"]], list[object]]


@dataclass(frozen=True)
class ShardTask:
    """One unit of fan-out work: part of a query against one driving shard.

    Attributes
    ----------
    kind:
        Worker dispatch key (``knn`` / ``two_knn`` / ``range`` / ``join`` /
        ``chained`` / ``algebra``).
    relation:
        The driving relation whose shard this task covers.
    shard_id:
        Which shard of the driving relation to execute against.
    payload:
        Kind-specific parameters (picklable, so tasks cross process
        boundaries).
    versions:
        Version stamps of *every* relation the worker will read; validated
        at execution time.
    """

    kind: str
    relation: str
    shard_id: int
    payload: tuple
    versions: VersionStamps


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def execute_shard_task(
    datasets: Mapping[str, ShardedDataset], task: ShardTask
) -> object:
    """Execute one task against the shard runtime (runs inside a worker).

    The version check happens here — at execution time, in the worker — not
    only at planning time: a process worker may hold a forked snapshot older
    than the coordinator's state, and a dataset may have been mutated behind
    the engine's back.  Either way the stamps disagree and the task refuses
    to run.
    """
    for name, version in task.versions:
        sharded = datasets.get(name)
        if sharded is None:
            raise StaleShardError(f"relation {name!r} missing from shard runtime")
        if sharded.version != version or sharded.synced_version != version:
            raise StaleShardError(
                f"relation {name!r} is at version "
                f"{sharded.version} (shards synced at {sharded.synced_version}), "
                f"but the plan expected version {version}"
            )
    driving = datasets[task.relation].shard(task.shard_id)
    if driving is None:  # shard emptied by a racing (version-checked) mutation
        return []
    counters = task_counters()
    if counters is not None:
        # Every kind reads the driving shard's columns end to end (the
        # window-filtered join also masks over all rows first).
        counters.rows_scanned += len(driving.store)

    if task.kind == "knn":
        focal, k = task.payload
        return get_knn(driving.index, focal, k)
    if task.kind == "two_knn":
        (f1, k1), (f2, k2) = task.payload
        return (get_knn(driving.index, f1, k1), get_knn(driving.index, f2, k2))
    if task.kind == "range":
        (window,) = task.payload
        return range_select(driving.index, window)
    if task.kind == "join":
        inner_rel, k, select_pids, inner_window, outer_window = task.payload
        inner = datasets[inner_rel]
        if _BATCHED_FANOUT:
            return _join_batched(
                driving, inner, k, select_pids, inner_window, outer_window
            )
        pairs: list[JoinPair] = []
        for e1 in driving.points:
            if outer_window is not None and not outer_window.contains_point(e1):
                continue
            for e2 in sharded_knn(inner, e1, k):
                if select_pids is not None and e2.pid not in select_pids:
                    continue
                if inner_window is not None and not inner_window.contains_point(e2):
                    continue
                pairs.append(JoinPair(e1, e2))
        return pairs
    if task.kind == "chained":
        b_rel, c_rel, k_ab, k_bc = task.payload
        b, c = datasets[b_rel], datasets[c_rel]
        if _BATCHED_FANOUT:
            return _chained_batched(driving, b, c, k_ab, k_bc)
        cache: dict[int, Neighborhood] = {}  # per-task B→C neighborhood cache
        triplets: list[JoinTriplet] = []
        for a in driving.points:
            for b_point in sharded_knn(b, a, k_ab):
                c_nbr = cache.get(b_point.pid)
                if c_nbr is None:
                    c_nbr = sharded_knn(c, b_point, k_bc)
                    cache[b_point.pid] = c_nbr
                triplets.extend(JoinTriplet(a, b_point, c_point) for c_point in c_nbr)
        return triplets
    if task.kind == "algebra":
        subtree, agg, bounds = task.payload
        out = evaluate(subtree, _ShardLocalContext(driving, bounds))
        points = [row[-1] for row in out.rows]
        if agg is None:
            return points
        agg_kind, spec = agg
        if agg_kind == "grid":
            counts: dict[tuple[int, int], int] = {}
            for p in points:
                cell = cell_of(p, bounds, spec)
                counts[cell] = counts.get(cell, 0) + 1
            return counts
        return {
            name: sum(1 for p in points if rect.contains_point(p))
            for name, rect in spec
        }
    raise UnsupportedQueryError(f"unknown shard task kind {task.kind!r}")


class _ShardLocalContext:
    """Eval context over one driving shard, for local-decomposable subtrees.

    The coordinator only dispatches filter chains (range/attribute filters
    over one scan) here, so the kNN entry points are unreachable — a filter
    chain's output over a partition is exactly the union of its per-shard
    outputs, which is what makes the fan-out lossless.  ``bounds`` is the
    *global* relation extent, so per-shard grid cells line up with the
    unsharded decomposition.
    """

    def __init__(self, shard, bounds: Rect | None) -> None:
        self._shard = shard
        self._bounds = bounds

    def points(self, relation: str) -> list[Point]:
        return list(self._shard.store.iter_points())

    def bounds(self, relation: str) -> Rect | None:
        return self._bounds

    def range(self, relation: str, window: Rect) -> list[Point]:
        return list(range_select(self._shard.index, window))

    def knn(self, relation, focal, k):  # pragma: no cover - never dispatched
        raise UnsupportedQueryError("kNN subtrees are not shard-local")

    def knn_batch(self, relation, coords, k):  # pragma: no cover - never dispatched
        raise UnsupportedQueryError("kNN subtrees are not shard-local")


def _join_batched(driving, inner, k, select_pids, inner_window, outer_window):
    """Join one driving shard via the batched cross-shard kNN.

    Same output (pairs, order, filters) as the per-point loop: the driving
    rows are visited in store order, the outer-window filter runs as one
    ``window_mask`` kernel over the columns, and every surviving row's
    neighborhood comes from one :func:`sharded_knn_batch` call over the
    shard's coordinates.
    """
    store = driving.store
    if outer_window is not None:
        mask = kernels.window_mask(
            store.xs,
            store.ys,
            outer_window.xmin,
            outer_window.ymin,
            outer_window.xmax,
            outer_window.ymax,
        )
        rows = np.nonzero(mask)[0]
        counters = task_counters()
        if counters is not None:
            # Driving rows the outer window eliminated before any kNN work.
            counters.candidates_pruned += len(store) - len(rows)
    else:
        rows = np.arange(len(store))
    if not len(rows):
        return []
    coords = np.column_stack((store.xs[rows], store.ys[rows]))
    neighborhoods = sharded_knn_batch(inner, coords, k)
    pairs: list[JoinPair] = []
    for row, nbr in zip(rows.tolist(), neighborhoods):
        e1 = store.point_at(row)
        for e2 in nbr:
            if select_pids is not None and e2.pid not in select_pids:
                continue
            if inner_window is not None and not inner_window.contains_point(e2):
                continue
            pairs.append(JoinPair(e1, e2))
    return pairs


def _chained_batched(driving, b, c, k_ab, k_bc):
    """Chained joins over one driving shard, both hops batched.

    The A→B hop is one batched kNN over the shard's coordinates; the B→C
    hop batches over the *unique* B points found (the batched analogue of
    the per-task cache in the scalar path).
    """
    store = driving.store
    coords = np.column_stack((store.xs, store.ys))
    ab = sharded_knn_batch(b, coords, k_ab)
    unique_b: dict[int, Point] = {}
    for nbr in ab:
        for b_point in nbr:
            if b_point.pid not in unique_b:
                unique_b[b_point.pid] = b_point
    cache: dict[int, Neighborhood] = {}
    if unique_b:
        b_points = list(unique_b.values())
        b_coords = np.array([(p.x, p.y) for p in b_points], dtype=np.float64)
        c_nbrs = sharded_knn_batch(c, b_coords, k_bc)
        cache = {p.pid: nbr for p, nbr in zip(b_points, c_nbrs)}
    triplets: list[JoinTriplet] = []
    for row, nbr in enumerate(ab):
        a = store.point_at(row)
        for b_point in nbr:
            for c_point in cache[b_point.pid]:
                triplets.append(JoinTriplet(a, b_point, c_point))
    return triplets


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------
class _Coordinator:
    """Builds, runs and merges the shard tasks of one planned query."""

    def __init__(
        self,
        datasets: Mapping[str, ShardedDataset],
        run_tasks: TaskRunner,
        prefer_fanout: bool,
    ) -> None:
        self.datasets = datasets
        self.run_tasks = run_tasks
        # With a parallel pool, fanning a top-level kNN/range out over every
        # shard wins on latency; on a serial pool the border-expansion search
        # (which prunes most shards) is cheaper than visiting all of them.
        self.prefer_fanout = prefer_fanout
        self.tasks_dispatched = 0
        # Work counters aggregated across the shard tasks (the coordinator
        # knows each driving shard's population, so per-point-kNN work can be
        # charged without shipping counters back from the workers — the same
        # merge-at-the-coordinator idea as IndexStats.aggregate).  Charges
        # are deliberately conservative (lower bounds), so the engine's
        # misprediction check never demotes a sharded plan on overcounted
        # work.  The counters ride back on the QueryResult and feed the
        # wrapping engine's calibration store.
        self.work = PruningStats()

    # -- plumbing -------------------------------------------------------
    def _versions(self, *names: str) -> VersionStamps:
        return tuple(sorted((n, self.datasets[n].version) for n in set(names)))

    def _run(self, tasks: list[ShardTask]) -> list[object]:
        self.tasks_dispatched += len(tasks)
        return self.run_tasks(tasks)

    def _fanout_knn(self, relation: str, focal: Point, k: int) -> Neighborhood:
        """Global kNN: all-shard fan-out, or pruned border expansion."""
        sharded = self.datasets[relation]
        if not self.prefer_fanout:
            self.work.neighborhoods_computed += 1
            return sharded_knn(sharded, focal, k)
        versions = self._versions(relation)
        tasks = [
            ShardTask("knn", relation, sid, (focal, k), versions)
            for sid, _ in sharded.populated()
        ]
        self.work.neighborhoods_computed += len(tasks)
        partials = [p for p in self._run(tasks) if isinstance(p, Neighborhood)]
        return merge_neighborhoods(focal, k, partials)

    def _fanout_range(self, relation: str, window: Rect) -> list[Point]:
        """Global range select over every shard intersecting the window."""
        sharded = self.datasets[relation]
        if not self.prefer_fanout:
            return sharded_range_select(sharded, window)
        versions = self._versions(relation)
        tasks = [
            ShardTask("range", relation, sid, (window,), versions)
            for sid, ds in sharded.populated()
            if ds.index.bounds.intersects(window)
        ]
        return merge_point_partials(self._run(tasks))  # type: ignore[arg-type]

    def _join_tasks(
        self,
        outer_rel: str,
        inner_rel: str,
        k: int,
        select_pids: frozenset[int] | None = None,
        inner_window: Rect | None = None,
        outer_window: Rect | None = None,
    ) -> list[ShardTask]:
        versions = self._versions(outer_rel, inner_rel)
        payload = (inner_rel, k, select_pids, inner_window, outer_window)
        tasks = []
        for sid, shard in self.datasets[outer_rel].populated():
            tasks.append(ShardTask("join", outer_rel, sid, payload, versions))
            if outer_window is None:
                # Every driving point gets one cross-shard kNN; with an outer
                # window the worker skips points outside it, so nothing is
                # charged (lower bound).
                self.work.neighborhoods_computed += len(shard)
        return tasks

    # -- result helpers -------------------------------------------------
    def _points(self, strategy: str, query_class: str, points: Sequence[Point]) -> QueryResult:
        return QueryResult(
            strategy=strategy,
            query_class=query_class,
            points=tuple(points),
            stats=self.work,
        )

    def _pairs(self, strategy: str, query_class: str, pairs: Sequence[JoinPair]) -> QueryResult:
        return QueryResult(
            strategy=strategy,
            query_class=query_class,
            pairs=tuple(pairs),
            stats=self.work,
        )

    # -- per-query-class execution --------------------------------------
    def execute(self, plan: PhysicalPlan, query: Query) -> QueryResult:
        """Run ``query`` according to ``plan`` and merge the global answer."""
        selects = [p for p in query.predicates if isinstance(p, KnnSelect)]
        joins = [p for p in query.predicates if isinstance(p, KnnJoin)]
        ranges = [p for p in query.predicates if isinstance(p, RangeSelect)]
        cls = plan.query_class
        strategy = f"sharded:{plan.strategy}"

        if cls == "algebra":
            if query.tree is None:
                raise UnsupportedQueryError(
                    "cached algebra plan does not fit this query"
                )
            return self._algebra(strategy, query.tree)
        if cls == "single-select":
            s = selects[0]
            return self._points(
                strategy, cls, tuple(self._fanout_knn(s.relation, s.focal, s.k))
            )
        if cls == "single-range":
            r = ranges[0]
            return self._points(strategy, cls, self._fanout_range(r.relation, r.window))
        if cls == "two-selects":
            return self._two_selects(strategy, selects[0], selects[1])
        if cls == "two-ranges":
            first = self._fanout_range(ranges[0].relation, ranges[0].window)
            second = self._fanout_range(ranges[1].relation, ranges[1].window)
            return self._points(strategy, cls, intersect_points(first, second))
        if cls == "range-and-knn-select":
            s, r = selects[0], ranges[0]
            nbr = self._fanout_knn(s.relation, s.focal, s.k)
            return self._points(
                strategy, cls, [p for p in nbr if r.window.contains_point(p)]
            )
        if cls == "single-join":
            j = joins[0]
            partials = self._run(self._join_tasks(j.outer, j.inner, j.k))
            return self._pairs(strategy, cls, merge_pair_partials(partials))  # type: ignore[arg-type]
        if cls == "select-outer-of-join":
            return self._select_outer_join(strategy, selects[0], joins[0])
        if cls == "select-inner-of-join":
            s, j = selects[0], joins[0]
            selection = self._fanout_knn(j.inner, s.focal, s.k)
            partials = self._run(
                self._join_tasks(j.outer, j.inner, j.k, select_pids=selection.pids)
            )
            return self._pairs(strategy, cls, merge_pair_partials(partials))  # type: ignore[arg-type]
        if cls == "range-outer-of-join":
            r, j = ranges[0], joins[0]
            partials = self._run(
                self._join_tasks(j.outer, j.inner, j.k, outer_window=r.window)
            )
            return self._pairs(strategy, cls, merge_pair_partials(partials))  # type: ignore[arg-type]
        if cls == "range-inner-of-join":
            r, j = ranges[0], joins[0]
            partials = self._run(
                self._join_tasks(j.outer, j.inner, j.k, inner_window=r.window)
            )
            return self._pairs(strategy, cls, merge_pair_partials(partials))  # type: ignore[arg-type]
        if cls == "chained-joins":
            return self._chained(strategy, joins[0], joins[1])
        if cls == "unchained-joins":
            return self._unchained(strategy, joins[0], joins[1])
        raise UnsupportedQueryError(f"unknown query class in plan: {cls!r}")

    # -- algebra trees --------------------------------------------------
    def _algebra(self, strategy: str, tree: AlgebraNode) -> QueryResult:
        """Execute an algebra tree against the shard runtime, exactly.

        Local-decomposable trees — filter chains over one scan, optionally
        under a spatial aggregate (and top-k) — fan out one task per driving
        shard: each worker evaluates the chain against its partition and
        ships back either its surviving points or its **partial aggregate**
        (per-cell / per-region counts), which the coordinator merges by
        concatenation or summation.  Everything else (kNN filters, joins)
        evaluates coordinator-side through a context whose kNN entry points
        are the exact cross-shard primitives (border expansion / batched
        fan-out), so results match unsharded execution row for row.
        """
        optimized, _trail = rewritten_tree(tree)
        local = local_decomposition(optimized)
        if local is not None:
            return self._algebra_fanout(strategy, local)
        out = evaluate(optimized, _CoordinatorEvalContext(self), self.work)
        return QueryResult(
            strategy=strategy,
            query_class="algebra",
            stats=self.work,
            **package_output(out),
        )

    def _algebra_fanout(
        self,
        strategy: str,
        local: "tuple[AlgebraNode, GridAggregate | RegionAggregate | None, TopK | None, str]",
    ) -> QueryResult:
        chain, agg, topk, relation = local
        sharded = self.datasets[relation]
        bounds = relation_bounds(sharded)
        if agg is not None and bounds is None:
            raise UnsupportedQueryError(
                "spatial aggregates need the target relation's bounds; build "
                "the dataset with explicit bounds"
            )
        if agg is None:
            agg_spec = None
        elif isinstance(agg, GridAggregate):
            agg_spec = ("grid", agg.cells_per_side)
        else:
            agg_spec = ("region", agg.regions)
        versions = self._versions(relation)
        window = chain_window(chain)
        tasks = [
            ShardTask("algebra", relation, sid, (chain, agg_spec, bounds), versions)
            for sid, ds in sharded.populated()
            if window is None or ds.index.bounds.intersects(window)
        ]
        partials = self._run(tasks)
        if agg is None:
            points = merge_point_partials(partials)  # type: ignore[arg-type]
            return QueryResult(
                strategy=strategy,
                query_class="algebra",
                points=tuple(points),
                stats=self.work,
            )
        counts: dict = {}
        for partial in partials:
            for key, value in partial.items():  # type: ignore[union-attr]
                counts[key] = counts.get(key, 0) + value
        if isinstance(agg, GridAggregate):
            rows = grid_rows(counts, agg, bounds)
        else:
            rows = [(name, counts.get(name, 0)) for name, _rect in agg.regions]
        if topk is not None:
            rows = topk_rows(rows, topk.limit)
        return QueryResult(
            strategy=strategy,
            query_class="algebra",
            records=tuple(rows),
            stats=self.work,
        )

    def _two_selects(
        self, strategy: str, first: KnnSelect, second: KnnSelect
    ) -> QueryResult:
        relation = first.relation
        if not self.prefer_fanout:
            self.work.neighborhoods_computed += 2
            n1 = sharded_knn(self.datasets[relation], first.focal, first.k)
            n2 = sharded_knn(self.datasets[relation], second.focal, second.k)
        else:
            versions = self._versions(relation)
            payload = ((first.focal, first.k), (second.focal, second.k))
            tasks = [
                ShardTask("two_knn", relation, sid, payload, versions)
                for sid, _ in self.datasets[relation].populated()
            ]
            self.work.neighborhoods_computed += 2 * len(tasks)
            partials = self._run(tasks)
            n1 = merge_neighborhoods(first.focal, first.k, [p[0] for p in partials])  # type: ignore[index]
            n2 = merge_neighborhoods(second.focal, second.k, [p[1] for p in partials])  # type: ignore[index]
        return self._points(strategy, "two-selects", intersect_points(n1, n2))

    def _select_outer_join(
        self, strategy: str, select: KnnSelect, join: KnnJoin
    ) -> QueryResult:
        # The selection shrinks the outer relation to kσ points — too few to
        # fan out; the coordinator joins them inline via border expansion.
        selection = self._fanout_knn(join.outer, select.focal, select.k)
        self.work.neighborhoods_computed += len(selection)
        inner = self.datasets[join.inner]
        pairs = [
            JoinPair(e1, e2)
            for e1 in selection
            for e2 in sharded_knn(inner, e1, join.k)
        ]
        pairs.sort(key=pair_key)
        return self._pairs(strategy, "select-outer-of-join", pairs)

    def _chained(self, strategy: str, first: KnnJoin, second: KnnJoin) -> QueryResult:
        chained = Query._chain_order(first, second)
        if chained is None:
            raise UnsupportedQueryError("cached chained plan does not fit these joins")
        ab, bc = chained
        versions = self._versions(ab.outer, ab.inner, bc.inner)
        tasks = []
        for sid, shard in self.datasets[ab.outer].populated():
            tasks.append(
                ShardTask(
                    "chained", ab.outer, sid, (ab.inner, bc.inner, ab.k, bc.k), versions
                )
            )
            # One A→B kNN per driving point; the cached B→C side is not
            # charged (lower bound).
            self.work.neighborhoods_computed += len(shard)
        triplets = merge_triplet_partials(self._run(tasks))  # type: ignore[arg-type]
        return QueryResult(
            strategy=strategy,
            query_class="chained-joins",
            triplets=tuple(triplets),
            stats=self.work,
        )

    def _unchained(self, strategy: str, ab: KnnJoin, cb: KnnJoin) -> QueryResult:
        # Both joins' tasks go to the pool in one batch for full overlap.
        ab_tasks = self._join_tasks(ab.outer, ab.inner, ab.k)
        cb_tasks = self._join_tasks(cb.outer, cb.inner, cb.k)
        results = self._run(ab_tasks + cb_tasks)
        ab_pairs = merge_pair_partials(results[: len(ab_tasks)])  # type: ignore[arg-type]
        cb_pairs = merge_pair_partials(results[len(ab_tasks) :])  # type: ignore[arg-type]
        triplets = intersect_pairs_on_inner(ab_pairs, cb_pairs)
        triplets.sort(key=lambda t: t.pids)
        return QueryResult(
            strategy=strategy,
            query_class="unchained-joins",
            triplets=tuple(triplets),
            stats=self.work,
        )


def relation_bounds(sharded: ShardedDataset) -> Rect | None:
    """The relation's global extent: declared bounds, else shard union."""
    if sharded.base.bounds is not None:
        return sharded.base.bounds
    extent: Rect | None = None
    for _sid, ds in sharded.populated():
        b = ds.index.bounds
        extent = b if extent is None else extent.union(b)
    return extent


class _CoordinatorEvalContext:
    """Eval context answering from the shard runtime, coordinator-side.

    Scans and bounds come from the authoritative base dataset; kNN entry
    points are the exact cross-shard primitives (border expansion and the
    batched fan-out), and range selects fan out per shard — so a tree that
    is not local-decomposable still returns exactly the unsharded rows.
    """

    def __init__(self, coordinator: "_Coordinator") -> None:
        self._c = coordinator

    def points(self, relation: str) -> list[Point]:
        return list(self._c.datasets[relation].base.store.iter_points())

    def bounds(self, relation: str) -> Rect | None:
        return relation_bounds(self._c.datasets[relation])

    def knn(self, relation: str, focal: Point, k: int) -> Neighborhood:
        return self._c._fanout_knn(relation, focal, k)

    def knn_batch(self, relation: str, coords: np.ndarray, k: int) -> list[Neighborhood]:
        self._c.work.neighborhoods_computed += len(coords)
        return sharded_knn_batch(self._c.datasets[relation], coords, k)

    def range(self, relation: str, window: Rect) -> list[Point]:
        return self._c._fanout_range(relation, window)


def sharded_execute(
    plan: PhysicalPlan,
    query: Query,
    datasets: Mapping[str, ShardedDataset],
    run_tasks: TaskRunner,
    prefer_fanout: bool = True,
) -> tuple[QueryResult, int]:
    """Execute a planned query against sharded relations.

    Returns ``(result, tasks_dispatched)``.  The result holds the same rows
    as unsharded execution of the same plan — merged per-shard partials are
    exact, not approximate — in a canonical order (kNN results in
    ``(distance, pid)`` order, pair/triplet results sorted by pid keys).
    """
    coordinator = _Coordinator(datasets, run_tasks, prefer_fanout)
    result = coordinator.execute(plan, query)
    return result, coordinator.tasks_dispatched
